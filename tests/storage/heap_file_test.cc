#include "storage/heap_file.h"

#include <gtest/gtest.h>

#include <map>

#include "storage/slotted_page.h"
#include "storage/storage_engine.h"
#include "tests/testing/util.h"
#include "util/random.h"

namespace ode {
namespace {

class HeapFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StorageOptions options;
    options.env = &env_;
    options.path = "/db";
    auto engine = StorageEngine::Open(options);
    ASSERT_TRUE(engine.ok()) << engine.status();
    engine_ = std::move(*engine);
  }

  /// Runs `body` in a transaction and asserts it commits.
  void InTxn(const std::function<Status(Txn&)>& body) {
    ASSERT_OK(engine_->WithTxn(body));
  }

  MemEnv env_;
  std::unique_ptr<StorageEngine> engine_;
};

TEST_F(HeapFileTest, InsertReadSmallRecord) {
  RecordId rid;
  InTxn([&](Txn& txn) -> Status {
    auto r = engine_->heap().Insert(&txn, Slice("small record"));
    if (!r.ok()) return r.status();
    rid = *r;
    return Status::OK();
  });
  InTxn([&](Txn& txn) -> Status {
    auto bytes = engine_->heap().Read(&txn, rid);
    if (!bytes.ok()) return bytes.status();
    EXPECT_EQ(*bytes, "small record");
    return Status::OK();
  });
}

TEST_F(HeapFileTest, EmptyRecordRoundTrip) {
  RecordId rid;
  InTxn([&](Txn& txn) -> Status {
    auto r = engine_->heap().Insert(&txn, Slice(""));
    if (!r.ok()) return r.status();
    rid = *r;
    auto bytes = engine_->heap().Read(&txn, rid);
    if (!bytes.ok()) return bytes.status();
    EXPECT_TRUE(bytes->empty());
    return Status::OK();
  });
}

TEST_F(HeapFileTest, LargeRecordUsesOverflowChain) {
  Random rng(1);
  const std::string big = rng.NextBytes(100000);  // ~25 pages.
  RecordId rid;
  InTxn([&](Txn& txn) -> Status {
    auto r = engine_->heap().Insert(&txn, Slice(big));
    if (!r.ok()) return r.status();
    rid = *r;
    return Status::OK();
  });
  InTxn([&](Txn& txn) -> Status {
    auto bytes = engine_->heap().Read(&txn, rid);
    if (!bytes.ok()) return bytes.status();
    EXPECT_EQ(*bytes, big);
    auto stats = engine_->heap().Stats(&txn);
    if (!stats.ok()) return stats.status();
    EXPECT_GT(stats->overflow_pages, 20u);
    return Status::OK();
  });
}

TEST_F(HeapFileTest, BoundaryRecordSizes) {
  // Exercise sizes around the inline/overflow threshold.
  for (size_t size :
       {size_t{SlottedPage::kMaxCellSize - 2}, size_t{SlottedPage::kMaxCellSize - 1},
        size_t{SlottedPage::kMaxCellSize}, size_t{SlottedPage::kMaxCellSize + 1},
        size_t{2 * kPageSize}}) {
    Random rng(size);
    const std::string payload = rng.NextBytes(size);
    RecordId rid;
    InTxn([&](Txn& txn) -> Status {
      auto r = engine_->heap().Insert(&txn, Slice(payload));
      if (!r.ok()) return r.status();
      rid = *r;
      auto bytes = engine_->heap().Read(&txn, rid);
      if (!bytes.ok()) return bytes.status();
      EXPECT_EQ(bytes->size(), payload.size()) << "size=" << size;
      EXPECT_EQ(*bytes, payload);
      return Status::OK();
    });
  }
}

TEST_F(HeapFileTest, DeleteRemovesRecord) {
  RecordId rid;
  InTxn([&](Txn& txn) -> Status {
    auto r = engine_->heap().Insert(&txn, Slice("doomed"));
    if (!r.ok()) return r.status();
    rid = *r;
    return Status::OK();
  });
  InTxn([&](Txn& txn) { return engine_->heap().Delete(&txn, rid); });
  InTxn([&](Txn& txn) -> Status {
    EXPECT_TRUE(engine_->heap().Read(&txn, rid).status().IsNotFound());
    return Status::OK();
  });
}

TEST_F(HeapFileTest, DeleteLargeRecordFreesOverflowPages) {
  Random rng(2);
  const std::string big = rng.NextBytes(50000);
  RecordId rid;
  InTxn([&](Txn& txn) -> Status {
    auto r = engine_->heap().Insert(&txn, Slice(big));
    if (!r.ok()) return r.status();
    rid = *r;
    return Status::OK();
  });
  uint32_t overflow_before = 0;
  InTxn([&](Txn& txn) -> Status {
    auto stats = engine_->heap().Stats(&txn);
    if (!stats.ok()) return stats.status();
    overflow_before = stats->overflow_pages;
    return engine_->heap().Delete(&txn, rid);
  });
  EXPECT_GT(overflow_before, 0u);
  InTxn([&](Txn& txn) -> Status {
    auto stats = engine_->heap().Stats(&txn);
    if (!stats.ok()) return stats.status();
    EXPECT_EQ(stats->overflow_pages, 0u);
    return Status::OK();
  });
}

TEST_F(HeapFileTest, FreedPagesAreReused) {
  // Insert + delete a large record, then insert again: the file should not
  // keep growing because freed pages are recycled.
  Random rng(3);
  const std::string big = rng.NextBytes(40000);
  uint32_t pages_after_first = 0;
  for (int round = 0; round < 5; ++round) {
    RecordId rid;
    InTxn([&](Txn& txn) -> Status {
      auto r = engine_->heap().Insert(&txn, Slice(big));
      if (!r.ok()) return r.status();
      rid = *r;
      return Status::OK();
    });
    InTxn([&](Txn& txn) { return engine_->heap().Delete(&txn, rid); });
    uint32_t page_count = 0;
    InTxn([&](Txn& txn) -> Status {
      auto pc = txn.PageCount();
      if (!pc.ok()) return pc.status();
      page_count = *pc;
      return Status::OK();
    });
    if (round == 0) {
      pages_after_first = page_count;
    } else {
      EXPECT_EQ(page_count, pages_after_first) << "round " << round;
    }
  }
}

TEST_F(HeapFileTest, ForEachVisitsAllRecords) {
  std::map<uint64_t, std::string> expected;
  InTxn([&](Txn& txn) -> Status {
    for (int i = 0; i < 50; ++i) {
      std::string payload = "record-" + std::to_string(i);
      auto r = engine_->heap().Insert(&txn, Slice(payload));
      if (!r.ok()) return r.status();
      expected[r->Encode()] = payload;
    }
    return Status::OK();
  });
  std::map<uint64_t, std::string> seen;
  InTxn([&](Txn& txn) {
    return engine_->heap().ForEach(&txn, [&](RecordId rid, const Slice& data) {
      seen[rid.Encode()] = data.ToString();
      return true;
    });
  });
  EXPECT_EQ(seen, expected);
}

TEST_F(HeapFileTest, ForEachEarlyStop) {
  InTxn([&](Txn& txn) -> Status {
    for (int i = 0; i < 10; ++i) {
      auto r = engine_->heap().Insert(&txn, Slice("x"));
      if (!r.ok()) return r.status();
    }
    return Status::OK();
  });
  int visited = 0;
  InTxn([&](Txn& txn) {
    return engine_->heap().ForEach(&txn, [&](RecordId, const Slice&) {
      return ++visited < 3;
    });
  });
  EXPECT_EQ(visited, 3);
}

TEST_F(HeapFileTest, RandomizedAgainstReferenceModel) {
  Random rng(777);
  std::map<uint64_t, std::string> model;
  for (int op = 0; op < 400; ++op) {
    if (model.empty() || rng.Uniform(3) != 0) {
      const std::string payload = rng.NextBytes(rng.Range(0, 12000));
      InTxn([&](Txn& txn) -> Status {
        auto r = engine_->heap().Insert(&txn, Slice(payload));
        if (!r.ok()) return r.status();
        model[r->Encode()] = payload;
        return Status::OK();
      });
    } else {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      InTxn([&](Txn& txn) {
        return engine_->heap().Delete(&txn, RecordId::Decode(it->first));
      });
      model.erase(it);
    }
    if (op % 50 == 0) {
      for (const auto& [encoded, expected] : model) {
        InTxn([&](Txn& txn) -> Status {
          auto bytes = engine_->heap().Read(&txn, RecordId::Decode(encoded));
          if (!bytes.ok()) return bytes.status();
          EXPECT_EQ(*bytes, expected);
          return Status::OK();
        });
      }
    }
  }
}

TEST_F(HeapFileTest, RecordIdEncodeDecodeRoundTrip) {
  RecordId rid{12345, 678};
  RecordId decoded = RecordId::Decode(rid.Encode());
  EXPECT_EQ(decoded, rid);
  EXPECT_TRUE(rid.valid());
  EXPECT_FALSE(RecordId{}.valid());
}

}  // namespace
}  // namespace ode
