#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>

#include "storage/disk_manager.h"
#include "storage/env.h"
#include "tests/testing/util.h"

namespace ode {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto disk = DiskManager::Open(&env_, "/db");
    ASSERT_TRUE(disk.ok());
    disk_ = std::move(*disk);
  }

  /// Writes a page directly to disk with its first bytes = `text`.
  void SeedPage(PageId id, const std::string& text) {
    char buf[kPageSize] = {};
    std::memcpy(buf, text.data(), text.size());
    ASSERT_OK(disk_->WritePage(id, buf));
  }

  MemEnv env_;
  std::unique_ptr<DiskManager> disk_;
};

TEST_F(BufferPoolTest, FetchReadsFromDisk) {
  SeedPage(3, "hello page");
  BufferPool pool(disk_.get(), 4);
  ASSERT_OK_AND_ASSIGN(PageHandle handle, pool.Fetch(3));
  EXPECT_EQ(std::string(handle.data(), 10), "hello page");
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST_F(BufferPoolTest, SecondFetchHitsCache) {
  SeedPage(1, "x");
  BufferPool pool(disk_.get(), 4);
  { ASSERT_OK_AND_ASSIGN(PageHandle h, pool.Fetch(1)); }
  { ASSERT_OK_AND_ASSIGN(PageHandle h, pool.Fetch(1)); }
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST_F(BufferPoolTest, EvictionRespectsCapacity) {
  BufferPool pool(disk_.get(), 2);
  for (PageId id = 1; id <= 5; ++id) {
    SeedPage(id, "p");
    ASSERT_OK_AND_ASSIGN(PageHandle h, pool.Fetch(id));
  }
  EXPECT_LE(pool.resident_pages(), 2u);
  EXPECT_GE(pool.stats().evictions, 3u);
}

TEST_F(BufferPoolTest, PinnedPagesAreNotEvicted) {
  BufferPool pool(disk_.get(), 2);
  SeedPage(1, "pinned");
  ASSERT_OK_AND_ASSIGN(PageHandle pinned, pool.Fetch(1));
  for (PageId id = 2; id <= 6; ++id) {
    SeedPage(id, "other");
    ASSERT_OK_AND_ASSIGN(PageHandle h, pool.Fetch(id));
  }
  // Pinned page still resident and readable.
  EXPECT_EQ(std::string(pinned.data(), 6), "pinned");
}

TEST_F(BufferPoolTest, DirtyPagesAreNotEvictedOrWrittenByEviction) {
  BufferPool pool(disk_.get(), 2);
  pool.BeginEpoch();
  {
    ASSERT_OK_AND_ASSIGN(PageHandle h, pool.Fetch(1));
    std::memcpy(h.mutable_data(), "dirty", 5);
  }
  // Churn through other pages to force eviction pressure.
  for (PageId id = 2; id <= 8; ++id) {
    ASSERT_OK_AND_ASSIGN(PageHandle h, pool.Fetch(id));
  }
  // The dirty page never reached disk.
  char buf[kPageSize];
  ASSERT_OK(disk_->ReadPage(1, buf));
  EXPECT_NE(std::string(buf, 5), "dirty");
  // But it is still resident with its modification.
  ASSERT_OK_AND_ASSIGN(PageHandle h, pool.Fetch(1));
  EXPECT_EQ(std::string(h.data(), 5), "dirty");
}

TEST_F(BufferPoolTest, PreDirtyHookFiresOncePerEpoch) {
  BufferPool pool(disk_.get(), 4);
  int calls = 0;
  PageId hook_page = kInvalidPageId;
  bool hook_was_dirty = true;
  pool.set_pre_dirty_hook([&](PageId id, const char*, bool was_dirty) {
    ++calls;
    hook_page = id;
    hook_was_dirty = was_dirty;
  });
  pool.BeginEpoch();
  ASSERT_OK_AND_ASSIGN(PageHandle h, pool.Fetch(2));
  h.mutable_data()[100] = 'a';
  h.mutable_data()[101] = 'b';  // Second modification: no second hook call.
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(hook_page, 2u);
  EXPECT_FALSE(hook_was_dirty);
  EXPECT_EQ(pool.EpochDirtyPages().size(), 1u);
}

TEST_F(BufferPoolTest, HookReportsPreviouslyDirtyPages) {
  BufferPool pool(disk_.get(), 4);
  bool was_dirty = false;
  pool.set_pre_dirty_hook(
      [&](PageId, const char*, bool dirty) { was_dirty = dirty; });
  pool.BeginEpoch();
  {
    ASSERT_OK_AND_ASSIGN(PageHandle h, pool.Fetch(1));
    h.mutable_data()[0] = 'x';
  }
  pool.CommitEpoch();
  // Second epoch re-dirties the same (still dirty, unflushed) page.
  pool.BeginEpoch();
  ASSERT_OK_AND_ASSIGN(PageHandle h, pool.Fetch(1));
  h.mutable_data()[1] = 'y';
  EXPECT_TRUE(was_dirty);
}

TEST_F(BufferPoolTest, RestorePageRevertsContent) {
  BufferPool pool(disk_.get(), 4);
  std::string before;
  pool.set_pre_dirty_hook([&](PageId, const char* data, bool) {
    before.assign(data, kPageSize);
  });
  pool.BeginEpoch();
  ASSERT_OK_AND_ASSIGN(PageHandle h, pool.Fetch(1));
  std::memcpy(h.mutable_data(), "modified", 8);
  ASSERT_OK(pool.RestorePage(1, before.data(), false));
  EXPECT_NE(std::string(h.data(), 8), "modified");
}

TEST_F(BufferPoolTest, FlushAllWritesDirtyPages) {
  BufferPool pool(disk_.get(), 4);
  pool.BeginEpoch();
  {
    ASSERT_OK_AND_ASSIGN(PageHandle h, pool.Fetch(2));
    std::memcpy(h.mutable_data(), "flushed", 7);
  }
  pool.CommitEpoch();
  ASSERT_OK(pool.FlushAll());
  char buf[kPageSize];
  ASSERT_OK(disk_->ReadPage(2, buf));
  EXPECT_EQ(std::string(buf, 7), "flushed");
  EXPECT_EQ(pool.stats().flushes, 1u);
}

TEST_F(BufferPoolTest, FlushAllMidEpochRejected) {
  BufferPool pool(disk_.get(), 4);
  pool.BeginEpoch();
  ASSERT_OK_AND_ASSIGN(PageHandle h, pool.Fetch(1));
  h.mutable_data()[0] = 'z';
  h.Release();
  EXPECT_TRUE(pool.FlushAll().IsFailedPrecondition());
}

TEST_F(BufferPoolTest, DropAllUnpinnedForcesReread) {
  SeedPage(1, "on disk");
  BufferPool pool(disk_.get(), 4);
  { ASSERT_OK_AND_ASSIGN(PageHandle h, pool.Fetch(1)); }
  pool.DropAllUnpinned();
  EXPECT_EQ(pool.resident_pages(), 0u);
  ASSERT_OK_AND_ASSIGN(PageHandle h, pool.Fetch(1));
  EXPECT_EQ(pool.stats().misses, 2u);
}

TEST_F(BufferPoolTest, MoveSemanticsOfHandle) {
  BufferPool pool(disk_.get(), 4);
  ASSERT_OK_AND_ASSIGN(PageHandle a, pool.Fetch(1));
  PageHandle b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.id(), 1u);
  b.Release();
  EXPECT_FALSE(b.valid());
  // With no pins, the page evicts cleanly.
  pool.DropAllUnpinned();
  EXPECT_EQ(pool.resident_pages(), 0u);
}

}  // namespace
}  // namespace ode
