#include "storage/storage_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "storage/btree.h"
#include "tests/testing/util.h"

namespace ode {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override { Open(); }

  void Open() {
    StorageOptions options;
    options.env = &env_;
    options.path = "/db";
    auto engine = StorageEngine::Open(options);
    ASSERT_TRUE(engine.ok()) << engine.status();
    engine_ = std::move(*engine);
  }

  void Reopen() {
    engine_.reset();
    Open();
  }

  MemEnv env_;
  std::unique_ptr<StorageEngine> engine_;
};

TEST_F(EngineTest, SingleTransactionAtATime) {
  ASSERT_OK_AND_ASSIGN(Txn * txn, engine_->Begin());
  EXPECT_TRUE(engine_->Begin().status().IsFailedPrecondition());
  ASSERT_OK(engine_->Commit(txn));
  ASSERT_OK_AND_ASSIGN(Txn * txn2, engine_->Begin());
  ASSERT_OK(engine_->Abort(txn2));
}

TEST_F(EngineTest, CommitWithoutOpenTxnRejected) {
  ASSERT_OK_AND_ASSIGN(Txn * txn, engine_->Begin());
  ASSERT_OK(engine_->Commit(txn));
  EXPECT_TRUE(engine_->Commit(txn).IsFailedPrecondition());
  EXPECT_TRUE(engine_->Abort(txn).IsFailedPrecondition());
}

TEST_F(EngineTest, AllocateAndFreePagesRoundTrip) {
  PageId allocated = kInvalidPageId;
  ASSERT_OK(engine_->WithTxn([&](Txn& txn) -> Status {
    auto pid = txn.AllocatePage();
    if (!pid.ok()) return pid.status();
    allocated = *pid;
    EXPECT_NE(allocated, kInvalidPageId);
    return Status::OK();
  }));
  ASSERT_OK(engine_->WithTxn([&](Txn& txn) { return txn.FreePage(allocated); }));
  // Next allocation reuses the freed page.
  ASSERT_OK(engine_->WithTxn([&](Txn& txn) -> Status {
    auto pid = txn.AllocatePage();
    if (!pid.ok()) return pid.status();
    EXPECT_EQ(*pid, allocated);
    return Status::OK();
  }));
}

TEST_F(EngineTest, FreeingSuperblockRejected) {
  ASSERT_OK(engine_->WithTxn([](Txn& txn) -> Status {
    EXPECT_TRUE(txn.FreePage(0).IsInvalidArgument());
    return Status::OK();
  }));
}

TEST_F(EngineTest, CountersPersistAcrossReopen) {
  ASSERT_OK(engine_->WithTxn(
      [](Txn& txn) { return txn.SetCounter(5, 0xdeadbeefull); }));
  Reopen();
  ASSERT_OK(engine_->WithTxn([](Txn& txn) -> Status {
    auto v = txn.GetCounter(5);
    if (!v.ok()) return v.status();
    EXPECT_EQ(*v, 0xdeadbeefull);
    return Status::OK();
  }));
}

TEST_F(EngineTest, RootSlotsPersistAcrossReopen) {
  ASSERT_OK(engine_->WithTxn([](Txn& txn) { return txn.SetRoot(6, 42); }));
  Reopen();
  ASSERT_OK(engine_->WithTxn([](Txn& txn) -> Status {
    auto v = txn.GetRoot(6);
    if (!v.ok()) return v.status();
    EXPECT_EQ(*v, 42u);
    return Status::OK();
  }));
}

TEST_F(EngineTest, OutOfRangeSlotsRejected) {
  ASSERT_OK(engine_->WithTxn([](Txn& txn) -> Status {
    EXPECT_TRUE(txn.GetRoot(-1).status().IsInvalidArgument());
    EXPECT_TRUE(txn.GetRoot(8).status().IsInvalidArgument());
    EXPECT_TRUE(txn.GetCounter(8).status().IsInvalidArgument());
    EXPECT_TRUE(txn.SetCounter(-1, 0).IsInvalidArgument());
    return Status::OK();
  }));
}

TEST_F(EngineTest, AbortRollsBackHeapInsert) {
  RecordId rid;
  ASSERT_OK_AND_ASSIGN(Txn * txn, engine_->Begin());
  {
    auto r = engine_->heap().Insert(txn, Slice("rolled back"));
    ASSERT_TRUE(r.ok());
    rid = *r;
  }
  ASSERT_OK(engine_->Abort(txn));
  ASSERT_OK(engine_->WithTxn([&](Txn& t) -> Status {
    EXPECT_TRUE(engine_->heap().Read(&t, rid).status().IsNotFound());
    return Status::OK();
  }));
}

TEST_F(EngineTest, AbortRollsBackPageAllocation) {
  uint32_t pages_before = 0;
  ASSERT_OK(engine_->WithTxn([&](Txn& txn) -> Status {
    auto pc = txn.PageCount();
    if (!pc.ok()) return pc.status();
    pages_before = *pc;
    return Status::OK();
  }));
  ASSERT_OK_AND_ASSIGN(Txn * txn, engine_->Begin());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(txn->AllocatePage().ok());
  }
  ASSERT_OK(engine_->Abort(txn));
  ASSERT_OK(engine_->WithTxn([&](Txn& t) -> Status {
    auto pc = t.PageCount();
    if (!pc.ok()) return pc.status();
    EXPECT_EQ(*pc, pages_before);
    return Status::OK();
  }));
}

TEST_F(EngineTest, AbortPreservesEarlierCommittedData) {
  // T1 commits data; T2 touches the same pages and aborts; T1's data must
  // survive even though it was never flushed to the data file.
  ASSERT_OK(engine_->WithTxn([&](Txn& txn) -> Status {
    auto tree = BTree::Open(&txn, 4);
    if (!tree.ok()) return tree.status();
    return tree->Put(Slice("committed"), Slice("v1"));
  }));
  ASSERT_OK_AND_ASSIGN(Txn * txn, engine_->Begin());
  {
    auto tree = BTree::Open(txn, 4);
    ASSERT_TRUE(tree.ok());
    ASSERT_OK(tree->Put(Slice("committed"), Slice("overwritten")));
    ASSERT_OK(tree->Put(Slice("extra"), Slice("x")));
  }
  ASSERT_OK(engine_->Abort(txn));
  ASSERT_OK(engine_->WithTxn([&](Txn& t) -> Status {
    auto tree = BTree::Open(&t, 4);
    if (!tree.ok()) return tree.status();
    EXPECT_EQ(*tree->Get(Slice("committed")), "v1");
    EXPECT_TRUE(tree->Get(Slice("extra")).status().IsNotFound());
    return Status::OK();
  }));
}

TEST_F(EngineTest, WithTxnAbortsOnError) {
  Status s = engine_->WithTxn([&](Txn& txn) -> Status {
    auto r = engine_->heap().Insert(&txn, Slice("doomed"));
    (void)r;
    return Status::Aborted("body failed");
  });
  EXPECT_TRUE(s.IsAborted());
  // Engine usable afterwards.
  ASSERT_OK(engine_->WithTxn([](Txn&) { return Status::OK(); }));
}

TEST_F(EngineTest, ReadOnlyTxnWritesNothingToWal) {
  // First use of the tree slot allocates the root page; get that out of the
  // way so the measured transaction is purely a read.
  ASSERT_OK(engine_->WithTxn([](Txn& txn) -> Status {
    auto tree = BTree::Open(&txn, 4);
    return tree.ok() ? Status::OK() : tree.status();
  }));
  const uint64_t wal_before = engine_->wal_bytes();
  ASSERT_OK(engine_->WithTxn([&](Txn& txn) -> Status {
    auto tree = BTree::Open(&txn, 4);
    if (!tree.ok()) return tree.status();
    auto v = tree->Get(Slice("anything"));
    EXPECT_TRUE(v.status().IsNotFound());
    return Status::OK();
  }));
  EXPECT_EQ(engine_->wal_bytes(), wal_before);
}

TEST_F(EngineTest, DataSurvivesReopenViaCheckpoint) {
  ASSERT_OK(engine_->WithTxn([&](Txn& txn) -> Status {
    auto tree = BTree::Open(&txn, 4);
    if (!tree.ok()) return tree.status();
    return tree->Put(Slice("persist"), Slice("me"));
  }));
  Reopen();  // Destructor checkpoints.
  ASSERT_OK(engine_->WithTxn([&](Txn& txn) -> Status {
    auto tree = BTree::Open(&txn, 4);
    if (!tree.ok()) return tree.status();
    EXPECT_EQ(*tree->Get(Slice("persist")), "me");
    return Status::OK();
  }));
}

TEST_F(EngineTest, ManualCheckpointTruncatesWal) {
  ASSERT_OK(engine_->WithTxn([&](Txn& txn) -> Status {
    auto r = engine_->heap().Insert(&txn, Slice("data"));
    return r.ok() ? Status::OK() : r.status();
  }));
  EXPECT_GT(engine_->wal_bytes(), 0u);
  ASSERT_OK(engine_->Checkpoint());
  EXPECT_EQ(engine_->wal_bytes(), 0u);
}

TEST_F(EngineTest, CheckpointMidTxnRejected) {
  ASSERT_OK_AND_ASSIGN(Txn * txn, engine_->Begin());
  EXPECT_TRUE(engine_->Checkpoint().IsFailedPrecondition());
  ASSERT_OK(engine_->Abort(txn));
}

TEST_F(EngineTest, AutoCheckpointAfterWalThreshold) {
  engine_.reset();
  StorageOptions options;
  options.env = &env_;
  options.path = "/db2";
  options.checkpoint_wal_bytes = 64 * 1024;  // Tiny threshold.
  auto engine = StorageEngine::Open(options);
  ASSERT_TRUE(engine.ok());
  auto& e = *engine;
  const uint64_t checkpoints_before = e->checkpoint_count();
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(e->WithTxn([&](Txn& txn) -> Status {
      auto r = e->heap().Insert(&txn, Slice(std::string(1000, 'x')));
      return r.ok() ? Status::OK() : r.status();
    }));
  }
  // Checkpointing moved off the commit path into the background
  // checkpointer, which Commit nudges when wal_bytes crosses the
  // threshold — poll briefly instead of asserting synchronously.
  for (int spins = 0; spins < 1000; ++spins) {
    if (e->checkpoint_count() > checkpoints_before) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(e->checkpoint_count(), checkpoints_before);
  EXPECT_LT(e->wal_bytes(), 2 * options.checkpoint_wal_bytes);
}

// Regression test for the monitoring-counter data race the thread-safety
// annotation pass surfaced: commit_count()/checkpoint_count()/wal_bytes()/
// wal_total_bytes() are read from arbitrary threads while the writer thread
// is mid-commit.  Before the counters became atomics these were plain
// uint64_t torn between threads; the name carries "Concurrent" so the TSan
// CI job (ctest -R Concurrent) replays it under the race detector.
TEST_F(EngineTest, ConcurrentStatsReadersDuringCommits) {
  constexpr int kReaders = 4;
  constexpr int kCommits = 200;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      uint64_t sink = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        sink += engine_->commit_count();
        sink += engine_->checkpoint_count();
        sink += engine_->wal_bytes();
        sink += engine_->wal_total_bytes();
        sink += engine_->cache_stats().hits;
      }
      static_cast<void>(sink);
      // Monotonic counters: stop is only set after the last commit, so the
      // final read must see every one of them.
      EXPECT_GE(engine_->commit_count(), static_cast<uint64_t>(kCommits));
    });
  }
  for (int i = 0; i < kCommits; ++i) {
    ASSERT_OK(engine_->WithTxn([&](Txn& txn) -> Status {
      auto r = engine_->heap().Insert(&txn, Slice("concurrent-stats"));
      return r.ok() ? Status::OK() : r.status();
    }));
  }
  ASSERT_OK(engine_->Checkpoint());
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  EXPECT_GE(engine_->commit_count(), static_cast<uint64_t>(kCommits));
  EXPECT_GE(engine_->checkpoint_count(), 1u);
}

}  // namespace
}  // namespace ode
