#include <gtest/gtest.h>

#include "storage/btree.h"
#include "storage/env.h"
#include "storage/fault_env.h"
#include "storage/storage_engine.h"
#include "tests/testing/util.h"
#include "util/random.h"

namespace ode {
namespace {

/// End-to-end crash-recovery tests: run transactions against a
/// FaultInjectionEnv, crash (dropping everything unsynced), reopen, and
/// verify exactly the committed transactions survive.
class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() : fault_env_(nullptr) {}

  void Open() {
    StorageOptions options;
    options.env = &fault_env_;
    options.path = "/db";
    auto engine = StorageEngine::Open(options);
    ASSERT_TRUE(engine.ok()) << engine.status();
    engine_ = std::move(*engine);
  }

  void Crash() {
    // Drop the engine WITHOUT a clean close: release the object but first
    // sever its files by crashing the env.  Destruction after crash is safe
    // because all writes/syncs fail gracefully.
    fault_env_.CrashAndLoseUnsynced();
    engine_.reset();
  }

  FaultInjectionEnv fault_env_;
  std::unique_ptr<StorageEngine> engine_;
};

TEST_F(RecoveryTest, CommittedSurvivesCrash) {
  Open();
  ASSERT_OK(engine_->WithTxn([&](Txn& txn) -> Status {
    auto tree = BTree::Open(&txn, 4);
    if (!tree.ok()) return tree.status();
    return tree->Put(Slice("k"), Slice("committed-value"));
  }));
  Crash();
  Open();
  EXPECT_GE(engine_->last_recovery().committed_txns, 1u);
  ASSERT_OK(engine_->WithTxn([&](Txn& txn) -> Status {
    auto tree = BTree::Open(&txn, 4);
    if (!tree.ok()) return tree.status();
    EXPECT_EQ(*tree->Get(Slice("k")), "committed-value");
    return Status::OK();
  }));
}

TEST_F(RecoveryTest, UncommittedVanishesOnCrash) {
  Open();
  ASSERT_OK(engine_->WithTxn([&](Txn& txn) -> Status {
    auto tree = BTree::Open(&txn, 4);
    if (!tree.ok()) return tree.status();
    return tree->Put(Slice("committed"), Slice("yes"));
  }));
  // Open a transaction, write, crash before commit.
  ASSERT_OK_AND_ASSIGN(Txn * txn, engine_->Begin());
  {
    auto tree = BTree::Open(txn, 4);
    ASSERT_TRUE(tree.ok());
    ASSERT_OK(tree->Put(Slice("uncommitted"), Slice("no")));
  }
  Crash();
  Open();
  ASSERT_OK(engine_->WithTxn([&](Txn& t) -> Status {
    auto tree = BTree::Open(&t, 4);
    if (!tree.ok()) return tree.status();
    EXPECT_EQ(*tree->Get(Slice("committed")), "yes");
    EXPECT_TRUE(tree->Get(Slice("uncommitted")).status().IsNotFound());
    return Status::OK();
  }));
}

TEST_F(RecoveryTest, ManyCommitsAllSurvive) {
  Open();
  constexpr int kN = 200;
  for (int i = 0; i < kN; ++i) {
    ASSERT_OK(engine_->WithTxn([&](Txn& txn) -> Status {
      auto tree = BTree::Open(&txn, 4);
      if (!tree.ok()) return tree.status();
      return tree->Put(Slice("key" + std::to_string(i)),
                       Slice("val" + std::to_string(i)));
    }));
  }
  Crash();
  Open();
  ASSERT_OK(engine_->WithTxn([&](Txn& txn) -> Status {
    auto tree = BTree::Open(&txn, 4);
    if (!tree.ok()) return tree.status();
    for (int i = 0; i < kN; ++i) {
      auto v = tree->Get(Slice("key" + std::to_string(i)));
      if (!v.ok()) return v.status();
      EXPECT_EQ(*v, "val" + std::to_string(i));
    }
    return Status::OK();
  }));
}

TEST_F(RecoveryTest, CrashAfterCheckpointStillConsistent) {
  Open();
  ASSERT_OK(engine_->WithTxn([&](Txn& txn) -> Status {
    auto tree = BTree::Open(&txn, 4);
    if (!tree.ok()) return tree.status();
    return tree->Put(Slice("before-ckpt"), Slice("1"));
  }));
  ASSERT_OK(engine_->Checkpoint());
  ASSERT_OK(engine_->WithTxn([&](Txn& txn) -> Status {
    auto tree = BTree::Open(&txn, 4);
    if (!tree.ok()) return tree.status();
    return tree->Put(Slice("after-ckpt"), Slice("2"));
  }));
  Crash();
  Open();
  ASSERT_OK(engine_->WithTxn([&](Txn& txn) -> Status {
    auto tree = BTree::Open(&txn, 4);
    if (!tree.ok()) return tree.status();
    EXPECT_EQ(*tree->Get(Slice("before-ckpt")), "1");
    EXPECT_EQ(*tree->Get(Slice("after-ckpt")), "2");
    return Status::OK();
  }));
}

TEST_F(RecoveryTest, RepeatedCrashReopenCycles) {
  Random rng(31337);
  int committed = 0;
  for (int cycle = 0; cycle < 10; ++cycle) {
    Open();
    // Verify all previously committed keys exist.
    ASSERT_OK(engine_->WithTxn([&](Txn& txn) -> Status {
      auto tree = BTree::Open(&txn, 4);
      if (!tree.ok()) return tree.status();
      for (int i = 0; i < committed; ++i) {
        auto v = tree->Get(Slice("c" + std::to_string(i)));
        if (!v.ok()) {
          ADD_FAILURE() << "lost key c" << i << " in cycle " << cycle;
          return v.status();
        }
      }
      return Status::OK();
    }));
    // Commit a few more.
    const int batch = static_cast<int>(rng.Range(1, 5));
    for (int b = 0; b < batch; ++b) {
      ASSERT_OK(engine_->WithTxn([&](Txn& txn) -> Status {
        auto tree = BTree::Open(&txn, 4);
        if (!tree.ok()) return tree.status();
        return tree->Put(Slice("c" + std::to_string(committed)), Slice("v"));
      }));
      ++committed;
    }
    // Start (but never commit) one more write, then crash.
    auto txn = engine_->Begin();
    ASSERT_TRUE(txn.ok());
    {
      auto tree = BTree::Open(*txn, 4);
      ASSERT_TRUE(tree.ok());
      ASSERT_OK(tree->Put(Slice("uncommitted"), Slice("x")));
    }
    Crash();
  }
  Open();
  ASSERT_OK(engine_->WithTxn([&](Txn& txn) -> Status {
    auto tree = BTree::Open(&txn, 4);
    if (!tree.ok()) return tree.status();
    EXPECT_TRUE(tree->Get(Slice("uncommitted")).status().IsNotFound());
    auto count = tree->Count();
    if (!count.ok()) return count.status();
    EXPECT_EQ(*count, static_cast<uint64_t>(committed));
    return Status::OK();
  }));
}

TEST_F(RecoveryTest, CommitFailsCleanlyWhenDiskDies) {
  Open();
  // Let the first commits go through, then make syncs fail.
  ASSERT_OK(engine_->WithTxn([&](Txn& txn) -> Status {
    auto tree = BTree::Open(&txn, 4);
    if (!tree.ok()) return tree.status();
    return tree->Put(Slice("good"), Slice("1"));
  }));
  fault_env_.FailAfterSyncs(0);
  Status s = engine_->WithTxn([&](Txn& txn) -> Status {
    auto tree = BTree::Open(&txn, 4);
    if (!tree.ok()) return tree.status();
    return tree->Put(Slice("bad"), Slice("2"));
  });
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace ode
