#include "storage/superblock.h"

#include <gtest/gtest.h>

#include <cstring>

#include "storage/storage_engine.h"
#include "tests/testing/util.h"

namespace ode {
namespace {

TEST(SuperblockViewTest, InitSetsMagicAndDefaults) {
  char page[kPageSize];
  std::memset(page, 0xab, sizeof(page));
  SuperblockView view(page);
  EXPECT_FALSE(view.IsValid());
  view.Init();
  EXPECT_TRUE(view.IsValid());
  EXPECT_EQ(view.page_count(), 1u);
  EXPECT_EQ(view.free_list_head(), kInvalidPageId);
  for (int i = 0; i < SuperblockView::kNumRoots; ++i) {
    EXPECT_EQ(view.root(i), kInvalidPageId);
  }
  for (int i = 0; i < SuperblockView::kNumCounters; ++i) {
    EXPECT_EQ(view.counter(i), 0u);
  }
}

TEST(SuperblockViewTest, FieldsAreIndependent) {
  char page[kPageSize];
  SuperblockView view(page);
  view.Init();
  view.set_page_count(77);
  view.set_free_list_head(5);
  for (int i = 0; i < SuperblockView::kNumRoots; ++i) {
    view.set_root(i, 100 + i);
  }
  for (int i = 0; i < SuperblockView::kNumCounters; ++i) {
    view.set_counter(i, 1000 + i);
  }
  EXPECT_EQ(view.page_count(), 77u);
  EXPECT_EQ(view.free_list_head(), 5u);
  for (int i = 0; i < SuperblockView::kNumRoots; ++i) {
    EXPECT_EQ(view.root(i), 100u + i);
  }
  for (int i = 0; i < SuperblockView::kNumCounters; ++i) {
    EXPECT_EQ(view.counter(i), 1000u + i);
  }
  EXPECT_TRUE(view.IsValid());
}

TEST(SuperblockTest, CountersRollBackOnAbort) {
  MemEnv env;
  StorageOptions options;
  options.env = &env;
  options.path = "/db";
  auto engine = StorageEngine::Open(options);
  ASSERT_TRUE(engine.ok());
  ASSERT_OK((*engine)->WithTxn(
      [](Txn& txn) { return txn.SetCounter(3, 10); }));
  {
    auto txn = (*engine)->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_OK((*txn)->SetCounter(3, 999));
    ASSERT_OK((*txn)->SetRoot(7, 42));
    ASSERT_OK((*engine)->Abort(*txn));
  }
  ASSERT_OK((*engine)->WithTxn([](Txn& txn) -> Status {
    auto counter = txn.GetCounter(3);
    if (!counter.ok()) return counter.status();
    EXPECT_EQ(*counter, 10u);
    auto root = txn.GetRoot(7);
    if (!root.ok()) return root.status();
    EXPECT_EQ(*root, kInvalidPageId);
    return Status::OK();
  }));
}

TEST(SuperblockTest, FreeListChainsMultiplePages) {
  MemEnv env;
  StorageOptions options;
  options.env = &env;
  options.path = "/db";
  auto engine = StorageEngine::Open(options);
  ASSERT_TRUE(engine.ok());
  std::vector<PageId> allocated;
  ASSERT_OK((*engine)->WithTxn([&](Txn& txn) -> Status {
    for (int i = 0; i < 5; ++i) {
      auto pid = txn.AllocatePage();
      if (!pid.ok()) return pid.status();
      allocated.push_back(*pid);
    }
    return Status::OK();
  }));
  ASSERT_OK((*engine)->WithTxn([&](Txn& txn) -> Status {
    for (PageId pid : allocated) {
      ODE_RETURN_IF_ERROR(txn.FreePage(pid));
    }
    return Status::OK();
  }));
  // All five freed pages come back (LIFO order) before the file grows.
  ASSERT_OK((*engine)->WithTxn([&](Txn& txn) -> Status {
    uint32_t page_count_before = 0;
    {
      auto pc = txn.PageCount();
      if (!pc.ok()) return pc.status();
      page_count_before = *pc;
    }
    std::set<PageId> reused;
    for (int i = 0; i < 5; ++i) {
      auto pid = txn.AllocatePage();
      if (!pid.ok()) return pid.status();
      reused.insert(*pid);
    }
    EXPECT_EQ(reused,
              std::set<PageId>(allocated.begin(), allocated.end()));
    auto pc = txn.PageCount();
    if (!pc.ok()) return pc.status();
    EXPECT_EQ(*pc, page_count_before);
    return Status::OK();
  }));
}

}  // namespace
}  // namespace ode
