#include "storage/env.h"
#include "storage/fault_env.h"

#include <gtest/gtest.h>

#include <memory>

#include "tests/testing/util.h"

namespace ode {
namespace {

// MemEnv and PosixEnv share semantics; run the same suite over both.
class EnvTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    if (std::string(GetParam()) == "mem") {
      owned_ = std::make_unique<MemEnv>();
      env_ = owned_.get();
      base_ = "/testenv";
    } else {
      env_ = Env::Posix();
      base_ = ::testing::TempDir() + "ode_env_test";
      ASSERT_OK(env_->CreateDir(base_));
    }
  }

  std::string Path(const std::string& name) { return base_ + "/" + name; }

  std::unique_ptr<Env> owned_;
  Env* env_ = nullptr;
  std::string base_;
};

TEST_P(EnvTest, OpenCreatesFile) {
  const std::string path = Path("a");
  ASSERT_OK_AND_ASSIGN(auto file, env_->OpenFile(path));
  EXPECT_TRUE(env_->FileExists(path));
  ASSERT_OK_AND_ASSIGN(uint64_t size, file->Size());
  EXPECT_EQ(size, 0u);
}

TEST_P(EnvTest, WriteReadRoundTrip) {
  ASSERT_OK_AND_ASSIGN(auto file, env_->OpenFile(Path("b")));
  ASSERT_OK(file->Write(0, Slice("hello world")));
  std::string scratch;
  Slice result;
  ASSERT_OK(file->Read(0, 11, &scratch, &result));
  EXPECT_EQ(result.ToString(), "hello world");
  ASSERT_OK(file->Read(6, 5, &scratch, &result));
  EXPECT_EQ(result.ToString(), "world");
}

TEST_P(EnvTest, ReadPastEofReturnsShort) {
  ASSERT_OK_AND_ASSIGN(auto file, env_->OpenFile(Path("c")));
  ASSERT_OK(file->Write(0, Slice("abc")));
  std::string scratch;
  Slice result;
  ASSERT_OK(file->Read(1, 100, &scratch, &result));
  EXPECT_EQ(result.ToString(), "bc");
  ASSERT_OK(file->Read(50, 10, &scratch, &result));
  EXPECT_TRUE(result.empty());
}

TEST_P(EnvTest, WritePastEofGrowsFile) {
  ASSERT_OK_AND_ASSIGN(auto file, env_->OpenFile(Path("d")));
  ASSERT_OK(file->Write(100, Slice("x")));
  ASSERT_OK_AND_ASSIGN(uint64_t size, file->Size());
  EXPECT_EQ(size, 101u);
  // The gap reads as zero bytes.
  std::string scratch;
  Slice result;
  ASSERT_OK(file->Read(50, 1, &scratch, &result));
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], '\0');
}

TEST_P(EnvTest, AppendExtends) {
  ASSERT_OK_AND_ASSIGN(auto file, env_->OpenFile(Path("e")));
  ASSERT_OK(file->Append(Slice("abc")));
  ASSERT_OK(file->Append(Slice("def")));
  std::string scratch;
  Slice result;
  ASSERT_OK(file->Read(0, 6, &scratch, &result));
  EXPECT_EQ(result.ToString(), "abcdef");
}

TEST_P(EnvTest, TruncateShrinks) {
  ASSERT_OK_AND_ASSIGN(auto file, env_->OpenFile(Path("f")));
  ASSERT_OK(file->Append(Slice("abcdef")));
  ASSERT_OK(file->Truncate(2));
  ASSERT_OK_AND_ASSIGN(uint64_t size, file->Size());
  EXPECT_EQ(size, 2u);
}

TEST_P(EnvTest, DeleteRemovesFile) {
  const std::string path = Path("g");
  { ASSERT_OK_AND_ASSIGN(auto file, env_->OpenFile(path)); }
  ASSERT_OK(env_->DeleteFile(path));
  EXPECT_FALSE(env_->FileExists(path));
  EXPECT_TRUE(env_->DeleteFile(path).IsNotFound());
}

TEST_P(EnvTest, RenameMovesContents) {
  const std::string from = Path("h1"), to = Path("h2");
  {
    ASSERT_OK_AND_ASSIGN(auto file, env_->OpenFile(from));
    ASSERT_OK(file->Append(Slice("payload")));
    ASSERT_OK(file->Sync());
  }
  ASSERT_OK(env_->RenameFile(from, to));
  EXPECT_FALSE(env_->FileExists(from));
  ASSERT_OK_AND_ASSIGN(auto file, env_->OpenFile(to));
  std::string scratch;
  Slice result;
  ASSERT_OK(file->Read(0, 7, &scratch, &result));
  EXPECT_EQ(result.ToString(), "payload");
}

TEST_P(EnvTest, PersistsAcrossHandles) {
  const std::string path = Path("i");
  {
    ASSERT_OK_AND_ASSIGN(auto file, env_->OpenFile(path));
    ASSERT_OK(file->Write(0, Slice("persisted")));
    ASSERT_OK(file->Sync());
  }
  ASSERT_OK_AND_ASSIGN(auto file, env_->OpenFile(path));
  std::string scratch;
  Slice result;
  ASSERT_OK(file->Read(0, 9, &scratch, &result));
  EXPECT_EQ(result.ToString(), "persisted");
}

INSTANTIATE_TEST_SUITE_P(AllEnvs, EnvTest, ::testing::Values("mem", "posix"),
                         [](const auto& info) { return info.param; });

TEST(FaultInjectionEnvTest, UnsyncedWritesLostOnCrash) {
  FaultInjectionEnv env(nullptr);
  {
    ASSERT_OK_AND_ASSIGN(auto file, env.OpenFile("/f"));
    ASSERT_OK(file->Append(Slice("synced")));
    ASSERT_OK(file->Sync());
    ASSERT_OK(file->Append(Slice("-lost")));
  }
  env.CrashAndLoseUnsynced();
  ASSERT_OK_AND_ASSIGN(auto file, env.OpenFile("/f"));
  ASSERT_OK_AND_ASSIGN(uint64_t size, file->Size());
  EXPECT_EQ(size, 6u);
}

TEST(FaultInjectionEnvTest, CrashInvalidatesOpenHandles) {
  FaultInjectionEnv env(nullptr);
  ASSERT_OK_AND_ASSIGN(auto file, env.OpenFile("/f"));
  ASSERT_OK(file->Append(Slice("x")));
  env.CrashAndLoseUnsynced();
  EXPECT_TRUE(file->Append(Slice("y")).IsIOError());
  std::string scratch;
  Slice result;
  EXPECT_TRUE(file->Read(0, 1, &scratch, &result).IsIOError());
}

TEST(FaultInjectionEnvTest, FailAfterSyncs) {
  FaultInjectionEnv env(nullptr);
  ASSERT_OK_AND_ASSIGN(auto file, env.OpenFile("/f"));
  env.FailAfterSyncs(1);
  ASSERT_OK(file->Append(Slice("a")));
  ASSERT_OK(file->Sync());  // First sync allowed.
  ASSERT_OK(file->Append(Slice("b")));
  EXPECT_TRUE(file->Sync().IsIOError());  // Second fails.
  EXPECT_TRUE(file->Append(Slice("c")).IsIOError());
}

TEST(FaultInjectionEnvTest, SyncCountTracks) {
  FaultInjectionEnv env(nullptr);
  ASSERT_OK_AND_ASSIGN(auto file, env.OpenFile("/f"));
  EXPECT_EQ(env.sync_count(), 0);
  ASSERT_OK(file->Sync());
  ASSERT_OK(file->Sync());
  EXPECT_EQ(env.sync_count(), 2);
}

}  // namespace
}  // namespace ode
