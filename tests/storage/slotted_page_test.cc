#include "storage/slotted_page.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "tests/testing/util.h"
#include "util/random.h"

namespace ode {
namespace {

class SlottedPageTest : public ::testing::Test {
 protected:
  SlottedPageTest() : page_(buf_) { page_.Init(); }

  char buf_[kPageSize] = {};
  SlottedPage page_;
};

TEST_F(SlottedPageTest, InitYieldsEmptyHeapPage) {
  EXPECT_TRUE(page_.IsHeapPage());
  EXPECT_EQ(page_.LiveSlots(), 0);
  EXPECT_EQ(page_.SlotCount(), 0);
  EXPECT_GT(page_.FreeSpace(), kPageSize - 100);
}

TEST_F(SlottedPageTest, InsertAndGet) {
  ASSERT_OK_AND_ASSIGN(uint16_t slot, page_.Insert(Slice("record one")));
  ASSERT_OK_AND_ASSIGN(Slice got, page_.Get(slot));
  EXPECT_EQ(got.ToString(), "record one");
  EXPECT_EQ(page_.LiveSlots(), 1);
}

TEST_F(SlottedPageTest, MultipleInsertsGetDistinctSlots) {
  ASSERT_OK_AND_ASSIGN(uint16_t a, page_.Insert(Slice("aaa")));
  ASSERT_OK_AND_ASSIGN(uint16_t b, page_.Insert(Slice("bbb")));
  ASSERT_OK_AND_ASSIGN(uint16_t c, page_.Insert(Slice("ccc")));
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  ASSERT_OK_AND_ASSIGN(Slice gb, page_.Get(b));
  EXPECT_EQ(gb.ToString(), "bbb");
}

TEST_F(SlottedPageTest, DeleteFreesSlotForReuse) {
  ASSERT_OK_AND_ASSIGN(uint16_t a, page_.Insert(Slice("aaa")));
  ASSERT_OK_AND_ASSIGN(uint16_t b, page_.Insert(Slice("bbb")));
  (void)b;
  ASSERT_OK(page_.Delete(a));
  EXPECT_TRUE(page_.Get(a).status().IsNotFound());
  EXPECT_EQ(page_.LiveSlots(), 1);
  // The freed slot number is reused.
  ASSERT_OK_AND_ASSIGN(uint16_t c, page_.Insert(Slice("ccc")));
  EXPECT_EQ(c, a);
}

TEST_F(SlottedPageTest, DeleteInvalidSlotFails) {
  EXPECT_TRUE(page_.Delete(0).IsNotFound());
  ASSERT_OK_AND_ASSIGN(uint16_t a, page_.Insert(Slice("x")));
  ASSERT_OK(page_.Delete(a));
  EXPECT_TRUE(page_.Delete(a).IsNotFound());
  EXPECT_TRUE(page_.Delete(99).IsNotFound());
}

TEST_F(SlottedPageTest, UpdateShrinkInPlace) {
  ASSERT_OK_AND_ASSIGN(uint16_t slot, page_.Insert(Slice("long record")));
  ASSERT_OK(page_.Update(slot, Slice("short")));
  ASSERT_OK_AND_ASSIGN(Slice got, page_.Get(slot));
  EXPECT_EQ(got.ToString(), "short");
}

TEST_F(SlottedPageTest, UpdateGrowRelocatesWithinPage) {
  ASSERT_OK_AND_ASSIGN(uint16_t slot, page_.Insert(Slice("s")));
  ASSERT_OK_AND_ASSIGN(uint16_t other, page_.Insert(Slice("other")));
  std::string big(500, 'B');
  ASSERT_OK(page_.Update(slot, Slice(big)));
  ASSERT_OK_AND_ASSIGN(Slice got, page_.Get(slot));
  EXPECT_EQ(got.ToString(), big);
  ASSERT_OK_AND_ASSIGN(Slice got_other, page_.Get(other));
  EXPECT_EQ(got_other.ToString(), "other");
}

TEST_F(SlottedPageTest, FillPageUntilFull) {
  const std::string record(100, 'r');
  int inserted = 0;
  while (true) {
    auto slot = page_.Insert(Slice(record));
    if (!slot.ok()) {
      EXPECT_TRUE(slot.status().IsOutOfRange());
      break;
    }
    ++inserted;
  }
  // ~4KB page / 104 bytes per entry.
  EXPECT_GT(inserted, 30);
  EXPECT_EQ(page_.LiveSlots(), inserted);
}

TEST_F(SlottedPageTest, CompactReclaimsFragmentation) {
  // Fill, delete every other record, then insert one that only fits after
  // compaction.
  std::vector<uint16_t> slots;
  const std::string record(200, 'x');
  while (true) {
    auto slot = page_.Insert(Slice(record));
    if (!slot.ok()) break;
    slots.push_back(*slot);
  }
  for (size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_OK(page_.Delete(slots[i]));
  }
  // A 600-byte record cannot fit contiguously (frag holes are 200 bytes)
  // but fits after compaction.
  std::string big(600, 'y');
  ASSERT_OK_AND_ASSIGN(uint16_t slot, page_.Insert(Slice(big)));
  ASSERT_OK_AND_ASSIGN(Slice got, page_.Get(slot));
  EXPECT_EQ(got.ToString(), big);
  // Survivors intact.
  for (size_t i = 1; i < slots.size(); i += 2) {
    ASSERT_OK_AND_ASSIGN(Slice kept, page_.Get(slots[i]));
    EXPECT_EQ(kept.ToString(), record);
  }
}

TEST_F(SlottedPageTest, MaxCellSizeRecordFits) {
  std::string max_record(SlottedPage::kMaxCellSize, 'm');
  ASSERT_OK_AND_ASSIGN(uint16_t slot, page_.Insert(Slice(max_record)));
  ASSERT_OK_AND_ASSIGN(Slice got, page_.Get(slot));
  EXPECT_EQ(got.size(), max_record.size());
}

TEST_F(SlottedPageTest, OversizedRecordRejected) {
  std::string too_big(SlottedPage::kMaxCellSize + 1, 'm');
  EXPECT_TRUE(page_.Insert(Slice(too_big)).status().IsInvalidArgument());
}

TEST_F(SlottedPageTest, RandomizedAgainstReferenceModel) {
  Random rng(424242);
  std::map<uint16_t, std::string> model;
  for (int op = 0; op < 5000; ++op) {
    const int action = static_cast<int>(rng.Uniform(3));
    if (action == 0) {  // Insert.
      std::string payload = rng.NextBytes(rng.Range(0, 300));
      auto slot = page_.Insert(Slice(payload));
      if (slot.ok()) {
        ASSERT_EQ(model.count(*slot), 0u);
        model[*slot] = payload;
      }
    } else if (action == 1 && !model.empty()) {  // Delete.
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      ASSERT_OK(page_.Delete(it->first));
      model.erase(it);
    } else if (action == 2 && !model.empty()) {  // Update.
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      std::string payload = rng.NextBytes(rng.Range(0, 300));
      Status s = page_.Update(it->first, Slice(payload));
      if (s.ok()) {
        it->second = payload;
      } else {
        // Update can fail when the page is too full; the record is then
        // gone (documented contract) — mirror that in the model.
        ASSERT_TRUE(s.IsOutOfRange());
        model.erase(it);
      }
    }
    // Periodically verify the full model.
    if (op % 500 == 0) {
      ASSERT_EQ(page_.LiveSlots(), model.size());
      for (const auto& [slot, expected] : model) {
        ASSERT_OK_AND_ASSIGN(Slice got, page_.Get(slot));
        ASSERT_EQ(got.ToString(), expected);
      }
    }
  }
}

}  // namespace
}  // namespace ode
