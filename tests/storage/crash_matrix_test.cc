// The crash matrix: every workload below is swept with a simulated crash at
// every mutating I/O operation (each WAL append, each fsync, each checkpoint
// page write) under every CrashTear mode, then recovered and compared
// against a healthy twin database.  See tests/testing/crash_harness.h for
// the acceptance rules.
//
// Run with `ctest -L crash`.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "storage/fault_env.h"
#include "tests/testing/crash_harness.h"
#include "tests/testing/util.h"

namespace ode {
namespace {

using testing::CrashMatrixStats;
using testing::RunCrashMatrix;
using testing::Workload;
using testing::WorkloadOp;

// Each workload test asserts a floor on its own injection count (ctest runs
// every case in its own process, so totals cannot be accumulated across
// tests).  The floors sum comfortably past the acceptance bar of 200
// distinct injection steps and catch a workload whose sweep silently
// shrinks — e.g. if an engine change stopped routing I/O through the env.
// Calibrated for the group-commit write path: a commit is ONE blob append
// plus one fsync (not one append per record), so each op contributes ~2
// crash steps rather than 3-10.
void RunWithFloor(const Workload& workload, uint64_t min_injections,
                  uint64_t min_steps = 0) {
  CrashMatrixStats stats;
  RunCrashMatrix(workload, &stats);
  std::printf("[ coverage ] %s: %llu injections over %llu distinct steps\n",
              workload.name.c_str(),
              static_cast<unsigned long long>(stats.injections),
              static_cast<unsigned long long>(stats.max_steps));
  EXPECT_GE(stats.injections, min_injections) << workload.name;
  EXPECT_GE(stats.max_steps, min_steps) << workload.name;
}

// Each op looks up ids by position so it is self-contained: ops run against
// both the twin and every crash-sweep instance, which allocate identically.
// One atomic group: a crash must not leave the type registered without the
// object (the prefix comparison treats each op as all-or-nothing).
WorkloadOp Pnew(const std::string& type, const std::string& payload) {
  return [=](Database& db) -> Status {
    ODE_RETURN_IF_ERROR(db.Begin());
    auto tid = db.RegisterType(type);
    Status s = tid.ok() ? db.PnewRaw(*tid, Slice(payload)).status()
                        : tid.status();
    if (!s.ok()) {
      (void)db.Abort();
      return s;
    }
    return db.Commit();
  };
}

WorkloadOp NewVersion(uint64_t oid) {
  return [=](Database& db) -> Status {
    return db.NewVersionOf(ObjectId{oid}).status();
  };
}

WorkloadOp Update(uint64_t oid, const std::string& payload) {
  return [=](Database& db) -> Status {
    return db.UpdateLatest(ObjectId{oid}, Slice(payload));
  };
}

WorkloadOp PdeleteVersion(uint64_t oid, VersionNum vnum) {
  return [=](Database& db) -> Status {
    return db.PdeleteVersion(VersionId{ObjectId{oid}, vnum});
  };
}

WorkloadOp PdeleteObject(uint64_t oid) {
  return [=](Database& db) -> Status {
    return db.PdeleteObject(ObjectId{oid});
  };
}

// The 4-operation mixed workload from the acceptance criteria: pnew,
// newversion, update, pdelete against full-payload storage.  Sized so the
// sweep covers well over 200 distinct crash steps (each step swept under
// all five tear modes).
TEST(CrashMatrixTest, MixedWorkloadFullPayloads) {
  Workload w;
  w.name = "mixed_full";
  for (int i = 0; i < 14; ++i) {
    const uint64_t oid = static_cast<uint64_t>(i) + 1;
    w.ops.push_back(Pnew("doc", std::string(64 + 20 * i, 'a' + (i % 13))));
    w.ops.push_back(NewVersion(oid));
    w.ops.push_back(Update(oid, std::string(96 + 8 * i, 'z' - (i % 13))));
  }
  w.ops.push_back(PdeleteVersion(6, 1));
  w.ops.push_back(PdeleteObject(7));
  w.ops.push_back(NewVersion(2));
  w.ops.push_back(PdeleteVersion(1, 1));
  w.ops.push_back(Update(2, "tiny"));
  w.ops.push_back(PdeleteVersion(3, 2));
  w.ops.push_back(PdeleteObject(4));
  w.ops.push_back(NewVersion(5));
  w.ops.push_back(PdeleteObject(2));
  w.ops.push_back(Update(5, std::string(128, 'q')));
  w.ops.push_back(PdeleteVersion(9, 1));
  w.ops.push_back(NewVersion(10));
  w.ops.push_back(PdeleteObject(12));
  w.ops.push_back(Update(13, std::string(160, 'r')));
  RunWithFloor(w, /*min_injections=*/500, /*min_steps=*/100);
}

// Delta storage with an aggressive keyframe interval, so the sweep crosses
// delta encodes AND forced keyframe rewrites; updates of delta-backed
// versions exercise the rewrite path too.
TEST(CrashMatrixTest, DeltaChainsAndKeyframeRewrites) {
  Workload w;
  w.name = "delta_keyframe";
  w.options.payload_strategy = PayloadKind::kDelta;
  w.options.delta_keyframe_interval = 2;
  std::string base(128, 'x');
  w.ops = {Pnew("blob", base)};
  for (int i = 0; i < 4; ++i) {
    std::string edit = base;
    edit[i * 7] = static_cast<char>('A' + i);  // Small edits: real deltas.
    w.ops.push_back(NewVersion(1));
    w.ops.push_back(Update(1, edit));
  }
  w.ops.push_back(PdeleteVersion(1, 2));  // Splice inside the delta chain.
  RunWithFloor(w, /*min_injections=*/120);
}

// Explicit transaction groups: a multi-call commit must be all-or-nothing,
// and an abort group must leave no trace no matter where the crash lands.
TEST(CrashMatrixTest, GroupedCommitAndAbort) {
  Workload w;
  w.name = "grouped_txn";
  w.ops = {
      Pnew("doc", "seed"),
      [](Database& db) -> Status {  // Group of three calls, one commit.
        ODE_RETURN_IF_ERROR(db.Begin());
        Status s = db.NewVersionOf(ObjectId{1}).status();
        if (s.ok()) s = db.UpdateLatest(ObjectId{1}, Slice("grouped"));
        if (s.ok()) {
          auto tid = db.RegisterType("doc");
          s = tid.ok() ? db.PnewRaw(*tid, Slice("second object")).status()
                       : tid.status();
        }
        if (!s.ok()) {
          (void)db.Abort();
          return s;
        }
        return db.Commit();
      },
      [](Database& db) -> Status {  // Deliberate abort: a logical no-op.
        ODE_RETURN_IF_ERROR(db.Begin());
        (void)db.UpdateLatest(ObjectId{1}, Slice("never visible"));
        return db.Abort();
      },
      Update(1, "after abort"),
  };
  RunWithFloor(w, /*min_injections=*/60);
}

// Vacuum rebuilds all four catalog trees; a crash anywhere in the rebuild
// (or in its checkpoint) must recover to the same logical state.
TEST(CrashMatrixTest, VacuumInterruptedMidRebuild) {
  Workload w;
  w.name = "vacuum";
  w.ops = {
      Pnew("doc", std::string(80, 'p')),
      Pnew("doc", std::string(80, 'q')),
      NewVersion(1),
      PdeleteObject(2),  // Leave dead entries for Vacuum to reclaim.
      [](Database& db) -> Status { return db.Vacuum(); },
      Pnew("doc", "post-vacuum"),
  };
  RunWithFloor(w, /*min_injections=*/90);
}

// Content-addressed ref/unref churn: duplicate payloads across objects make
// every pnew/update/delete a refcount edit in the payload store, so the
// sweep crashes between blob insertion, refcount bumps and frees.  Each
// recovery runs the full fsck, whose pass 3 audits every blob's refcount
// against the referencing versions — a torn ref/unref surfaces as an orphan
// blob, a dangling reference, or a count mismatch.
TEST(CrashMatrixTest, DedupedPayloadRefcountChurn) {
  Workload w;
  w.name = "dedupe_refs";
  const std::string shared_a(120, 'A');
  const std::string shared_b(96, 'B');
  // Objects 1-4 all share blob A; objects 5-6 share blob B.
  for (int i = 0; i < 4; ++i) w.ops.push_back(Pnew("doc", shared_a));
  for (int i = 0; i < 2; ++i) w.ops.push_back(Pnew("doc", shared_b));
  // newversion shares the base's blob (pure ref); updates move references
  // between blobs (insert-before-release ordering under crash).
  w.ops.push_back(NewVersion(1));
  w.ops.push_back(Update(1, shared_b));   // A loses a ref, B gains one.
  w.ops.push_back(Update(2, shared_a));   // Same-content rewrite: rc 2->1->2.
  w.ops.push_back(NewVersion(5));
  w.ops.push_back(Update(5, shared_a));
  // Deletes walk refcounts down; the LAST unref frees the heap record.
  w.ops.push_back(PdeleteObject(3));
  w.ops.push_back(PdeleteObject(4));
  w.ops.push_back(PdeleteVersion(1, 2));
  w.ops.push_back(PdeleteObject(2));
  w.ops.push_back(PdeleteObject(1));      // Blob A's refs head toward zero.
  w.ops.push_back(PdeleteObject(6));
  w.ops.push_back(Update(5, "unique payload, last blob standing"));
  RunWithFloor(w, /*min_injections=*/150);
}

// The incremental vacuum path driven step by step: crashes land between
// bounded shadow-copy transactions and inside the final swap, with ordinary
// commits interleaved so the interference fallback is swept too.
TEST(CrashMatrixTest, IncrementalVacuumStepsInterleavedWithWrites) {
  Workload w;
  w.name = "vacuum_steps";
  const auto steps_until_done = [](Database& db) -> Status {
    while (true) {
      auto done = db.VacuumStep(4);
      if (!done.ok()) return done.status();
      if (*done) return Status::OK();
    }
  };
  w.ops = {
      Pnew("doc", std::string(100, 'v')),
      Pnew("doc", std::string(100, 'w')),
      Pnew("doc", std::string(100, 'v')),  // Duplicate: refcounted blob.
      NewVersion(1),
      PdeleteObject(2),
      [](Database& db) -> Status {
        // A lone bounded step (copies at most 4 entries, commits, leaves
        // the shadow parked in the scratch slot)...
        return db.VacuumStep(4).status();
      },
      Update(1, std::string(90, 'u')),  // ...then a foreign commit...
      [steps_until_done](Database& db) -> Status {
        return steps_until_done(db);  // ...forcing the fallback mid-pass.
      },
      Pnew("doc", "post-vacuum"),
  };
  RunWithFloor(w, /*min_injections=*/150);
}

// Acceptance criterion: a failed fsync during Commit must surface as a
// non-OK Status from the mutating call, and the engine must refuse further
// transactions (the unsynced WAL tail could otherwise become durable later,
// silently resurrecting the failed commit).
TEST(CrashMatrixTest, FailedCommitSyncSurfacesAndPoisons) {
  FaultInjectionEnv env(nullptr);
  DatabaseOptions opts;
  opts.storage.env = &env;
  opts.storage.path = "/db";
  ASSERT_OK_AND_ASSIGN(auto db, Database::Open(opts));
  ASSERT_OK_AND_ASSIGN(uint32_t tid, db->RegisterType("doc"));
  ASSERT_OK(db->PnewRaw(tid, Slice("durable")).status());

  env.FailNth(FaultOp::kSync, 0, Status::IOError("injected fsync failure"),
              /*sticky=*/false);
  Status s = db->PnewRaw(tid, Slice("lost")).status();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError()) << s;

  // The disk is healthy again, but the engine stays poisoned.
  Status begin = db->Begin();
  ASSERT_FALSE(begin.ok());
  EXPECT_TRUE(begin.IsFailedPrecondition()) << begin;

  // Power-loss then reopen: the un-fsynced records of the failed commit are
  // gone, and fresh recovery restores service with the committed prefix.
  // (Without the crash the bytes could survive — the kKeepAll ambiguity —
  // which is exactly why the engine must refuse to fsync them later.)
  db.reset();
  env.CrashAndLoseUnsynced();
  ASSERT_OK_AND_ASSIGN(db, Database::Open(opts));
  ASSERT_OK_AND_ASSIGN(auto payload, db->ReadLatest(ObjectId{1}));
  EXPECT_EQ(payload, "durable");
  ASSERT_OK_AND_ASSIGN(bool second, db->ObjectExists(ObjectId{2}));
  EXPECT_FALSE(second);
}

constexpr CrashTear kAllTears[] = {CrashTear::kLoseAll, CrashTear::kKeepAll,
                                   CrashTear::kTearHalf, CrashTear::kTornByte,
                                   CrashTear::kCorruptLast};

// Verifies chains + fsck on a recovered database; true if clean.
bool RecoveredStateClean(Database& db) {
  bool ok = true;
  for (const std::string& v : testing::VerifyChains(db)) {
    ADD_FAILURE() << v;
    ok = false;
  }
  auto report = CheckDatabase(db);
  EXPECT_OK(report.status());
  if (!report.ok()) return false;
  for (const std::string& e : report->errors) {
    ADD_FAILURE() << "fsck: " << e;
    ok = false;
  }
  return ok;
}

// Async commit acks after the WAL append but BEFORE the fsync, so a crash
// can tear the un-fsynced tail holding several acked transactions.  The
// durability contract is committed-PREFIX acceptance: recovery must land on
// some prefix of the acked update sequence (never a later state than what
// was attempted, never a reordering), with chains and fsck clean.  The
// sweep places a crash at every mutating I/O step of the run, under every
// tear mode, exactly like RunCrashMatrix — but the acceptance rule is the
// async one, so it cannot reuse the harness's exact-prefix comparison.
TEST(CrashMatrixTest, TornAsyncTailRecoversAckedPrefix) {
  constexpr int kUpdates = 6;
  const auto payload_for = [](int j) {
    return std::string(48, static_cast<char>('a' + j)) + "_async_v" +
           std::to_string(j);
  };
  for (CrashTear tear : kAllTears) {
    for (uint64_t step = 0;; ++step) {
      ASSERT_LT(step, 100000u) << "crash sweep did not terminate";
      SCOPED_TRACE(std::string("async_tail tear=") + testing::TearName(tear) +
                   " step=" + std::to_string(step));
      FaultInjectionEnv env(nullptr);
      DatabaseOptions opts;
      opts.storage.env = &env;
      opts.storage.path = "/crash";
      opts.storage.commit_mode = CommitMode::kAsync;
      int acked = 0;
      int attempted = 0;
      {
        auto db = Database::Open(opts);
        ASSERT_OK(db.status());
        auto tid = (*db)->RegisterType("doc");
        ASSERT_OK(tid.status());
        ASSERT_OK((*db)->PnewRaw(*tid, Slice(payload_for(0))).status());
        // Pin the base object durable so every recovery at least sees it.
        ASSERT_OK((*db)->WaitForDurable());
        env.ScheduleCrash(step, tear);
        for (int j = 1; j <= kUpdates; ++j) {
          ++attempted;
          Status s = (*db)->UpdateLatest(ObjectId{1}, Slice(payload_for(j)));
          if (!s.ok()) break;
          ++acked;
        }
      }  // Close while armed: the close-time checkpoint is swept too.
      if (!env.crash_fired()) {
        EXPECT_EQ(acked, kUpdates);
        break;  // Step is past the last mutating op: sweep complete.
      }
      env.ClearFaults();
      auto recovered = Database::Open(opts);
      ASSERT_OK(recovered.status());
      RecoveredStateClean(**recovered);
      auto payload = (*recovered)->ReadLatest(ObjectId{1});
      ASSERT_OK(payload.status());
      int r = -1;
      for (int j = 0; j <= kUpdates; ++j) {
        if (*payload == payload_for(j)) { r = j; break; }
      }
      ASSERT_GE(r, 0) << "recovered payload is not any attempted state";
      // Async ack is weaker than durable: r may trail acked, but recovery
      // can never surface MORE work than was handed to the engine.
      EXPECT_LE(r, attempted);
    }
  }
}

// Multi-writer grouped commit: several threads commit to disjoint objects
// so the leader batches their records into one append+fsync, and the crash
// sweep tears that batched group-commit record mid-flight.  In sync mode an
// acked commit is durable, so per OBJECT the recovered update count r must
// satisfy acked <= r <= attempted even when the torn batch held records
// from several transactions.  Thread interleaving makes each run
// nondeterministic; the acceptance bound holds for every interleaving.
TEST(CrashMatrixTest, MultiWriterTornGroupCommitKeepsAckedCommits) {
  constexpr int kWriters = 3;
  constexpr int kUpdatesPerWriter = 4;
  const auto payload_for = [](int writer, int j) {
    return std::string(32, static_cast<char>('b' + writer)) + "_w" +
           std::to_string(writer) + "_u" + std::to_string(j);
  };
  for (CrashTear tear : kAllTears) {
    for (uint64_t step = 0;; ++step) {
      ASSERT_LT(step, 100000u) << "crash sweep did not terminate";
      SCOPED_TRACE(std::string("multi_writer tear=") +
                   testing::TearName(tear) + " step=" + std::to_string(step));
      FaultInjectionEnv env(nullptr);
      DatabaseOptions opts;
      opts.storage.env = &env;
      opts.storage.path = "/crash";
      // Generous linger so concurrent writers actually share fsyncs and the
      // torn record is a genuine multi-transaction batch.
      opts.storage.group_commit_max_wait_us = 2000;
      std::vector<int> acked(kWriters, 0);
      std::vector<int> attempted(kWriters, 0);
      {
        auto db = Database::Open(opts);
        ASSERT_OK(db.status());
        auto tid = (*db)->RegisterType("doc");
        ASSERT_OK(tid.status());
        for (int t = 0; t < kWriters; ++t) {
          ASSERT_OK((*db)->PnewRaw(*tid, Slice(payload_for(t, 0))).status());
        }
        env.ScheduleCrash(step, tear);
        std::vector<std::thread> writers;
        for (int t = 0; t < kWriters; ++t) {
          writers.emplace_back([&, t] {
            const ObjectId oid{static_cast<uint64_t>(t) + 1};
            for (int j = 1; j <= kUpdatesPerWriter; ++j) {
              ++attempted[t];
              Status s = (*db)->UpdateLatest(oid, Slice(payload_for(t, j)));
              if (!s.ok()) break;  // Crash casualty: engine is poisoned.
              ++acked[t];
            }
          });
        }
        for (std::thread& th : writers) th.join();
      }
      if (!env.crash_fired()) {
        for (int t = 0; t < kWriters; ++t) {
          EXPECT_EQ(acked[t], kUpdatesPerWriter);
        }
        break;
      }
      env.ClearFaults();
      auto recovered = Database::Open(opts);
      ASSERT_OK(recovered.status());
      RecoveredStateClean(**recovered);
      for (int t = 0; t < kWriters; ++t) {
        const ObjectId oid{static_cast<uint64_t>(t) + 1};
        auto payload = (*recovered)->ReadLatest(oid);
        ASSERT_OK(payload.status());
        int r = -1;
        for (int j = 0; j <= kUpdatesPerWriter; ++j) {
          if (*payload == payload_for(t, j)) { r = j; break; }
        }
        ASSERT_GE(r, 0) << "writer " << t
                        << ": recovered payload is not any attempted state";
        // Sync-mode ack means durable: no acked commit may be lost, and no
        // unacked work may leak past what the writer handed to the engine.
        EXPECT_GE(r, acked[t]) << "writer " << t;
        EXPECT_LE(r, attempted[t]) << "writer " << t;
      }
    }
  }
}

}  // namespace
}  // namespace ode
