// The crash matrix: every workload below is swept with a simulated crash at
// every mutating I/O operation (each WAL append, each fsync, each checkpoint
// page write) under every CrashTear mode, then recovered and compared
// against a healthy twin database.  See tests/testing/crash_harness.h for
// the acceptance rules.
//
// Run with `ctest -L crash`.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/database.h"
#include "storage/fault_env.h"
#include "tests/testing/crash_harness.h"
#include "tests/testing/util.h"

namespace ode {
namespace {

using testing::CrashMatrixStats;
using testing::RunCrashMatrix;
using testing::Workload;
using testing::WorkloadOp;

// Each workload test asserts a floor on its own injection count (ctest runs
// every case in its own process, so totals cannot be accumulated across
// tests).  The floors sum comfortably past the acceptance bar of 200
// distinct injection steps and catch a workload whose sweep silently
// shrinks — e.g. if an engine change stopped routing I/O through the env.
void RunWithFloor(const Workload& workload, uint64_t min_injections,
                  uint64_t min_steps = 0) {
  CrashMatrixStats stats;
  RunCrashMatrix(workload, &stats);
  std::printf("[ coverage ] %s: %llu injections over %llu distinct steps\n",
              workload.name.c_str(),
              static_cast<unsigned long long>(stats.injections),
              static_cast<unsigned long long>(stats.max_steps));
  EXPECT_GE(stats.injections, min_injections) << workload.name;
  EXPECT_GE(stats.max_steps, min_steps) << workload.name;
}

// Each op looks up ids by position so it is self-contained: ops run against
// both the twin and every crash-sweep instance, which allocate identically.
// One atomic group: a crash must not leave the type registered without the
// object (the prefix comparison treats each op as all-or-nothing).
WorkloadOp Pnew(const std::string& type, const std::string& payload) {
  return [=](Database& db) -> Status {
    ODE_RETURN_IF_ERROR(db.Begin());
    auto tid = db.RegisterType(type);
    Status s = tid.ok() ? db.PnewRaw(*tid, Slice(payload)).status()
                        : tid.status();
    if (!s.ok()) {
      (void)db.Abort();
      return s;
    }
    return db.Commit();
  };
}

WorkloadOp NewVersion(uint64_t oid) {
  return [=](Database& db) -> Status {
    return db.NewVersionOf(ObjectId{oid}).status();
  };
}

WorkloadOp Update(uint64_t oid, const std::string& payload) {
  return [=](Database& db) -> Status {
    return db.UpdateLatest(ObjectId{oid}, Slice(payload));
  };
}

WorkloadOp PdeleteVersion(uint64_t oid, VersionNum vnum) {
  return [=](Database& db) -> Status {
    return db.PdeleteVersion(VersionId{ObjectId{oid}, vnum});
  };
}

WorkloadOp PdeleteObject(uint64_t oid) {
  return [=](Database& db) -> Status {
    return db.PdeleteObject(ObjectId{oid});
  };
}

// The 4-operation mixed workload from the acceptance criteria: pnew,
// newversion, update, pdelete against full-payload storage.  Sized so the
// sweep covers well over 200 distinct crash steps (each step swept under
// all five tear modes).
TEST(CrashMatrixTest, MixedWorkloadFullPayloads) {
  Workload w;
  w.name = "mixed_full";
  for (int i = 0; i < 7; ++i) {
    const uint64_t oid = static_cast<uint64_t>(i) + 1;
    w.ops.push_back(Pnew("doc", std::string(64 + 40 * i, 'a' + i)));
    w.ops.push_back(NewVersion(oid));
    w.ops.push_back(Update(oid, std::string(96 + 16 * i, 'z' - i)));
  }
  w.ops.push_back(PdeleteVersion(6, 1));
  w.ops.push_back(PdeleteObject(7));
  w.ops.push_back(NewVersion(2));
  w.ops.push_back(PdeleteVersion(1, 1));
  w.ops.push_back(Update(2, "tiny"));
  w.ops.push_back(PdeleteVersion(3, 2));
  w.ops.push_back(PdeleteObject(4));
  w.ops.push_back(NewVersion(5));
  w.ops.push_back(PdeleteObject(2));
  w.ops.push_back(Update(5, std::string(128, 'q')));
  RunWithFloor(w, /*min_injections=*/1000, /*min_steps=*/200);
}

// Delta storage with an aggressive keyframe interval, so the sweep crosses
// delta encodes AND forced keyframe rewrites; updates of delta-backed
// versions exercise the rewrite path too.
TEST(CrashMatrixTest, DeltaChainsAndKeyframeRewrites) {
  Workload w;
  w.name = "delta_keyframe";
  w.options.payload_strategy = PayloadKind::kDelta;
  w.options.delta_keyframe_interval = 2;
  std::string base(128, 'x');
  w.ops = {Pnew("blob", base)};
  for (int i = 0; i < 4; ++i) {
    std::string edit = base;
    edit[i * 7] = static_cast<char>('A' + i);  // Small edits: real deltas.
    w.ops.push_back(NewVersion(1));
    w.ops.push_back(Update(1, edit));
  }
  w.ops.push_back(PdeleteVersion(1, 2));  // Splice inside the delta chain.
  RunWithFloor(w, /*min_injections=*/250);
}

// Explicit transaction groups: a multi-call commit must be all-or-nothing,
// and an abort group must leave no trace no matter where the crash lands.
TEST(CrashMatrixTest, GroupedCommitAndAbort) {
  Workload w;
  w.name = "grouped_txn";
  w.ops = {
      Pnew("doc", "seed"),
      [](Database& db) -> Status {  // Group of three calls, one commit.
        ODE_RETURN_IF_ERROR(db.Begin());
        Status s = db.NewVersionOf(ObjectId{1}).status();
        if (s.ok()) s = db.UpdateLatest(ObjectId{1}, Slice("grouped"));
        if (s.ok()) {
          auto tid = db.RegisterType("doc");
          s = tid.ok() ? db.PnewRaw(*tid, Slice("second object")).status()
                       : tid.status();
        }
        if (!s.ok()) {
          (void)db.Abort();
          return s;
        }
        return db.Commit();
      },
      [](Database& db) -> Status {  // Deliberate abort: a logical no-op.
        ODE_RETURN_IF_ERROR(db.Begin());
        (void)db.UpdateLatest(ObjectId{1}, Slice("never visible"));
        return db.Abort();
      },
      Update(1, "after abort"),
  };
  RunWithFloor(w, /*min_injections=*/100);
}

// Vacuum rebuilds all four catalog trees; a crash anywhere in the rebuild
// (or in its checkpoint) must recover to the same logical state.
TEST(CrashMatrixTest, VacuumInterruptedMidRebuild) {
  Workload w;
  w.name = "vacuum";
  w.ops = {
      Pnew("doc", std::string(80, 'p')),
      Pnew("doc", std::string(80, 'q')),
      NewVersion(1),
      PdeleteObject(2),  // Leave dead entries for Vacuum to reclaim.
      [](Database& db) -> Status { return db.Vacuum(); },
      Pnew("doc", "post-vacuum"),
  };
  RunWithFloor(w, /*min_injections=*/180);
}

// Acceptance criterion: a failed fsync during Commit must surface as a
// non-OK Status from the mutating call, and the engine must refuse further
// transactions (the unsynced WAL tail could otherwise become durable later,
// silently resurrecting the failed commit).
TEST(CrashMatrixTest, FailedCommitSyncSurfacesAndPoisons) {
  FaultInjectionEnv env(nullptr);
  DatabaseOptions opts;
  opts.storage.env = &env;
  opts.storage.path = "/db";
  ASSERT_OK_AND_ASSIGN(auto db, Database::Open(opts));
  ASSERT_OK_AND_ASSIGN(uint32_t tid, db->RegisterType("doc"));
  ASSERT_OK(db->PnewRaw(tid, Slice("durable")).status());

  env.FailNth(FaultOp::kSync, 0, Status::IOError("injected fsync failure"),
              /*sticky=*/false);
  Status s = db->PnewRaw(tid, Slice("lost")).status();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError()) << s;

  // The disk is healthy again, but the engine stays poisoned.
  Status begin = db->Begin();
  ASSERT_FALSE(begin.ok());
  EXPECT_TRUE(begin.IsFailedPrecondition()) << begin;

  // Power-loss then reopen: the un-fsynced records of the failed commit are
  // gone, and fresh recovery restores service with the committed prefix.
  // (Without the crash the bytes could survive — the kKeepAll ambiguity —
  // which is exactly why the engine must refuse to fsync them later.)
  db.reset();
  env.CrashAndLoseUnsynced();
  ASSERT_OK_AND_ASSIGN(db, Database::Open(opts));
  ASSERT_OK_AND_ASSIGN(auto payload, db->ReadLatest(ObjectId{1}));
  EXPECT_EQ(payload, "durable");
  ASSERT_OK_AND_ASSIGN(bool second, db->ObjectExists(ObjectId{2}));
  EXPECT_FALSE(second);
}

}  // namespace
}  // namespace ode
