#include "storage/btree.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/storage_engine.h"
#include "tests/testing/util.h"

namespace ode {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StorageOptions options;
    options.env = &env_;
    options.path = "/db";
    auto engine = StorageEngine::Open(options);
    ASSERT_TRUE(engine.ok()) << engine.status();
    engine_ = std::move(*engine);
  }

  void InTxn(const std::function<Status(BTree&)>& body) {
    ASSERT_OK(engine_->WithTxn([&](Txn& txn) -> Status {
      auto tree = BTree::Open(&txn, 4);
      if (!tree.ok()) return tree.status();
      return body(*tree);
    }));
  }

  /// Key like "key-000042" so lexicographic order == numeric order.
  static std::string Key(int i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "key-%06d", i);
    return buf;
  }

  MemEnv env_;
  std::unique_ptr<StorageEngine> engine_;
};

TEST_F(BTreeTest, EmptyTreeGetFails) {
  InTxn([](BTree& tree) -> Status {
    EXPECT_TRUE(tree.Get(Slice("missing")).status().IsNotFound());
    return Status::OK();
  });
}

TEST_F(BTreeTest, PutGetSingle) {
  InTxn([](BTree& tree) -> Status {
    ODE_RETURN_IF_ERROR(tree.Put(Slice("k"), Slice("v")));
    auto v = tree.Get(Slice("k"));
    EXPECT_TRUE(v.ok());
    EXPECT_EQ(*v, "v");
    return Status::OK();
  });
}

TEST_F(BTreeTest, PutReplacesExisting) {
  InTxn([](BTree& tree) -> Status {
    ODE_RETURN_IF_ERROR(tree.Put(Slice("k"), Slice("v1")));
    ODE_RETURN_IF_ERROR(tree.Put(Slice("k"), Slice("v2")));
    auto v = tree.Get(Slice("k"));
    EXPECT_EQ(*v, "v2");
    auto count = tree.Count();
    EXPECT_EQ(*count, 1u);
    return Status::OK();
  });
}

TEST_F(BTreeTest, ManyKeysForceSplits) {
  constexpr int kN = 2000;
  InTxn([&](BTree& tree) -> Status {
    for (int i = 0; i < kN; ++i) {
      ODE_RETURN_IF_ERROR(tree.Put(Slice(Key(i)), Slice("value-" + Key(i))));
    }
    auto height = tree.Height();
    EXPECT_GT(*height, 1u);  // Must have split.
    for (int i = 0; i < kN; ++i) {
      auto v = tree.Get(Slice(Key(i)));
      if (!v.ok()) return v.status();
      EXPECT_EQ(*v, "value-" + Key(i));
    }
    auto count = tree.Count();
    EXPECT_EQ(*count, static_cast<uint64_t>(kN));
    return Status::OK();
  });
}

TEST_F(BTreeTest, ReverseInsertionOrder) {
  InTxn([&](BTree& tree) -> Status {
    for (int i = 999; i >= 0; --i) {
      ODE_RETURN_IF_ERROR(tree.Put(Slice(Key(i)), Slice(Key(i))));
    }
    // Iteration yields sorted order regardless of insertion order.
    auto it = tree.NewIterator();
    int expected = 0;
    for (it.SeekToFirst(); it.Valid(); it.Next()) {
      EXPECT_EQ(it.key(), Key(expected++));
    }
    EXPECT_EQ(expected, 1000);
    return it.status();
  });
}

TEST_F(BTreeTest, DeleteRemovesKey) {
  InTxn([&](BTree& tree) -> Status {
    ODE_RETURN_IF_ERROR(tree.Put(Slice("a"), Slice("1")));
    ODE_RETURN_IF_ERROR(tree.Put(Slice("b"), Slice("2")));
    ODE_RETURN_IF_ERROR(tree.Delete(Slice("a")));
    EXPECT_TRUE(tree.Get(Slice("a")).status().IsNotFound());
    EXPECT_EQ(*tree.Get(Slice("b")), "2");
    EXPECT_TRUE(tree.Delete(Slice("a")).IsNotFound());
    return Status::OK();
  });
}

TEST_F(BTreeTest, DeleteEverythingThenReinsert) {
  constexpr int kN = 500;
  InTxn([&](BTree& tree) -> Status {
    for (int i = 0; i < kN; ++i) {
      ODE_RETURN_IF_ERROR(tree.Put(Slice(Key(i)), Slice("x")));
    }
    for (int i = 0; i < kN; ++i) {
      ODE_RETURN_IF_ERROR(tree.Delete(Slice(Key(i))));
    }
    auto count = tree.Count();
    EXPECT_EQ(*count, 0u);
    for (int i = 0; i < kN; ++i) {
      ODE_RETURN_IF_ERROR(tree.Put(Slice(Key(i)), Slice("y")));
    }
    auto count2 = tree.Count();
    EXPECT_EQ(*count2, static_cast<uint64_t>(kN));
    EXPECT_EQ(*tree.Get(Slice(Key(250))), "y");
    return Status::OK();
  });
}

TEST_F(BTreeTest, SeekFindsFirstAtOrAfter) {
  InTxn([&](BTree& tree) -> Status {
    for (int i = 0; i < 100; i += 10) {
      ODE_RETURN_IF_ERROR(tree.Put(Slice(Key(i)), Slice("v")));
    }
    auto it = tree.NewIterator();
    it.Seek(Slice(Key(25)));
    if (!it.Valid()) return Status::Internal("unexpected invalid iterator");
    EXPECT_EQ(it.key(), Key(30));
    it.Seek(Slice(Key(30)));
    if (!it.Valid()) return Status::Internal("unexpected invalid iterator");
    EXPECT_EQ(it.key(), Key(30));
    it.Seek(Slice(Key(91)));
    EXPECT_FALSE(it.Valid());
    return Status::OK();
  });
}

TEST_F(BTreeTest, SeekForPrevFindsLastAtOrBefore) {
  InTxn([&](BTree& tree) -> Status {
    for (int i = 0; i < 100; i += 10) {
      ODE_RETURN_IF_ERROR(tree.Put(Slice(Key(i)), Slice("v")));
    }
    auto it = tree.NewIterator();
    it.SeekForPrev(Slice(Key(25)));
    if (!it.Valid()) return Status::Internal("unexpected invalid iterator");
    EXPECT_EQ(it.key(), Key(20));
    it.SeekForPrev(Slice(Key(20)));
    if (!it.Valid()) return Status::Internal("unexpected invalid iterator");
    EXPECT_EQ(it.key(), Key(20));
    it.SeekForPrev(Slice("key-000000"));
    if (!it.Valid()) return Status::Internal("unexpected invalid iterator");
    EXPECT_EQ(it.key(), Key(0));
    it.SeekForPrev(Slice("a"));  // Before everything.
    EXPECT_FALSE(it.Valid());
    return Status::OK();
  });
}

TEST_F(BTreeTest, BidirectionalIteration) {
  constexpr int kN = 300;
  InTxn([&](BTree& tree) -> Status {
    for (int i = 0; i < kN; ++i) {
      ODE_RETURN_IF_ERROR(tree.Put(Slice(Key(i)), Slice("v")));
    }
    auto it = tree.NewIterator();
    it.SeekToLast();
    int expected = kN - 1;
    for (; it.Valid(); it.Prev()) {
      EXPECT_EQ(it.key(), Key(expected--));
    }
    EXPECT_EQ(expected, -1);
    return it.status();
  });
}

TEST_F(BTreeTest, IterationSkipsEmptiedLeaves) {
  constexpr int kN = 1000;
  InTxn([&](BTree& tree) -> Status {
    for (int i = 0; i < kN; ++i) {
      ODE_RETURN_IF_ERROR(tree.Put(Slice(Key(i)), Slice("v")));
    }
    // Delete a contiguous middle range, emptying interior leaves.
    for (int i = 200; i < 800; ++i) {
      ODE_RETURN_IF_ERROR(tree.Delete(Slice(Key(i))));
    }
    auto it = tree.NewIterator();
    it.Seek(Slice(Key(199)));
    if (!it.Valid()) return Status::Internal("unexpected invalid iterator");
    EXPECT_EQ(it.key(), Key(199));
    it.Next();
    if (!it.Valid()) return Status::Internal("unexpected invalid iterator");
    EXPECT_EQ(it.key(), Key(800));
    // Backwards across the gap too.
    it.SeekForPrev(Slice(Key(799)));
    if (!it.Valid()) return Status::Internal("unexpected invalid iterator");
    EXPECT_EQ(it.key(), Key(199));
    return Status::OK();
  });
}

TEST_F(BTreeTest, LargeValuesNearCellLimit) {
  InTxn([&](BTree& tree) -> Status {
    const std::string big_value(BTree::kMaxCellBytes - 20, 'V');
    for (int i = 0; i < 20; ++i) {
      ODE_RETURN_IF_ERROR(tree.Put(Slice(Key(i)), Slice(big_value)));
    }
    auto v = tree.Get(Slice(Key(10)));
    EXPECT_EQ(v->size(), big_value.size());
    return Status::OK();
  });
}

TEST_F(BTreeTest, OversizedEntryRejected) {
  InTxn([&](BTree& tree) -> Status {
    const std::string huge(BTree::kMaxCellBytes + 1, 'x');
    EXPECT_TRUE(tree.Put(Slice("k"), Slice(huge)).IsInvalidArgument());
    return Status::OK();
  });
}

TEST_F(BTreeTest, EmptyKeyAndValueSupported) {
  InTxn([](BTree& tree) -> Status {
    ODE_RETURN_IF_ERROR(tree.Put(Slice(""), Slice("")));
    auto v = tree.Get(Slice(""));
    EXPECT_TRUE(v.ok());
    EXPECT_TRUE(v->empty());
    return Status::OK();
  });
}

TEST_F(BTreeTest, BinaryKeysOrderedBytewise) {
  InTxn([](BTree& tree) -> Status {
    const std::string k1("\x00\x01", 2);
    const std::string k2("\x00\xff", 2);
    const std::string k3("\x01\x00", 2);
    ODE_RETURN_IF_ERROR(tree.Put(Slice(k3), Slice("3")));
    ODE_RETURN_IF_ERROR(tree.Put(Slice(k1), Slice("1")));
    ODE_RETURN_IF_ERROR(tree.Put(Slice(k2), Slice("2")));
    auto it = tree.NewIterator();
    it.SeekToFirst();
    EXPECT_EQ(it.value(), "1");
    it.Next();
    EXPECT_EQ(it.value(), "2");
    it.Next();
    EXPECT_EQ(it.value(), "3");
    return Status::OK();
  });
}

TEST_F(BTreeTest, PersistsAcrossTransactions) {
  InTxn([](BTree& tree) { return tree.Put(Slice("durable"), Slice("yes")); });
  InTxn([](BTree& tree) -> Status {
    auto v = tree.Get(Slice("durable"));
    EXPECT_EQ(*v, "yes");
    return Status::OK();
  });
}

TEST_F(BTreeTest, TwoTreesInDifferentSlotsAreIndependent) {
  ASSERT_OK(engine_->WithTxn([](Txn& txn) -> Status {
    auto t1 = BTree::Open(&txn, 4);
    auto t2 = BTree::Open(&txn, 5);
    if (!t1.ok()) return t1.status();
    if (!t2.ok()) return t2.status();
    ODE_RETURN_IF_ERROR(t1->Put(Slice("k"), Slice("tree1")));
    ODE_RETURN_IF_ERROR(t2->Put(Slice("k"), Slice("tree2")));
    EXPECT_EQ(*t1->Get(Slice("k")), "tree1");
    EXPECT_EQ(*t2->Get(Slice("k")), "tree2");
    return Status::OK();
  }));
}

}  // namespace
}  // namespace ode
