#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/env.h"
#include "tests/testing/util.h"

// Multi-reader stress tests for the sharded BufferPool.  The pool's contract
// is single-writer / multi-reader: any number of threads may Fetch / read /
// Release concurrently as long as no thread mutates pages.  These tests are
// the TSan targets for the storage layer (ctest -R Concurrent).

namespace ode {
namespace {

class BufferPoolConcurrentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto disk = DiskManager::Open(&env_, "/db");
    ASSERT_TRUE(disk.ok());
    disk_ = std::move(*disk);
  }

  /// Seeds page `id` with a payload derived from its id so a reader can
  /// verify it got the right bytes no matter which thread faulted it in.
  void SeedPage(PageId id) {
    char buf[kPageSize] = {};
    const std::string text = PageText(id);
    std::memcpy(buf, text.data(), text.size());
    ASSERT_OK(disk_->WritePage(id, buf));
  }

  static std::string PageText(PageId id) {
    return "page-" + std::to_string(id) + "-payload";
  }

  MemEnv env_;
  std::unique_ptr<DiskManager> disk_;
};

TEST_F(BufferPoolConcurrentTest, ConcurrentFetchAllResident) {
  constexpr PageId kPages = 32;
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 2000;
  for (PageId id = 1; id <= kPages; ++id) SeedPage(id);

  // Capacity exceeds the working set: after warm-up everything is a hit and
  // threads only contend on shard mutexes and the LRU lists.
  BufferPool pool(disk_.get(), /*capacity_pages=*/64, /*shards=*/4);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const PageId id = 1 + static_cast<PageId>((t * 31 + i) % kPages);
        auto handle = pool.Fetch(id);
        if (!handle.ok()) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const std::string want = PageText(id);
        if (std::memcmp(handle->data(), want.data(), want.size()) != 0) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0);
  const BufferPoolStats stats = pool.stats();
  // Every fetch is accounted exactly once even under contention.
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kItersPerThread);
  EXPECT_GE(stats.misses, static_cast<uint64_t>(kPages));
}

TEST_F(BufferPoolConcurrentTest, ConcurrentFetchUnderEvictionPressure) {
  constexpr PageId kPages = 64;
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 1500;
  for (PageId id = 1; id <= kPages; ++id) SeedPage(id);

  // Capacity far below the working set: threads constantly evict each
  // other's pages and re-fault them from disk.
  BufferPool pool(disk_.get(), /*capacity_pages=*/8, /*shards=*/4);

  std::atomic<int> mismatches{0};
  std::atomic<int> fetch_errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const PageId id = 1 + static_cast<PageId>((t * 17 + i * 7) % kPages);
        auto handle = pool.Fetch(id);
        if (!handle.ok()) {
          fetch_errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const std::string want = PageText(id);
        if (std::memcmp(handle->data(), want.data(), want.size()) != 0) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(fetch_errors.load(), 0);
  EXPECT_GT(pool.stats().evictions, 0u);
  // A shard may end over its capacity slice if the final concurrent fetches
  // hit it while every frame was pinned; one quiescent fetch per shard
  // drains that transient overage, after which residency must respect the
  // budget again.
  for (PageId id = 1; id <= 2 * pool.shard_count(); ++id) {
    ASSERT_OK(pool.Fetch(id).status());
  }
  EXPECT_LE(pool.resident_pages(), 8u);
}

TEST_F(BufferPoolConcurrentTest, ConcurrentPinChurnProtectsHeldPages) {
  constexpr PageId kPages = 48;
  constexpr int kThreads = 6;
  constexpr int kItersPerThread = 800;
  for (PageId id = 1; id <= kPages; ++id) SeedPage(id);

  BufferPool pool(disk_.get(), /*capacity_pages=*/12, /*shards=*/4);

  // Each thread holds a pinned page while churning through the rest, then
  // re-verifies the held page's bytes: eviction must never reclaim a frame
  // whose pin count another thread just raised.
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const PageId held_id = 1 + static_cast<PageId>((t + i) % kPages);
        auto held = pool.Fetch(held_id);
        if (!held.ok()) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // Churn a few other pages to create eviction pressure while the
        // handle above stays pinned.
        for (int j = 1; j <= 4; ++j) {
          const PageId other =
              1 + static_cast<PageId>((held_id + j * 5 + t) % kPages);
          auto h = pool.Fetch(other);
          if (!h.ok()) mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        const std::string want = PageText(held_id);
        if (std::memcmp(held->data(), want.data(), want.size()) != 0) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(BufferPoolConcurrentTest, SingleShardStillSafeConcurrently) {
  // shards = 1 funnels everything through one mutex; correctness must not
  // depend on striping.
  constexpr PageId kPages = 16;
  for (PageId id = 1; id <= kPages; ++id) SeedPage(id);
  BufferPool pool(disk_.get(), /*capacity_pages=*/4, /*shards=*/1);
  ASSERT_EQ(pool.shard_count(), 1u);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 1000; ++i) {
        const PageId id = 1 + static_cast<PageId>((t + i) % kPages);
        auto handle = pool.Fetch(id);
        if (!handle.ok()) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const std::string want = PageText(id);
        if (std::memcmp(handle->data(), want.data(), want.size()) != 0) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace ode
