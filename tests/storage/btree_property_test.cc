#include <gtest/gtest.h>

#include <map>
#include <string>

#include "storage/btree.h"
#include "storage/storage_engine.h"
#include "tests/testing/util.h"
#include "util/random.h"

namespace ode {
namespace {

/// Parameters for one randomized run: (seed, operation count, key space).
struct PropertyParam {
  uint64_t seed;
  int ops;
  int key_space;
};

/// Differential test: random Put/Delete/Get/scan sequences checked against a
/// std::map reference model.
class BTreePropertyTest : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(BTreePropertyTest, MatchesReferenceModel) {
  const PropertyParam param = GetParam();
  MemEnv env;
  StorageOptions options;
  options.env = &env;
  options.path = "/db";
  auto engine_or = StorageEngine::Open(options);
  ASSERT_TRUE(engine_or.ok());
  auto engine = std::move(*engine_or);

  Random rng(param.seed);
  std::map<std::string, std::string> model;

  auto random_key = [&] {
    return "k" + std::to_string(rng.Uniform(param.key_space));
  };

  for (int op = 0; op < param.ops; ++op) {
    ASSERT_OK(engine->WithTxn([&](Txn& txn) -> Status {
      auto tree = BTree::Open(&txn, 4);
      if (!tree.ok()) return tree.status();
      const int action = static_cast<int>(rng.Uniform(10));
      if (action < 5) {  // 50% put
        std::string key = random_key();
        std::string value = rng.NextBytes(rng.Range(0, 200));
        ODE_RETURN_IF_ERROR(tree->Put(Slice(key), Slice(value)));
        model[key] = value;
      } else if (action < 8) {  // 30% delete
        std::string key = random_key();
        Status s = tree->Delete(Slice(key));
        if (model.count(key) > 0) {
          EXPECT_TRUE(s.ok()) << s;
          model.erase(key);
        } else {
          EXPECT_TRUE(s.IsNotFound());
        }
      } else {  // 20% point lookup
        std::string key = random_key();
        auto v = tree->Get(Slice(key));
        if (model.count(key) > 0) {
          EXPECT_TRUE(v.ok());
          if (v.ok()) {
            EXPECT_EQ(*v, model[key]);
          }
        } else {
          EXPECT_TRUE(v.status().IsNotFound());
        }
      }
      return Status::OK();
    }));
  }

  // Final full-scan comparison: same entries, same order.
  ASSERT_OK(engine->WithTxn([&](Txn& txn) -> Status {
    auto tree = BTree::Open(&txn, 4);
    if (!tree.ok()) return tree.status();
    auto it = tree->NewIterator();
    auto model_it = model.begin();
    for (it.SeekToFirst(); it.Valid(); it.Next(), ++model_it) {
      if (model_it == model.end()) {
        ADD_FAILURE() << "tree has extra key " << it.key();
        break;
      }
      EXPECT_EQ(it.key(), model_it->first);
      EXPECT_EQ(it.value(), model_it->second);
    }
    EXPECT_EQ(model_it, model.end());
    // And in reverse.
    auto rit = model.rbegin();
    for (it.SeekToLast(); it.Valid(); it.Prev(), ++rit) {
      if (rit == model.rend()) {
        ADD_FAILURE() << "reverse scan has extra key " << it.key();
        break;
      }
      EXPECT_EQ(it.key(), rit->first);
    }
    return it.status();
  }));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BTreePropertyTest,
    ::testing::Values(PropertyParam{1, 1500, 100},     // Hot keys, churn.
                      PropertyParam{2, 1500, 10000},   // Sparse keys.
                      PropertyParam{3, 3000, 500},     // Mixed.
                      PropertyParam{4, 800, 10},       // Tiny key space.
                      PropertyParam{5, 2000, 2000}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_ops" +
             std::to_string(info.param.ops) + "_keys" +
             std::to_string(info.param.key_space);
    });

/// Seek/SeekForPrev consistency against the model on a static tree.
TEST(BTreeSeekPropertyTest, SeekMatchesModelBounds) {
  MemEnv env;
  StorageOptions options;
  options.env = &env;
  options.path = "/db";
  auto engine_or = StorageEngine::Open(options);
  ASSERT_TRUE(engine_or.ok());
  auto engine = std::move(*engine_or);

  Random rng(99);
  std::map<std::string, std::string> model;
  ASSERT_OK(engine->WithTxn([&](Txn& txn) -> Status {
    auto tree = BTree::Open(&txn, 4);
    if (!tree.ok()) return tree.status();
    for (int i = 0; i < 800; ++i) {
      std::string key = rng.NextString(rng.Range(1, 12));
      std::string value = std::to_string(i);
      ODE_RETURN_IF_ERROR(tree->Put(Slice(key), Slice(value)));
      model[key] = value;
    }
    for (int probe = 0; probe < 500; ++probe) {
      std::string target = rng.NextString(rng.Range(1, 12));
      auto it = tree->NewIterator();
      it.Seek(Slice(target));
      auto lb = model.lower_bound(target);
      if (lb == model.end()) {
        EXPECT_FALSE(it.Valid()) << "target=" << target;
      } else {
        if (!it.Valid()) return Status::Internal("invalid iterator at " + target);
        EXPECT_EQ(it.key(), lb->first);
      }
      it.SeekForPrev(Slice(target));
      auto ub = model.upper_bound(target);
      if (ub == model.begin()) {
        EXPECT_FALSE(it.Valid()) << "target=" << target;
      } else {
        --ub;
        if (!it.Valid()) return Status::Internal("invalid iterator at " + target);
        EXPECT_EQ(it.key(), ub->first);
      }
    }
    return Status::OK();
  }));
}

}  // namespace
}  // namespace ode
