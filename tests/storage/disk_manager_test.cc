#include "storage/disk_manager.h"

#include <gtest/gtest.h>

#include <cstring>

#include "storage/env.h"
#include "tests/testing/util.h"

namespace ode {
namespace {

class DiskManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto disk = DiskManager::Open(&env_, "/data");
    ASSERT_TRUE(disk.ok());
    disk_ = std::move(*disk);
  }
  MemEnv env_;
  std::unique_ptr<DiskManager> disk_;
};

TEST_F(DiskManagerTest, WriteReadRoundTrip) {
  char out[kPageSize];
  std::memset(out, 0x5c, sizeof(out));
  ASSERT_OK(disk_->WritePage(3, out));
  char in[kPageSize];
  ASSERT_OK(disk_->ReadPage(3, in));
  EXPECT_EQ(std::memcmp(in, out, kPageSize), 0);
}

TEST_F(DiskManagerTest, BeyondEofReadsZero) {
  char in[kPageSize];
  std::memset(in, 0xff, sizeof(in));
  ASSERT_OK(disk_->ReadPage(100, in));
  for (size_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(in[i], 0) << "offset " << i;
  }
}

TEST_F(DiskManagerTest, WritingHighPageGrowsFile) {
  ASSERT_OK_AND_ASSIGN(uint32_t before, disk_->FilePageCount());
  EXPECT_EQ(before, 0u);
  char page[kPageSize] = {};
  ASSERT_OK(disk_->WritePage(9, page));
  ASSERT_OK_AND_ASSIGN(uint32_t after, disk_->FilePageCount());
  EXPECT_EQ(after, 10u);
}

TEST_F(DiskManagerTest, GapPagesReadAsZero) {
  char page[kPageSize];
  std::memset(page, 0x11, sizeof(page));
  ASSERT_OK(disk_->WritePage(5, page));
  // Pages 0..4 were never written: they must read as zero.
  char in[kPageSize];
  std::memset(in, 0x22, sizeof(in));
  ASSERT_OK(disk_->ReadPage(2, in));
  for (size_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(in[i], 0);
  }
}

TEST_F(DiskManagerTest, OverwritePreservesNeighbors) {
  char a[kPageSize], b[kPageSize], c[kPageSize];
  std::memset(a, 'a', sizeof(a));
  std::memset(b, 'b', sizeof(b));
  std::memset(c, 'c', sizeof(c));
  ASSERT_OK(disk_->WritePage(1, a));
  ASSERT_OK(disk_->WritePage(2, b));
  ASSERT_OK(disk_->WritePage(1, c));  // Overwrite page 1.
  char in[kPageSize];
  ASSERT_OK(disk_->ReadPage(2, in));
  EXPECT_EQ(in[0], 'b');
  ASSERT_OK(disk_->ReadPage(1, in));
  EXPECT_EQ(in[0], 'c');
}

}  // namespace
}  // namespace ode
