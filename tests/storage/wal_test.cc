#include "storage/wal.h"

#include <gtest/gtest.h>

#include <cstring>

#include "storage/disk_manager.h"
#include "storage/env.h"
#include "tests/testing/util.h"

namespace ode {
namespace {

std::string PageWith(const std::string& text) {
  std::string page(kPageSize, '\0');
  std::memcpy(page.data(), text.data(), text.size());
  return page;
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto wal = Wal::Open(&env_, "/wal");
    ASSERT_TRUE(wal.ok());
    wal_ = std::move(*wal);
    auto disk = DiskManager::Open(&env_, "/data");
    ASSERT_TRUE(disk.ok());
    disk_ = std::move(*disk);
  }

  MemEnv env_;
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<DiskManager> disk_;
};

TEST_F(WalTest, AppendAndReadAll) {
  ASSERT_OK(wal_->AppendBegin(1));
  ASSERT_OK(wal_->AppendPageImage(1, 7, PageWith("page seven").data()));
  ASSERT_OK(wal_->AppendCommit(1));
  ASSERT_OK(wal_->Sync());

  ASSERT_OK_AND_ASSIGN(auto records, wal_->ReadAll());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].type, WalRecordType::kBegin);
  EXPECT_EQ(records[0].txn_id, 1u);
  EXPECT_EQ(records[1].type, WalRecordType::kPageImage);
  EXPECT_EQ(records[1].page_id, 7u);
  EXPECT_EQ(records[1].image.substr(0, 10), "page seven");
  EXPECT_EQ(records[2].type, WalRecordType::kCommit);
}

TEST_F(WalTest, RecoverAppliesCommittedTxn) {
  ASSERT_OK(wal_->AppendBegin(1));
  ASSERT_OK(wal_->AppendPageImage(1, 3, PageWith("committed").data()));
  ASSERT_OK(wal_->AppendCommit(1));
  ASSERT_OK(wal_->Sync());

  ASSERT_OK_AND_ASSIGN(RecoveryStats stats, wal_->Recover(disk_.get()));
  EXPECT_EQ(stats.committed_txns, 1u);
  EXPECT_EQ(stats.pages_replayed, 1u);
  char buf[kPageSize];
  ASSERT_OK(disk_->ReadPage(3, buf));
  EXPECT_EQ(std::string(buf, 9), "committed");
}

TEST_F(WalTest, RecoverSkipsUncommittedTxn) {
  ASSERT_OK(wal_->AppendBegin(1));
  ASSERT_OK(wal_->AppendPageImage(1, 3, PageWith("never committed").data()));
  // No commit record: the crash happened mid-transaction.
  ASSERT_OK(wal_->Sync());

  ASSERT_OK_AND_ASSIGN(RecoveryStats stats, wal_->Recover(disk_.get()));
  EXPECT_EQ(stats.committed_txns, 0u);
  EXPECT_EQ(stats.discarded_txns, 1u);
  EXPECT_EQ(stats.pages_replayed, 0u);
  char buf[kPageSize];
  ASSERT_OK(disk_->ReadPage(3, buf));
  EXPECT_NE(std::string(buf, 5), "never");
}

TEST_F(WalTest, LaterImageOfSamePageWins) {
  ASSERT_OK(wal_->AppendBegin(1));
  ASSERT_OK(wal_->AppendPageImage(1, 3, PageWith("first").data()));
  ASSERT_OK(wal_->AppendCommit(1));
  ASSERT_OK(wal_->AppendBegin(2));
  ASSERT_OK(wal_->AppendPageImage(2, 3, PageWith("second").data()));
  ASSERT_OK(wal_->AppendCommit(2));
  ASSERT_OK(wal_->Sync());

  ASSERT_OK_AND_ASSIGN(RecoveryStats stats, wal_->Recover(disk_.get()));
  EXPECT_EQ(stats.committed_txns, 2u);
  char buf[kPageSize];
  ASSERT_OK(disk_->ReadPage(3, buf));
  EXPECT_EQ(std::string(buf, 6), "second");
}

TEST_F(WalTest, TornTailIsDropped) {
  ASSERT_OK(wal_->AppendBegin(1));
  ASSERT_OK(wal_->AppendPageImage(1, 2, PageWith("good").data()));
  ASSERT_OK(wal_->AppendCommit(1));
  ASSERT_OK(wal_->Sync());
  // Simulate a torn append: write garbage half-record at the end.
  ASSERT_OK_AND_ASSIGN(auto file, env_.OpenFile("/wal"));
  ASSERT_OK(file->Append(Slice("\x50\x00\x00\x00garbage")));

  ASSERT_OK_AND_ASSIGN(RecoveryStats stats, wal_->Recover(disk_.get()));
  EXPECT_TRUE(stats.tail_truncated);
  EXPECT_EQ(stats.committed_txns, 1u);
  EXPECT_EQ(stats.pages_replayed, 1u);
}

TEST_F(WalTest, CorruptedRecordStopsScan) {
  ASSERT_OK(wal_->AppendBegin(1));
  ASSERT_OK(wal_->AppendCommit(1));
  ASSERT_OK(wal_->AppendBegin(2));
  ASSERT_OK(wal_->AppendCommit(2));
  // Flip a byte inside the second record pair's payload.
  ASSERT_OK_AND_ASSIGN(auto file, env_.OpenFile("/wal"));
  ASSERT_OK_AND_ASSIGN(uint64_t size, file->Size());
  std::string scratch;
  Slice content;
  ASSERT_OK(file->Read(0, size, &scratch, &content));
  std::string mutated = content.ToString();
  mutated[mutated.size() - 1] ^= 0x40;
  ASSERT_OK(file->Write(0, Slice(mutated)));

  ASSERT_OK_AND_ASSIGN(auto records, wal_->ReadAll());
  EXPECT_EQ(records.size(), 3u);  // Fourth record fails its CRC.
}

TEST_F(WalTest, ZeroSuppressionShrinksRecordsLosslessly) {
  // A nearly-empty page logs small; a full page logs big; both replay to
  // their exact original contents.
  std::string sparse(kPageSize, '\0');
  sparse.replace(0, 5, "head!");
  std::string dense(kPageSize, 'x');
  ASSERT_OK(wal_->AppendBegin(1));
  ASSERT_OK(wal_->AppendPageImage(1, 1, sparse.data()));
  const uint64_t after_sparse = wal_->bytes_appended();
  ASSERT_OK(wal_->AppendPageImage(1, 2, dense.data()));
  const uint64_t after_dense = wal_->bytes_appended();
  ASSERT_OK(wal_->AppendCommit(1));
  ASSERT_OK(wal_->Sync());
  EXPECT_LT(after_sparse, 200u);  // ~5 bytes of payload + framing.
  EXPECT_GT(after_dense - after_sparse, kPageSize);  // Full image.

  ASSERT_OK_AND_ASSIGN(RecoveryStats stats, wal_->Recover(disk_.get()));
  EXPECT_EQ(stats.pages_replayed, 2u);
  char buf[kPageSize];
  ASSERT_OK(disk_->ReadPage(1, buf));
  EXPECT_EQ(std::memcmp(buf, sparse.data(), kPageSize), 0);
  ASSERT_OK(disk_->ReadPage(2, buf));
  EXPECT_EQ(std::memcmp(buf, dense.data(), kPageSize), 0);
}

TEST_F(WalTest, AllZeroPageImageRoundTrips) {
  std::string zeros(kPageSize, '\0');
  ASSERT_OK(wal_->AppendBegin(1));
  ASSERT_OK(wal_->AppendPageImage(1, 3, zeros.data()));
  ASSERT_OK(wal_->AppendCommit(1));
  ASSERT_OK_AND_ASSIGN(auto records, wal_->ReadAll());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[1].image.size(), kPageSize);
  EXPECT_EQ(records[1].image, zeros);
}

TEST_F(WalTest, TruncateEmptiesLog) {
  ASSERT_OK(wal_->AppendBegin(1));
  ASSERT_OK(wal_->AppendCommit(1));
  ASSERT_OK(wal_->Truncate());
  ASSERT_OK_AND_ASSIGN(auto records, wal_->ReadAll());
  EXPECT_TRUE(records.empty());
}

TEST_F(WalTest, EmptyLogRecoversCleanly) {
  ASSERT_OK_AND_ASSIGN(RecoveryStats stats, wal_->Recover(disk_.get()));
  EXPECT_EQ(stats.records_scanned, 0u);
  EXPECT_EQ(stats.pages_replayed, 0u);
  EXPECT_FALSE(stats.tail_truncated);
}

TEST_F(WalTest, InterleavedTransactionsRecoverIndependently) {
  // T1 commits, T2 does not; their page images interleave.
  ASSERT_OK(wal_->AppendBegin(1));
  ASSERT_OK(wal_->AppendBegin(2));
  ASSERT_OK(wal_->AppendPageImage(2, 5, PageWith("t2 page").data()));
  ASSERT_OK(wal_->AppendPageImage(1, 4, PageWith("t1 page").data()));
  ASSERT_OK(wal_->AppendCommit(1));
  ASSERT_OK(wal_->Sync());

  ASSERT_OK_AND_ASSIGN(RecoveryStats stats, wal_->Recover(disk_.get()));
  EXPECT_EQ(stats.committed_txns, 1u);
  EXPECT_EQ(stats.discarded_txns, 1u);
  char buf[kPageSize];
  ASSERT_OK(disk_->ReadPage(4, buf));
  EXPECT_EQ(std::string(buf, 7), "t1 page");
  ASSERT_OK(disk_->ReadPage(5, buf));
  EXPECT_NE(std::string(buf, 7), "t2 page");
}

}  // namespace
}  // namespace ode
