// Group-commit behaviour at the engine level: fsync amortization across
// concurrent writers (the point of the whole refactor), solo-writer fsync
// discipline, async-commit durability watermarks, and the poison path.
//
// The *Concurrent* tests double as TSan targets: the CI tsan job replays
// `ctest -R Concurrent` under the race detector.

#include "storage/group_commit.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "storage/storage_engine.h"
#include "tests/testing/util.h"

namespace ode {
namespace {

std::unique_ptr<StorageEngine> OpenEngine(Env* env, StorageOptions options) {
  options.env = env;
  options.path = "/gc";
  auto engine = StorageEngine::Open(options);
  EXPECT_OK(engine.status());
  return engine.ok() ? std::move(*engine) : nullptr;
}

Status InsertOne(StorageEngine* e, const std::string& payload) {
  return e->WithTxn([&](Txn& txn) -> Status {
    auto r = e->heap().Insert(&txn, Slice(payload));
    return r.ok() ? Status::OK() : r.status();
  });
}

// A solo writer must keep the classic one-fsync-per-commit discipline: with
// nobody else in flight the leader must not linger waiting for company.
TEST(GroupCommitTest, SoloWriterOneFsyncPerCommit) {
  MemEnv env;
  auto engine = OpenEngine(&env, StorageOptions());
  ASSERT_NE(engine, nullptr);
  const uint64_t fsyncs_before = engine->metrics()->gc_fsyncs->value();
  const uint64_t commits_before = engine->metrics()->gc_commits->value();
  constexpr int kCommits = 10;
  for (int i = 0; i < kCommits; ++i) {
    ASSERT_OK(InsertOne(engine.get(), "solo"));
  }
  EXPECT_EQ(engine->metrics()->gc_commits->value() - commits_before,
            static_cast<uint64_t>(kCommits));
  EXPECT_EQ(engine->metrics()->gc_fsyncs->value() - fsyncs_before,
            static_cast<uint64_t>(kCommits));
}

// Acceptance criterion: under concurrent load, sync group commit must
// amortize fsyncs — strictly more commits than fsyncs.  Eight writers
// hammering commits with a generous gather window make a serial
// no-batching interleaving (one fsync per commit for ALL 1200 commits)
// practically impossible; even two commits sharing one fsync once breaks
// the equality.
TEST(GroupCommitTest, ConcurrentWritersShareFsyncs) {
  MemEnv env;
  StorageOptions options;
  options.group_commit_max_wait_us = 2000;
  auto engine = OpenEngine(&env, options);
  ASSERT_NE(engine, nullptr);
  constexpr int kThreads = 8;
  constexpr int kCommitsPerThread = 150;
  const uint64_t fsyncs_before = engine->metrics()->gc_fsyncs->value();
  const uint64_t commits_before = engine->metrics()->gc_commits->value();
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kCommitsPerThread; ++i) {
        ASSERT_OK(InsertOne(engine.get(),
                            "w" + std::to_string(t) + "_" + std::to_string(i)));
      }
    });
  }
  for (std::thread& th : writers) th.join();
  const uint64_t commits =
      engine->metrics()->gc_commits->value() - commits_before;
  const uint64_t fsyncs = engine->metrics()->gc_fsyncs->value() - fsyncs_before;
  EXPECT_EQ(commits, static_cast<uint64_t>(kThreads * kCommitsPerThread));
  EXPECT_GT(fsyncs, 0u);
  EXPECT_LT(fsyncs, commits) << "no two commits ever shared an fsync";
  // The batch-size histogram saw every batch, and at least one had > 1
  // commit (that is what commits > fsyncs means).
  const HistogramSnapshot batches =
      engine->metrics()->gc_batch_size->Snapshot();
  EXPECT_GT(batches.count, 0u);
  EXPECT_GT(batches.max, 1u);
  EXPECT_GT(engine->metrics()->gc_batches->value(), 0u);
}

// Async commits ack at append time; WaitForDurable is the fence that makes
// them durable.  After the fence the async-pending gauge must read zero and
// far fewer fsyncs than commits must have happened.
TEST(GroupCommitTest, ConcurrentAsyncCommitsDrainAtDurabilityFence) {
  MemEnv env;
  StorageOptions options;
  options.commit_mode = CommitMode::kAsync;
  auto engine = OpenEngine(&env, options);
  ASSERT_NE(engine, nullptr);
  constexpr int kThreads = 4;
  constexpr int kCommitsPerThread = 100;
  const uint64_t fsyncs_before = engine->metrics()->gc_fsyncs->value();
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kCommitsPerThread; ++i) {
        ASSERT_OK(InsertOne(engine.get(),
                            "a" + std::to_string(t) + "_" + std::to_string(i)));
      }
    });
  }
  for (std::thread& th : writers) th.join();
  ASSERT_OK(engine->WaitForDurable(UINT64_MAX));
  EXPECT_EQ(engine->metrics()->gc_async_pending->value(), 0);
  const uint64_t fsyncs = engine->metrics()->gc_fsyncs->value() - fsyncs_before;
  // 400 commits acked without a per-commit fsync: the catch-up fsyncs (the
  // fence plus any background ticks) are far fewer than the commit count.
  EXPECT_LT(fsyncs, static_cast<uint64_t>(kThreads * kCommitsPerThread));
}

// Writers to DIFFERENT objects run their apply sections serially (the apply
// latch) but overlap their durability waits; writers to the SAME stripe
// queue on the stripe latch.  Either way every commit must land exactly
// once — this pins the ticket bookkeeping (no lost wakeups, no double
// acks) under heavy interleaving.
TEST(GroupCommitTest, ConcurrentTicketsAckExactlyOnce) {
  MemEnv env;
  StorageOptions options;
  options.group_commit_max_batch = 4;  // Force multiple batches per burst.
  options.group_commit_max_wait_us = 500;
  auto engine = OpenEngine(&env, options);
  ASSERT_NE(engine, nullptr);
  constexpr int kThreads = 6;
  constexpr int kCommitsPerThread = 80;
  const uint64_t commits_before = engine->commit_count();
  std::atomic<uint64_t> acked{0};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kCommitsPerThread; ++i) {
        if (InsertOne(engine.get(), "tick").ok()) {
          acked.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : writers) th.join();
  EXPECT_EQ(acked.load(), static_cast<uint64_t>(kThreads * kCommitsPerThread));
  EXPECT_EQ(engine->commit_count() - commits_before,
            static_cast<uint64_t>(kThreads * kCommitsPerThread));
}

}  // namespace
}  // namespace ode
