#include "storage/fault_env.h"

#include <gtest/gtest.h>

#include <string>

#include "tests/testing/util.h"
#include "util/slice.h"

namespace ode {
namespace {

std::string ReadAll(Env& env, const std::string& path) {
  auto file = env.OpenFile(path);
  EXPECT_OK(file.status());
  auto size = (*file)->Size();
  EXPECT_OK(size.status());
  std::string scratch;
  Slice result;
  EXPECT_OK((*file)->Read(0, *size, &scratch, &result));
  return std::string(result.data(), result.size());
}

// ---------------------------------------------------------------------------
// Accounting
// ---------------------------------------------------------------------------

TEST(FaultEnvCountsTest, CountsEveryOperationKind) {
  FaultInjectionEnv env(nullptr);
  ASSERT_OK_AND_ASSIGN(auto file, env.OpenFile("/f"));
  ASSERT_OK(file->Append(Slice("abcd")));
  ASSERT_OK(file->Write(0, Slice("AB")));
  ASSERT_OK(file->Sync());
  ASSERT_OK(file->Truncate(2));
  std::string scratch;
  Slice result;
  ASSERT_OK(file->Read(0, 2, &scratch, &result));
  ASSERT_OK(env.RenameFile("/f", "/g"));
  ASSERT_OK(env.DeleteFile("/g"));

  const IoCounts counts = env.counts();
  EXPECT_EQ(counts.of(FaultOp::kOpen), 1u);
  EXPECT_EQ(counts.of(FaultOp::kAppend), 1u);
  EXPECT_EQ(counts.of(FaultOp::kWrite), 1u);
  EXPECT_EQ(counts.of(FaultOp::kSync), 1u);
  EXPECT_EQ(counts.of(FaultOp::kTruncate), 1u);
  EXPECT_EQ(counts.of(FaultOp::kRead), 1u);
  EXPECT_EQ(counts.of(FaultOp::kRename), 1u);
  EXPECT_EQ(counts.of(FaultOp::kDelete), 1u);
  EXPECT_EQ(counts.bytes_written, 6u);  // 4 appended + 2 overwritten.
  EXPECT_EQ(counts.bytes_read, 2u);
  EXPECT_EQ(counts.mutating(), 6u);  // Everything except Read and Open.
  EXPECT_EQ(env.mutating_op_count(), counts.mutating());
}

TEST(FaultEnvCountsTest, MutatingExcludesReadAndOpen) {
  IoCounts counts;
  counts.ops[static_cast<int>(FaultOp::kRead)] = 7;
  counts.ops[static_cast<int>(FaultOp::kOpen)] = 3;
  counts.ops[static_cast<int>(FaultOp::kWrite)] = 2;
  counts.ops[static_cast<int>(FaultOp::kSync)] = 1;
  EXPECT_EQ(counts.mutating(), 3u);
}

TEST(FaultEnvCountsTest, FailedOperationsStillCounted) {
  FaultInjectionEnv env(nullptr);
  ASSERT_OK_AND_ASSIGN(auto file, env.OpenFile("/f"));
  env.FailNth(FaultOp::kAppend, 0, Status::IOError("boom"));
  EXPECT_TRUE(file->Append(Slice("x")).IsIOError());
  EXPECT_EQ(env.counts().of(FaultOp::kAppend), 1u);
}

TEST(FaultEnvCountsTest, ResetCountsZeroes) {
  FaultInjectionEnv env(nullptr);
  ASSERT_OK_AND_ASSIGN(auto file, env.OpenFile("/f"));
  ASSERT_OK(file->Append(Slice("x")));
  ASSERT_OK(file->Sync());
  EXPECT_GT(env.mutating_op_count(), 0u);
  EXPECT_EQ(env.sync_count(), 1);
  env.ResetCounts();
  EXPECT_EQ(env.mutating_op_count(), 0u);
  EXPECT_EQ(env.sync_count(), 0);
  EXPECT_EQ(env.counts().bytes_written, 0u);
}

// ---------------------------------------------------------------------------
// FailNth error injection
// ---------------------------------------------------------------------------

TEST(FaultEnvFailNthTest, FailsExactlyTheNthOperation) {
  FaultInjectionEnv env(nullptr);
  ASSERT_OK_AND_ASSIGN(auto file, env.OpenFile("/f"));
  env.FailNth(FaultOp::kAppend, 2, Status::IOError("third append dies"),
              /*sticky=*/false);
  ASSERT_OK(file->Append(Slice("a")));
  ASSERT_OK(file->Append(Slice("b")));
  Status s = file->Append(Slice("c"));
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.message(), "third append dies");
  // Non-sticky: later operations succeed again.
  ASSERT_OK(file->Append(Slice("d")));
  EXPECT_EQ(ReadAll(env, "/f"), "abd");
}

TEST(FaultEnvFailNthTest, ConfigurableErrorCode) {
  FaultInjectionEnv env(nullptr);
  ASSERT_OK_AND_ASSIGN(auto file, env.OpenFile("/f"));
  env.FailNth(FaultOp::kSync, 0, Status::Corruption("bad sector"),
              /*sticky=*/false);
  Status s = file->Sync();
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(s.message(), "bad sector");
}

TEST(FaultEnvFailNthTest, StickyModelsDyingDisk) {
  FaultInjectionEnv env(nullptr);
  ASSERT_OK_AND_ASSIGN(auto file, env.OpenFile("/f"));
  env.FailNth(FaultOp::kWrite, 0, Status::IOError("dead"));
  EXPECT_TRUE(file->Write(0, Slice("x")).IsIOError());
  // Every subsequent mutating op fails too, with the same error...
  EXPECT_TRUE(file->Append(Slice("y")).IsIOError());
  EXPECT_TRUE(file->Sync().IsIOError());
  EXPECT_TRUE(env.DeleteFile("/f").IsIOError());
  // ...but reads still work (the platters are dead, the cache is not).
  std::string scratch;
  Slice result;
  EXPECT_OK(file->Read(0, 1, &scratch, &result));
  // ClearFaults heals the disk.
  env.ClearFaults();
  EXPECT_OK(file->Append(Slice("z")));
}

TEST(FaultEnvFailNthTest, TargetsOnlyTheNamedKind) {
  FaultInjectionEnv env(nullptr);
  ASSERT_OK_AND_ASSIGN(auto file, env.OpenFile("/f"));
  env.FailNth(FaultOp::kSync, 0, Status::IOError("sync dies"),
              /*sticky=*/false);
  ASSERT_OK(file->Append(Slice("a")));  // Appends unaffected.
  ASSERT_OK(file->Write(0, Slice("A")));
  EXPECT_TRUE(file->Sync().IsIOError());
}

TEST(FaultEnvFailNthTest, RenameAndDeleteInjectable) {
  FaultInjectionEnv env(nullptr);
  { ASSERT_OK_AND_ASSIGN(auto file, env.OpenFile("/f")); }
  env.FailNth(FaultOp::kRename, 0, Status::IOError("no rename"),
              /*sticky=*/false);
  EXPECT_TRUE(env.RenameFile("/f", "/g").IsIOError());
  EXPECT_TRUE(env.FileExists("/f"));
  env.FailNth(FaultOp::kDelete, 0, Status::IOError("no delete"),
              /*sticky=*/false);
  EXPECT_TRUE(env.DeleteFile("/f").IsIOError());
  EXPECT_TRUE(env.FileExists("/f"));
}

// ---------------------------------------------------------------------------
// Crash simulation & tear modes
// ---------------------------------------------------------------------------

// Writes one synced prefix and one unsynced tail, crashes with `tear`, and
// returns the surviving content.
std::string CrashWith(CrashTear tear) {
  FaultInjectionEnv env(nullptr);
  {
    auto file = env.OpenFile("/f");
    EXPECT_OK(file.status());
    EXPECT_OK((*file)->Append(Slice("SYNCED.")));
    EXPECT_OK((*file)->Sync());
    EXPECT_OK((*file)->Append(Slice("unsynced")));
  }
  env.Crash(tear);
  return ReadAll(env, "/f");
}

TEST(FaultEnvCrashTest, LoseAllDropsUnsyncedTail) {
  EXPECT_EQ(CrashWith(CrashTear::kLoseAll), "SYNCED.");
}

TEST(FaultEnvCrashTest, KeepAllRetainsUnsyncedTail) {
  EXPECT_EQ(CrashWith(CrashTear::kKeepAll), "SYNCED.unsynced");
}

TEST(FaultEnvCrashTest, TearHalfKeepsHalfTheTail) {
  EXPECT_EQ(CrashWith(CrashTear::kTearHalf), "SYNCED.unsy");
}

TEST(FaultEnvCrashTest, TornByteDropsLastByte) {
  EXPECT_EQ(CrashWith(CrashTear::kTornByte), "SYNCED.unsynce");
}

TEST(FaultEnvCrashTest, CorruptLastFlipsLastBit) {
  std::string survived = CrashWith(CrashTear::kCorruptLast);
  ASSERT_EQ(survived.size(), 15u);
  EXPECT_EQ(survived.substr(0, 14), "SYNCED.unsynce");
  EXPECT_EQ(survived[14], 'd' ^ 0x01);
}

TEST(FaultEnvCrashTest, TearAppliesToMidFileOverwrites) {
  FaultInjectionEnv env(nullptr);
  {
    ASSERT_OK_AND_ASSIGN(auto file, env.OpenFile("/f"));
    ASSERT_OK(file->Append(Slice("0123456789")));
    ASSERT_OK(file->Sync());
    // Overwrite in the middle of the file: the unsynced region runs from
    // the first modified byte (offset 2) to current EOF.
    ASSERT_OK(file->Write(2, Slice("abcd")));
  }
  env.Crash(CrashTear::kTearHalf);
  // Half of the 8-byte unsynced region [2, 10) is overlaid on the synced
  // image; the synced bytes beyond it survive untouched.
  EXPECT_EQ(ReadAll(env, "/f"), "01abcd6789");
}

TEST(FaultEnvCrashTest, UnsyncedTruncateRevertsOnTear) {
  FaultInjectionEnv env(nullptr);
  {
    ASSERT_OK_AND_ASSIGN(auto file, env.OpenFile("/f"));
    ASSERT_OK(file->Append(Slice("0123456789")));
    ASSERT_OK(file->Sync());
    ASSERT_OK(file->Truncate(4));
  }
  env.Crash(CrashTear::kTearHalf);
  EXPECT_EQ(ReadAll(env, "/f"), "0123456789");
}

TEST(FaultEnvCrashTest, CrashClearsPendingFaults) {
  FaultInjectionEnv env(nullptr);
  ASSERT_OK_AND_ASSIGN(auto file, env.OpenFile("/f"));
  env.FailAfterSyncs(0);
  EXPECT_TRUE(file->Append(Slice("x")).IsIOError());
  env.CrashAndLoseUnsynced();  // Reboot: the disk is healthy again.
  ASSERT_OK_AND_ASSIGN(auto fresh, env.OpenFile("/f"));
  EXPECT_OK(fresh->Append(Slice("y")));
  EXPECT_OK(fresh->Sync());
}

// ---------------------------------------------------------------------------
// Scheduled crashes
// ---------------------------------------------------------------------------

TEST(FaultEnvScheduleTest, CrashFiresInsteadOfNthMutatingOp) {
  FaultInjectionEnv env(nullptr);
  ASSERT_OK_AND_ASSIGN(auto file, env.OpenFile("/f"));
  ASSERT_OK(file->Append(Slice("a")));
  ASSERT_OK(file->Sync());
  env.ScheduleCrash(1, CrashTear::kLoseAll);
  ASSERT_OK(file->Append(Slice("b")));      // Op 0: runs.
  EXPECT_FALSE(env.crash_fired());
  EXPECT_TRUE(file->Append(Slice("c")).IsIOError());  // Op 1: crash instead.
  EXPECT_TRUE(env.crash_fired());
  // The op that triggered the crash did NOT execute, and 'b' was unsynced.
  EXPECT_EQ(ReadAll(env, "/f"), "a");
}

TEST(FaultEnvScheduleTest, ReadsDoNotAdvanceTheCrashClock) {
  FaultInjectionEnv env(nullptr);
  ASSERT_OK_AND_ASSIGN(auto file, env.OpenFile("/f"));
  ASSERT_OK(file->Append(Slice("abc")));
  env.ScheduleCrash(0, CrashTear::kKeepAll);
  std::string scratch;
  Slice result;
  ASSERT_OK(file->Read(0, 3, &scratch, &result));  // Reads never crash.
  EXPECT_FALSE(env.crash_fired());
  EXPECT_TRUE(file->Sync().IsIOError());
  EXPECT_TRUE(env.crash_fired());
}

TEST(FaultEnvScheduleTest, SchedulePastWorkloadNeverFires) {
  FaultInjectionEnv env(nullptr);
  ASSERT_OK_AND_ASSIGN(auto file, env.OpenFile("/f"));
  env.ScheduleCrash(100, CrashTear::kLoseAll);
  ASSERT_OK(file->Append(Slice("a")));
  ASSERT_OK(file->Sync());
  EXPECT_FALSE(env.crash_fired());
}

// ---------------------------------------------------------------------------
// Legacy surface (the API recovery_test/checkpoint_crash_test predate)
// ---------------------------------------------------------------------------

TEST(FaultEnvLegacyTest, CrashAndLoseUnsyncedEqualsLoseAllTear) {
  FaultInjectionEnv env(nullptr);
  {
    ASSERT_OK_AND_ASSIGN(auto file, env.OpenFile("/f"));
    ASSERT_OK(file->Append(Slice("keep")));
    ASSERT_OK(file->Sync());
    ASSERT_OK(file->Append(Slice("-lost")));
  }
  env.CrashAndLoseUnsynced();
  EXPECT_EQ(ReadAll(env, "/f"), "keep");
}

}  // namespace
}  // namespace ode
