#include <gtest/gtest.h>

#include "storage/disk_manager.h"
#include "storage/env.h"
#include "storage/wal.h"
#include "tests/testing/util.h"
#include "util/random.h"

namespace ode {
namespace {

/// Robustness: recovery must survive ANY byte sequence in the log file —
/// returning clean results or clean errors, never crashing or replaying
/// unverified data.
class WalFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WalFuzzTest, RandomGarbageLogsRecoverCleanly) {
  Random rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    MemEnv env;
    {
      auto file = env.OpenFile("/wal");
      ASSERT_TRUE(file.ok());
      ASSERT_OK((*file)->Append(Slice(rng.NextBytes(rng.Range(0, 8000)))));
    }
    auto wal = Wal::Open(&env, "/wal");
    ASSERT_TRUE(wal.ok());
    auto disk = DiskManager::Open(&env, "/data");
    ASSERT_TRUE(disk.ok());
    auto stats = (*wal)->Recover(disk->get());
    ASSERT_TRUE(stats.ok()) << stats.status();
    // Garbage cannot produce committed transactions (the odds of a valid
    // CRC-framed commit record appearing by chance are negligible).
    EXPECT_EQ(stats->pages_replayed, 0u);
  }
}

TEST_P(WalFuzzTest, BitFlippedValidLogNeverReplaysCorruptPages) {
  Random rng(GetParam() + 1000);
  // Build a valid log...
  MemEnv env;
  {
    auto wal = Wal::Open(&env, "/wal");
    ASSERT_TRUE(wal.ok());
    std::string image(kPageSize, 'p');
    for (uint64_t t = 1; t <= 5; ++t) {
      ASSERT_OK((*wal)->AppendBegin(t));
      ASSERT_OK((*wal)->AppendPageImage(t, static_cast<PageId>(t), image.data()));
      ASSERT_OK((*wal)->AppendCommit(t));
    }
  }
  std::string pristine;
  {
    auto file = env.OpenFile("/wal");
    ASSERT_TRUE(file.ok());
    auto size = (*file)->Size();
    ASSERT_TRUE(size.ok());
    std::string scratch;
    Slice content;
    ASSERT_OK((*file)->Read(0, *size, &scratch, &content));
    pristine = content.ToString();
  }
  // ...then flip random bits and recover each mutant.
  for (int round = 0; round < 30; ++round) {
    std::string mutant = pristine;
    const int flips = static_cast<int>(rng.Range(1, 8));
    for (int f = 0; f < flips; ++f) {
      mutant[rng.Uniform(mutant.size())] ^=
          static_cast<char>(1 << rng.Uniform(8));
    }
    MemEnv fresh;
    {
      auto file = fresh.OpenFile("/wal");
      ASSERT_TRUE(file.ok());
      ASSERT_OK((*file)->Append(Slice(mutant)));
    }
    auto wal = Wal::Open(&fresh, "/wal");
    auto disk = DiskManager::Open(&fresh, "/data");
    ASSERT_TRUE(wal.ok() && disk.ok());
    auto stats = (*wal)->Recover(disk->get());
    ASSERT_TRUE(stats.ok()) << stats.status();
    // Whatever replays must be a prefix of the valid transactions.
    EXPECT_LE(stats->pages_replayed, 5u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalFuzzTest, ::testing::Values(71, 72, 73));

}  // namespace
}  // namespace ode
