#include <gtest/gtest.h>

#include "storage/btree.h"
#include "storage/env.h"
#include "storage/fault_env.h"
#include "storage/storage_engine.h"
#include "tests/testing/util.h"

namespace ode {
namespace {

/// Failure-injection around checkpoints: a checkpoint that dies between
/// flushing data pages and truncating the WAL must leave a state recovery
/// can still handle (replaying the already-applied WAL is idempotent).
class CheckpointCrashTest : public ::testing::Test {
 protected:
  CheckpointCrashTest() : fault_env_(nullptr) {}

  void Open() {
    StorageOptions options;
    options.env = &fault_env_;
    options.path = "/db";
    options.checkpoint_wal_bytes = 1ull << 40;  // Manual checkpoints only.
    auto engine = StorageEngine::Open(options);
    ASSERT_TRUE(engine.ok()) << engine.status();
    engine_ = std::move(*engine);
  }

  void PutKey(const std::string& key, const std::string& value) {
    ASSERT_OK(engine_->WithTxn([&](Txn& txn) -> Status {
      auto tree = BTree::Open(&txn, 4);
      if (!tree.ok()) return tree.status();
      return tree->Put(Slice(key), Slice(value));
    }));
  }

  void ExpectKey(const std::string& key, const std::string& value) {
    ASSERT_OK(engine_->WithTxn([&](Txn& txn) -> Status {
      auto tree = BTree::Open(&txn, 4);
      if (!tree.ok()) return tree.status();
      auto got = tree->Get(Slice(key));
      if (!got.ok()) return got.status();
      EXPECT_EQ(*got, value);
      return Status::OK();
    }));
  }

  FaultInjectionEnv fault_env_;
  std::unique_ptr<StorageEngine> engine_;
};

TEST_F(CheckpointCrashTest, WalTruncateFailureIsRecoverable) {
  Open();
  PutKey("a", "1");
  PutKey("b", "2");
  // Allow exactly one more sync (the data-file flush inside the checkpoint);
  // the WAL-truncate sync then fails, so the checkpoint errors out with the
  // data file already advanced and the WAL still in place.
  fault_env_.FailAfterSyncs(1);
  Status s = engine_->Checkpoint();
  EXPECT_FALSE(s.ok());
  // Crash and recover: the (stale but intact) WAL replays idempotently over
  // the already-flushed pages.
  fault_env_.CrashAndLoseUnsynced();
  engine_.reset();
  Open();
  EXPECT_GE(engine_->last_recovery().committed_txns, 2u);
  ExpectKey("a", "1");
  ExpectKey("b", "2");
}

TEST_F(CheckpointCrashTest, CrashRightAfterCheckpointLosesNothing) {
  Open();
  PutKey("a", "1");
  ASSERT_OK(engine_->Checkpoint());
  PutKey("b", "2");  // Post-checkpoint commit lives only in the WAL.
  fault_env_.CrashAndLoseUnsynced();
  engine_.reset();
  Open();
  ExpectKey("a", "1");
  ExpectKey("b", "2");
}

TEST_F(CheckpointCrashTest, RepeatedCheckpointFailureThenRecovery) {
  Open();
  PutKey("k", "v1");
  fault_env_.FailAfterSyncs(0);  // Every sync fails from now on.
  EXPECT_FALSE(engine_->Checkpoint().ok());
  EXPECT_FALSE(engine_->Checkpoint().ok());
  fault_env_.CrashAndLoseUnsynced();  // Also clears the failure mode.
  engine_.reset();
  Open();
  ExpectKey("k", "v1");
}

}  // namespace
}  // namespace ode
