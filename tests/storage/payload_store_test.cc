#include "storage/payload_store.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "storage/storage_engine.h"
#include "tests/testing/util.h"
#include "util/hash128.h"

namespace ode {
namespace {

class PayloadStoreTest : public ::testing::Test {
 protected:
  void SetUp() override { Open(); }

  void Open() {
    StorageOptions options;
    options.env = &env_;
    options.path = "/db";
    auto engine = StorageEngine::Open(options);
    ASSERT_TRUE(engine.ok()) << engine.status();
    engine_ = std::move(*engine);
  }

  void Reopen() {
    engine_.reset();
    Open();
  }

  PayloadStore& store() { return engine_->payload_store(); }
  HeapFile& heap() { return engine_->heap(); }

  /// Ref inside its own transaction; returns (rid, hash).
  std::pair<RecordId, Hash128> MustRef(const std::string& payload) {
    RecordId rid;
    Hash128 hash;
    EXPECT_OK(engine_->WithTxn([&](Txn& txn) -> Status {
      auto r = store().Ref(&txn, heap(), Slice(payload), &hash);
      if (!r.ok()) return r.status();
      rid = *r;
      return Status::OK();
    }));
    return {rid, hash};
  }

  MemEnv env_;
  std::unique_ptr<StorageEngine> engine_;
};

TEST_F(PayloadStoreTest, FirstRefInsertsSecondRefShares) {
  const std::string payload(300, 'p');
  auto [rid1, hash1] = MustRef(payload);
  auto [rid2, hash2] = MustRef(payload);
  EXPECT_EQ(hash1, hash2);
  EXPECT_TRUE(rid1 == rid2);  // One physical record.
  EXPECT_EQ(store().blobs_created()->value(), 1u);
  EXPECT_EQ(store().dedupe_hits()->value(), 1u);
  EXPECT_EQ(store().dedupe_bytes_saved()->value(), payload.size());
  ASSERT_OK(engine_->WithReadTxn([&](ReadTxn& txn) -> Status {
    auto entry = store().Lookup(&txn, hash1);
    if (!entry.ok()) return entry.status();
    EXPECT_EQ(entry->refcount, 2u);
    EXPECT_EQ(entry->size, payload.size());
    return Status::OK();
  }));
}

TEST_F(PayloadStoreTest, DistinctPayloadsGetDistinctBlobs) {
  auto [rid_a, hash_a] = MustRef("payload A");
  auto [rid_b, hash_b] = MustRef("payload B");
  EXPECT_NE(hash_a, hash_b);
  EXPECT_FALSE(rid_a == rid_b);
  EXPECT_EQ(store().blobs_created()->value(), 2u);
  EXPECT_EQ(store().dedupe_hits()->value(), 0u);
}

TEST_F(PayloadStoreTest, UnrefFreesAtZero) {
  const std::string payload = "ephemeral";
  auto [rid, hash] = MustRef(payload);
  MustRef(payload);  // refcount 2
  ASSERT_OK(engine_->WithTxn([&](Txn& txn) -> Status {
    return store().Unref(&txn, heap(), hash, rid);
  }));
  // Still present at refcount 1: the bytes must remain readable.
  ASSERT_OK(engine_->WithReadTxn([&](ReadTxn& txn) -> Status {
    auto entry = store().Lookup(&txn, hash);
    if (!entry.ok()) return entry.status();
    EXPECT_EQ(entry->refcount, 1u);
    auto bytes = heap().Read(&txn, entry->rid);
    if (!bytes.ok()) return bytes.status();
    EXPECT_EQ(*bytes, payload);
    return Status::OK();
  }));
  ASSERT_OK(engine_->WithTxn([&](Txn& txn) -> Status {
    return store().Unref(&txn, heap(), hash, rid);
  }));
  EXPECT_EQ(store().blobs_freed()->value(), 1u);
  ASSERT_OK(engine_->WithReadTxn([&](ReadTxn& txn) -> Status {
    EXPECT_TRUE(store().Lookup(&txn, hash).status().IsNotFound());
    return Status::OK();
  }));
}

TEST_F(PayloadStoreTest, UnrefOfMissingBlobIsCorruption) {
  const Hash128 bogus = HashPayload128(Slice("never stored"));
  Status s = engine_->WithTxn([&](Txn& txn) -> Status {
    return store().Unref(&txn, heap(), bogus, RecordId{});
  });
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(PayloadStoreTest, UnrefWithWrongRecordIdIsCorruption) {
  auto [rid, hash] = MustRef("guarded");
  RecordId wrong = rid;
  wrong.slot = rid.slot + 1;
  Status s = engine_->WithTxn([&](Txn& txn) -> Status {
    return store().Unref(&txn, heap(), hash, wrong);
  });
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(PayloadStoreTest, RefExistingRequiresPresence) {
  const Hash128 bogus = HashPayload128(Slice("absent"));
  Status s = engine_->WithTxn([&](Txn& txn) -> Status {
    return store().RefExisting(&txn, bogus).status();
  });
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();
  auto [rid, hash] = MustRef("present");
  ASSERT_OK(engine_->WithTxn([&](Txn& txn) -> Status {
    auto r = store().RefExisting(&txn, hash);
    if (!r.ok()) return r.status();
    EXPECT_TRUE(*r == rid);
    return Status::OK();
  }));
  ASSERT_OK(engine_->WithReadTxn([&](ReadTxn& txn) -> Status {
    auto entry = store().Lookup(&txn, hash);
    if (!entry.ok()) return entry.status();
    EXPECT_EQ(entry->refcount, 2u);
    return Status::OK();
  }));
}

TEST_F(PayloadStoreTest, EmptyStoreReadsAreSafe) {
  // Lookup/ForEach on a database whose payload index was never created must
  // not try to create the tree under a read-only transaction.
  ASSERT_OK(engine_->WithReadTxn([&](ReadTxn& txn) -> Status {
    EXPECT_TRUE(
        store().Lookup(&txn, HashPayload128(Slice("x"))).status().IsNotFound());
    uint64_t seen = 0;
    ODE_RETURN_IF_ERROR(store().ForEach(
        &txn, [&](const Hash128&, const PayloadStoreEntry&) {
          ++seen;
          return true;
        }));
    EXPECT_EQ(seen, 0u);
    return Status::OK();
  }));
}

TEST_F(PayloadStoreTest, RefcountsSurviveReopen) {
  const std::string payload(128, 'd');
  auto [rid, hash] = MustRef(payload);
  MustRef(payload);
  MustRef(payload);
  Reopen();
  ASSERT_OK(engine_->WithReadTxn([&](ReadTxn& txn) -> Status {
    auto entry = store().Lookup(&txn, hash);
    if (!entry.ok()) return entry.status();
    EXPECT_EQ(entry->refcount, 3u);
    EXPECT_TRUE(entry->rid == rid);
    auto bytes = heap().Read(&txn, entry->rid);
    if (!bytes.ok()) return bytes.status();
    EXPECT_EQ(*bytes, payload);
    return Status::OK();
  }));
}

TEST_F(PayloadStoreTest, ForEachVisitsEveryEntryInHashOrder) {
  std::map<Hash128, std::string> expected;
  for (int i = 0; i < 20; ++i) {
    const std::string payload = "blob-" + std::to_string(i);
    auto [rid, hash] = MustRef(payload);
    (void)rid;
    expected[hash] = payload;
  }
  ASSERT_OK(engine_->WithReadTxn([&](ReadTxn& txn) -> Status {
    Hash128 prev{};
    uint64_t seen = 0;
    ODE_RETURN_IF_ERROR(store().ForEach(
        &txn, [&](const Hash128& hash, const PayloadStoreEntry& entry) {
          EXPECT_TRUE(seen == 0 || prev < hash);  // Hash order.
          EXPECT_EQ(entry.refcount, 1u);
          EXPECT_TRUE(expected.count(hash) == 1);
          prev = hash;
          ++seen;
          return true;
        }));
    EXPECT_EQ(seen, expected.size());
    return Status::OK();
  }));
}

}  // namespace
}  // namespace ode
