// Control snippet for the negative-compilation suite: uses the same headers
// and shapes as the must-fail snippets but commits no violation.  If this
// fails to compile, the harness flags the suite as broken rather than
// reporting a false "violation rejected".

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Bump() {
    ode::MutexLock lock(mu_);
    ++value_;
  }

  int value() {
    ode::MutexLock lock(mu_);
    return value_;
  }

 private:
  ode::Mutex mu_;
  int value_ ODE_GUARDED_BY(mu_) = 0;
};

ode::Status DoWork() { return ode::Status::OK(); }

}  // namespace

int main() {
  Counter c;
  c.Bump();
  ode::Status s = DoWork();
  if (!s.ok()) return 1;
  return c.value() == 1 ? 0 : 1;
}
