// MUST NOT COMPILE under clang -Wthread-safety -Werror: reads and writes an
// ODE_GUARDED_BY field without holding its mutex.  The compile_fail harness
// asserts clang rejects it — proving the capability annotations in
// util/mutex.h and util/thread_annotations.h form a working gate, not
// decoration.  (GCC ignores the attributes; the harness skips this snippet
// for non-clang compilers.)

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Bump() {
    ++value_;  // Violation: mu_ not held.
  }

  int value() const {
    return value_;  // Violation: mu_ not held.
  }

 private:
  mutable ode::Mutex mu_;
  int value_ ODE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Bump();
  return c.value() == 1 ? 0 : 1;
}
