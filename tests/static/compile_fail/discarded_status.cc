// MUST NOT COMPILE under -Werror (any compiler): ode::Status is
// [[nodiscard]], and this snippet drops one on the floor.  The
// compile_fail_test.cmake harness asserts that the compiler rejects it —
// proving the nodiscard gate actually fires, not just that it is written
// down in status.h.

#include "util/status.h"

namespace {

ode::Status DoWork() { return ode::Status::IOError("disk on fire"); }

}  // namespace

int main() {
  DoWork();  // Violation: result silently discarded.
  return 0;
}
