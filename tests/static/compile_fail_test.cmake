# Negative-compilation suite: proves the static gates actually reject what
# they claim to reject.
#
# Run as a ctest script:
#   cmake -DCXX=<compiler> -DCXX_ID=<CMAKE_CXX_COMPILER_ID>
#         -DREPO=<source-root> -DWORK=<scratch-dir>
#         -P tests/static/compile_fail_test.cmake
#
# Three snippets under tests/static/compile_fail/:
#   control_ok.cc           must COMPILE  (suite sanity check)
#   discarded_status.cc     must FAIL     (-Werror=unused-result; any compiler
#                                          — [[nodiscard]] on Status)
#   guarded_by_violation.cc must FAIL     (-Wthread-safety -Werror; clang
#                                          only — GCC ignores the capability
#                                          attributes, so it is skipped there)
#
# The snippets are excluded from the normal build and from ode_lint
# (tests/static/ is outside its scan set) because violating the rules is
# their entire job.

if(NOT DEFINED CXX OR NOT DEFINED CXX_ID OR NOT DEFINED REPO OR NOT DEFINED WORK)
  message(FATAL_ERROR "compile_fail_test.cmake needs -DCXX -DCXX_ID -DREPO -DWORK")
endif()

file(MAKE_DIRECTORY "${WORK}")

set(BASE_FLAGS -std=c++20 -fsyntax-only "-I${REPO}/src")

# try_compile-style helper: compiles SRC with FLAGS, stores TRUE/FALSE into
# OUT_VAR and the compiler's stderr into ${OUT_VAR}_LOG.
function(ode_try_compile OUT_VAR SRC)
  execute_process(
    COMMAND ${CXX} ${BASE_FLAGS} ${ARGN} "${REPO}/tests/static/compile_fail/${SRC}"
    WORKING_DIRECTORY "${WORK}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(rc EQUAL 0)
    set(${OUT_VAR} TRUE PARENT_SCOPE)
  else()
    set(${OUT_VAR} FALSE PARENT_SCOPE)
  endif()
  set(${OUT_VAR}_LOG "${out}${err}" PARENT_SCOPE)
endfunction()

set(failures 0)

# 1. Control: must compile, with every gate flag the must-fail cases use, so
#    a failure below is attributable to the violation and not the flags.
set(CONTROL_FLAGS -Wall -Wextra -Werror)
if(CXX_ID MATCHES "Clang")
  list(APPEND CONTROL_FLAGS -Wthread-safety)
endif()
ode_try_compile(control_ok control_ok.cc ${CONTROL_FLAGS})
if(control_ok)
  message(STATUS "PASS control_ok.cc compiles clean")
else()
  message(STATUS "FAIL control_ok.cc should compile but did not:\n${control_ok_LOG}")
  math(EXPR failures "${failures}+1")
endif()

# 2. Discarded Status: must be rejected by -Werror=unused-result on every
#    supported compiler ([[nodiscard]] is standard C++17).
ode_try_compile(discard discarded_status.cc -Werror=unused-result)
if(discard)
  message(STATUS "FAIL discarded_status.cc compiled; [[nodiscard]] gate is dead")
  math(EXPR failures "${failures}+1")
else()
  message(STATUS "PASS discarded_status.cc rejected (discarded Status)")
endif()

# 3. GUARDED_BY violation: clang-only (thread-safety analysis).
if(CXX_ID MATCHES "Clang")
  ode_try_compile(guarded guarded_by_violation.cc -Wthread-safety -Werror)
  if(guarded)
    message(STATUS "FAIL guarded_by_violation.cc compiled; thread-safety gate is dead")
    math(EXPR failures "${failures}+1")
  else()
    message(STATUS "PASS guarded_by_violation.cc rejected (unlocked guarded field)")
  endif()
else()
  # Still require it to be *valid* C++ here, so the snippet cannot rot into
  # something clang rejects for an unrelated reason.
  ode_try_compile(guarded_plain guarded_by_violation.cc)
  if(guarded_plain)
    message(STATUS "SKIP guarded_by_violation.cc: ${CXX_ID} has no thread-safety analysis (compiles as plain C++, as expected)")
  else()
    message(STATUS "FAIL guarded_by_violation.cc does not even parse:\n${guarded_plain_LOG}")
    math(EXPR failures "${failures}+1")
  endif()
endif()

if(failures GREATER 0)
  message(FATAL_ERROR "compile_fail suite: ${failures} case(s) failed")
endif()
message(STATUS "compile_fail suite: all cases behaved as specified")
