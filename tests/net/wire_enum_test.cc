// The wire-compatibility freeze: OpCode, WireStatus and CursorKind numeric
// values ARE the protocol, and StatusCode feeds WireStatus one to one, so
// all four enums are pinned here value by value.  If an edit renumbers,
// reuses, or silently drops a value, this file fails to compile or fails at
// run time — either way the change cannot land unnoticed.  Adding NEW
// values (at the end, with fresh numbers) only requires extending the
// tables below.

#include "net/wire.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "util/status.h"

namespace ode {
namespace net {
namespace {

// -- StatusCode: the library side of the correspondence ----------------------

static_assert(static_cast<int>(StatusCode::kOk) == 0);
static_assert(static_cast<int>(StatusCode::kNotFound) == 1);
static_assert(static_cast<int>(StatusCode::kCorruption) == 2);
static_assert(static_cast<int>(StatusCode::kInvalidArgument) == 3);
static_assert(static_cast<int>(StatusCode::kIOError) == 4);
static_assert(static_cast<int>(StatusCode::kAlreadyExists) == 5);
static_assert(static_cast<int>(StatusCode::kNotSupported) == 6);
static_assert(static_cast<int>(StatusCode::kFailedPrecondition) == 7);
static_assert(static_cast<int>(StatusCode::kAborted) == 8);
static_assert(static_cast<int>(StatusCode::kOutOfRange) == 9);
static_assert(static_cast<int>(StatusCode::kInternal) == 10);

// -- OpCode ------------------------------------------------------------------

static_assert(static_cast<int>(OpCode::kPing) == 1);
static_assert(static_cast<int>(OpCode::kPnew) == 2);
static_assert(static_cast<int>(OpCode::kNewVersionOf) == 3);
static_assert(static_cast<int>(OpCode::kNewVersionFrom) == 4);
static_assert(static_cast<int>(OpCode::kUpdateLatest) == 5);
static_assert(static_cast<int>(OpCode::kUpdateVersion) == 6);
static_assert(static_cast<int>(OpCode::kDerefLatest) == 7);
static_assert(static_cast<int>(OpCode::kDerefVersion) == 8);
static_assert(static_cast<int>(OpCode::kDerefBatch) == 9);
static_assert(static_cast<int>(OpCode::kDeleteObject) == 10);
static_assert(static_cast<int>(OpCode::kDeleteVersion) == 11);
static_assert(static_cast<int>(OpCode::kLatest) == 12);
static_assert(static_cast<int>(OpCode::kVersionsOf) == 13);
static_assert(static_cast<int>(OpCode::kRegisterType) == 14);
static_assert(static_cast<int>(OpCode::kLookupType) == 15);
static_assert(static_cast<int>(OpCode::kCursorOpen) == 16);
static_assert(static_cast<int>(OpCode::kCursorNext) == 17);
static_assert(static_cast<int>(OpCode::kCursorClose) == 18);
static_assert(static_cast<int>(OpCode::kTxnBegin) == 19);
static_assert(static_cast<int>(OpCode::kTxnCommit) == 20);
static_assert(static_cast<int>(OpCode::kTxnAbort) == 21);
static_assert(static_cast<int>(OpCode::kStats) == 22);

// -- WireStatus --------------------------------------------------------------

static_assert(static_cast<int>(WireStatus::kOk) == 0);
static_assert(static_cast<int>(WireStatus::kNotFound) == 1);
static_assert(static_cast<int>(WireStatus::kCorruption) == 2);
static_assert(static_cast<int>(WireStatus::kInvalidArgument) == 3);
static_assert(static_cast<int>(WireStatus::kIOError) == 4);
static_assert(static_cast<int>(WireStatus::kAlreadyExists) == 5);
static_assert(static_cast<int>(WireStatus::kNotSupported) == 6);
static_assert(static_cast<int>(WireStatus::kFailedPrecondition) == 7);
static_assert(static_cast<int>(WireStatus::kAborted) == 8);
static_assert(static_cast<int>(WireStatus::kOutOfRange) == 9);
static_assert(static_cast<int>(WireStatus::kInternal) == 10);
static_assert(static_cast<int>(WireStatus::kProtocolError) == 32);
static_assert(static_cast<int>(WireStatus::kBackpressure) == 33);
static_assert(static_cast<int>(WireStatus::kShuttingDown) == 34);

// -- CursorKind --------------------------------------------------------------

static_assert(static_cast<int>(CursorKind::kObjects) == 0);
static_assert(static_cast<int>(CursorKind::kVersions) == 1);
static_assert(static_cast<int>(CursorKind::kTypes) == 2);
static_assert(static_cast<int>(CursorKind::kCluster) == 3);

// Exhaustive value lists for the runtime checks.  A NEW enum value must be
// added here too — the Name/IsKnown coverage tests below catch an OpCode
// that exists in the enum but not in this list (its name would be "?").
const std::vector<OpCode> kAllOps = {
    OpCode::kPing,         OpCode::kPnew,          OpCode::kNewVersionOf,
    OpCode::kNewVersionFrom, OpCode::kUpdateLatest, OpCode::kUpdateVersion,
    OpCode::kDerefLatest,  OpCode::kDerefVersion,  OpCode::kDerefBatch,
    OpCode::kDeleteObject, OpCode::kDeleteVersion, OpCode::kLatest,
    OpCode::kVersionsOf,   OpCode::kRegisterType,  OpCode::kLookupType,
    OpCode::kCursorOpen,   OpCode::kCursorNext,    OpCode::kCursorClose,
    OpCode::kTxnBegin,     OpCode::kTxnCommit,     OpCode::kTxnAbort,
    OpCode::kStats,
};

const std::vector<WireStatus> kAllWireStatuses = {
    WireStatus::kOk,
    WireStatus::kNotFound,
    WireStatus::kCorruption,
    WireStatus::kInvalidArgument,
    WireStatus::kIOError,
    WireStatus::kAlreadyExists,
    WireStatus::kNotSupported,
    WireStatus::kFailedPrecondition,
    WireStatus::kAborted,
    WireStatus::kOutOfRange,
    WireStatus::kInternal,
    WireStatus::kProtocolError,
    WireStatus::kBackpressure,
    WireStatus::kShuttingDown,
};

const std::vector<StatusCode> kAllStatusCodes = {
    StatusCode::kOk,           StatusCode::kNotFound,
    StatusCode::kCorruption,   StatusCode::kInvalidArgument,
    StatusCode::kIOError,      StatusCode::kAlreadyExists,
    StatusCode::kNotSupported, StatusCode::kFailedPrecondition,
    StatusCode::kAborted,      StatusCode::kOutOfRange,
    StatusCode::kInternal,
};

TEST(WireEnumTest, NoOpCodeValueReuse) {
  std::set<uint8_t> seen;
  for (OpCode op : kAllOps) {
    EXPECT_TRUE(seen.insert(static_cast<uint8_t>(op)).second)
        << "opcode value " << static_cast<int>(op) << " used twice";
  }
  EXPECT_EQ(seen.size(), 22u) << "opcode added/removed: update this test";
}

TEST(WireEnumTest, NoWireStatusValueReuse) {
  std::set<uint8_t> seen;
  for (WireStatus ws : kAllWireStatuses) {
    EXPECT_TRUE(seen.insert(static_cast<uint8_t>(ws)).second)
        << "wire status value " << static_cast<int>(ws) << " used twice";
  }
  EXPECT_EQ(seen.size(), 14u);
}

TEST(WireEnumTest, EveryOpCodeIsKnownAndNamed) {
  for (OpCode op : kAllOps) {
    EXPECT_TRUE(IsKnownOpCode(static_cast<uint8_t>(op)));
    EXPECT_NE(OpCodeName(op), "?") << static_cast<int>(op);
  }
  // Distinct ops have distinct names (a copy-pasted name is a freeze bug).
  std::set<std::string_view> names;
  for (OpCode op : kAllOps) names.insert(OpCodeName(op));
  EXPECT_EQ(names.size(), kAllOps.size());
}

TEST(WireEnumTest, ValuesOutsideTheFreezeAreUnknown) {
  EXPECT_FALSE(IsKnownOpCode(0));
  EXPECT_FALSE(IsKnownOpCode(23));
  EXPECT_FALSE(IsKnownOpCode(255));
}

TEST(WireEnumTest, StatusCodeRoundTripsThroughWireStatus) {
  for (StatusCode code : kAllStatusCodes) {
    const WireStatus ws = ToWireStatus(code);
    // The first 11 wire values mirror StatusCode numerically.
    EXPECT_EQ(static_cast<int>(ws), static_cast<int>(code));
    const Status back = FromWireStatus(ws, "detail");
    EXPECT_EQ(back.code(), code) << static_cast<int>(code);
    if (code != StatusCode::kOk) {
      EXPECT_NE(back.message().find("detail"), std::string::npos);
    }
  }
}

TEST(WireEnumTest, NetOnlyStatusesMapToDispatchableLibraryCodes) {
  EXPECT_EQ(FromWireStatus(WireStatus::kProtocolError, "x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FromWireStatus(WireStatus::kBackpressure, "x").code(),
            StatusCode::kAborted);
  EXPECT_EQ(FromWireStatus(WireStatus::kShuttingDown, "x").code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace net
}  // namespace ode
