// ode_server over real sockets: lifecycle, pipelining, per-session
// transaction affinity, backpressure shedding, and multi-connection load.
// The *Concurrent* tests double as the TSan workout for the worker pool
// (CI runs this binary under -fsanitize=thread via `ctest -R Concurrent`).

#include "net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/wire.h"
#include "tests/testing/db_fixture.h"
#include "tests/testing/util.h"

namespace ode {
namespace net {
namespace {

class ServerTest : public testing_internal::DatabaseFixture {
 protected:
  void SetUp() override {
    DatabaseFixture::SetUp();
    SetUpRawType();
  }

  void TearDown() override {
    if (server_) server_->Stop();
    server_.reset();
    DatabaseFixture::TearDown();
  }

  void StartServer(ServerOptions options = {}) {
    auto server = Server::Start(*db_, options);
    ASSERT_TRUE(server.ok()) << server.status();
    server_ = std::move(*server);
    ASSERT_GT(server_->port(), 0);
  }

  std::unique_ptr<Client> MustConnect() {
    auto client = Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status();
    return client.ok() ? std::move(*client) : nullptr;
  }

  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, OptionsValidateRejectsBadKnobs) {
  ServerOptions options;
  options.workers = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.max_pipeline = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.max_frame_bytes = 4;
  EXPECT_FALSE(options.Validate().ok());
  EXPECT_OK(ServerOptions{}.Validate());
}

TEST_F(ServerTest, FullLifecycleOverTcp) {
  StartServer();
  auto client = MustConnect();
  ASSERT_NE(client, nullptr);

  ASSERT_OK(client->Ping());
  ASSERT_OK_AND_ASSIGN(const uint32_t type_id,
                       client->RegisterType("server.doc"));
  ASSERT_OK_AND_ASSIGN(const VersionId v1, client->Pnew(type_id, "payload 1"));
  EXPECT_EQ(v1.vnum, kFirstVersion);

  ASSERT_OK_AND_ASSIGN(const VersionId v2, client->NewVersionOf(v1.oid));
  EXPECT_EQ(v2.vnum, kFirstVersion + 1);
  ASSERT_OK(client->UpdateLatest(v1.oid, "payload 2"));

  VersionId resolved;
  ASSERT_OK_AND_ASSIGN(const std::string latest,
                       client->DerefLatest(v1.oid, &resolved));
  EXPECT_EQ(latest, "payload 2");
  EXPECT_EQ(resolved.vnum, v2.vnum);
  ASSERT_OK_AND_ASSIGN(const std::string old, client->DerefVersion(v1));
  EXPECT_EQ(old, "payload 1");

  ASSERT_OK_AND_ASSIGN(const auto vnums, client->VersionsOf(v1.oid));
  EXPECT_EQ(vnums.size(), 2u);

  // Errors arrive as the library Status a local caller would get.
  EXPECT_EQ(client->DerefLatest(ObjectId{987654}).status().code(),
            StatusCode::kNotFound);

  ASSERT_OK(client->DeleteObject(v1.oid));
  EXPECT_EQ(client->DerefLatest(v1.oid).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ServerTest, PipelinedResponsesComeBackInOrder) {
  StartServer();
  auto client = MustConnect();
  ASSERT_NE(client, nullptr);
  ASSERT_OK_AND_ASSIGN(const VersionId vid, client->Pnew(type_id_, "deep"));

  constexpr int kDepth = 64;
  std::vector<uint64_t> ids;
  for (int i = 0; i < kDepth; ++i) {
    Request req;
    req.op = OpCode::kDerefLatest;
    req.oid = vid.oid.value;
    uint64_t id = 0;
    ASSERT_OK(client->Send(req, &id));
    ids.push_back(id);
  }
  ASSERT_OK(client->Flush());
  for (int i = 0; i < kDepth; ++i) {
    Response resp;
    ASSERT_OK(client->Recv(&resp));
    EXPECT_EQ(resp.request_id, ids[static_cast<size_t>(i)]);
    EXPECT_EQ(resp.status, WireStatus::kOk) << resp.message;
    EXPECT_EQ(resp.payload, "deep");
  }
}

TEST_F(ServerTest, BatchedDerefOneRoundTrip) {
  StartServer();
  auto client = MustConnect();
  ASSERT_NE(client, nullptr);
  ASSERT_OK_AND_ASSIGN(const VersionId a, client->Pnew(type_id_, "aa"));
  ASSERT_OK_AND_ASSIGN(const VersionId b, client->Pnew(type_id_, "bb"));

  ASSERT_OK_AND_ASSIGN(
      const auto results,
      client->DerefBatch({{a.oid.value, 0},
                          {b.oid.value, b.vnum},
                          {131313, 0}}));
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].status, WireStatus::kOk);
  EXPECT_EQ(results[0].payload, "aa");
  EXPECT_EQ(results[1].payload, "bb");
  EXPECT_EQ(results[2].status, WireStatus::kNotFound);
}

TEST_F(ServerTest, ProtocolGarbageGetsTypedErrorThenClose) {
  StartServer();
  auto client = MustConnect();
  ASSERT_NE(client, nullptr);
  ASSERT_OK(client->Ping());

  // Raw hostile frame: oversized length prefix straight onto the socket.
  Request raw;
  raw.op = OpCode::kPing;
  std::string hostile;
  hostile.push_back('\xff');
  hostile.push_back('\xff');
  hostile.push_back('\xff');
  hostile.push_back('\xff');
  hostile += "trailing junk";
  // Reuse the pipelined surface to write bytes: encode nothing, write raw.
  // (Client has no raw-write API on purpose; go through a second socket.)
  auto hostile_client = MustConnect();
  ASSERT_NE(hostile_client, nullptr);
  {
    Request req;
    uint64_t id = 0;
    ASSERT_OK(hostile_client->Send(req, &id));  // valid ping first
    ASSERT_OK(hostile_client->Flush());
    Response resp;
    ASSERT_OK(hostile_client->Recv(&resp));
  }
  // Now the garbage, via the well-behaved client's socket internals: use
  // Status-level check that the server answers kProtocolError and closes.
  // We drive it with a one-shot throwaway TCP connection.
  struct RawConn {
    static Status Run(uint16_t port, const std::string& bytes,
                      Response* resp) {
      auto c = Client::Connect("127.0.0.1", port);
      ODE_RETURN_IF_ERROR(c.status());
      // Smuggle the raw bytes through Send's buffer: encode a ping, then
      // REPLACE the buffered frame.  Cheaper than a second socket API.
      Request req;
      ODE_RETURN_IF_ERROR((*c)->Send(req));
      (*c)->TestOnlyReplaceSendBuffer(bytes);
      ODE_RETURN_IF_ERROR((*c)->Flush());
      ODE_RETURN_IF_ERROR((*c)->Recv(resp));
      // The server must close after the error: next read hits EOF.
      Response eof_probe;
      Status end = (*c)->Recv(&eof_probe);
      if (end.ok()) return Status::Internal("connection stayed open");
      return Status::OK();
    }
  };
  Response resp;
  ASSERT_OK(RawConn::Run(server_->port(), hostile, &resp));
  EXPECT_EQ(resp.status, WireStatus::kProtocolError);

  // The healthy connection is unaffected.
  EXPECT_OK(client->Ping());
}

TEST_F(ServerTest, PipelineCapShedsWithBackpressure) {
  // One worker + a transaction holding it: requests from a second
  // connection park unanswered, so its pipeline fills deterministically.
  ServerOptions options;
  options.workers = 1;
  options.max_pipeline = 8;
  StartServer(options);

  auto holder = MustConnect();
  ASSERT_NE(holder, nullptr);
  ASSERT_OK(holder->TxnBegin());  // Parks every other connection's work.

  auto flooder = MustConnect();
  ASSERT_NE(flooder, nullptr);
  // 2x the cap: the early requests park, the overflow one is shed.
  for (int i = 0; i < 16; ++i) {
    Request req;
    req.op = OpCode::kPing;
    ASSERT_OK(flooder->Send(req));
  }
  ASSERT_OK(flooder->Flush());
  // First response on the flooded connection is the shed error (the parked
  // pings can't be answered while the txn pins the worker).
  Response resp;
  ASSERT_OK(flooder->Recv(&resp));
  EXPECT_EQ(resp.status, WireStatus::kBackpressure) << resp.message;

  // Release the worker; the holder's session still works end to end.
  ASSERT_OK_AND_ASSIGN(const VersionId vid,
                       holder->Pnew(type_id_, "inside txn"));
  ASSERT_OK(holder->TxnCommit());
  ASSERT_OK_AND_ASSIGN(const std::string read,
                       holder->DerefLatest(vid.oid));
  EXPECT_EQ(read, "inside txn");
}

TEST_F(ServerTest, TransactionAffinityParksOtherSessions) {
  // Both connections land on the single worker.  While A holds the txn,
  // B's request must NOT execute inside it (it parks until commit) — B's
  // pnew lands after A's commit and both objects survive.
  ServerOptions options;
  options.workers = 1;
  StartServer(options);
  auto a = MustConnect();
  auto b = MustConnect();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  ASSERT_OK(a->TxnBegin());
  // Send B's request while A's txn is open; do not wait for the answer yet.
  Request parked;
  parked.op = OpCode::kPnew;
  parked.type_id = type_id_;
  parked.payload = "from B";
  ASSERT_OK(b->Send(parked));
  ASSERT_OK(b->Flush());

  ASSERT_OK_AND_ASSIGN(const VersionId from_a, a->Pnew(type_id_, "from A"));
  ASSERT_OK(a->TxnCommit());

  Response resp;
  ASSERT_OK(b->Recv(&resp));
  ASSERT_EQ(resp.status, WireStatus::kOk) << resp.message;
  const ObjectId from_b{resp.oid};

  ASSERT_OK_AND_ASSIGN(std::string read_a, a->DerefLatest(from_a.oid));
  EXPECT_EQ(read_a, "from A");
  ASSERT_OK_AND_ASSIGN(std::string read_b, b->DerefLatest(from_b));
  EXPECT_EQ(read_b, "from B");
}

TEST_F(ServerTest, DisconnectAbortsTheSessionsTransaction) {
  StartServer();
  uint64_t doomed = 0;
  {
    auto txn_client = MustConnect();
    ASSERT_NE(txn_client, nullptr);
    ASSERT_OK(txn_client->TxnBegin());
    ASSERT_OK_AND_ASSIGN(const VersionId vid,
                         txn_client->Pnew(type_id_, "never committed"));
    doomed = vid.oid.value;
    // Client destructor closes the socket with the txn open.
  }
  auto fresh = MustConnect();
  ASSERT_NE(fresh, nullptr);
  // The abort runs on the worker asynchronously; poll until it lands.
  Status last;
  for (int i = 0; i < 200; ++i) {
    last = fresh->DerefLatest(ObjectId{doomed}).status();
    if (last.code() == StatusCode::kNotFound) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(last.code(), StatusCode::kNotFound) << last.ToString();
}

TEST_F(ServerTest, StatsReflectServerTraffic) {
  StartServer();
  auto client = MustConnect();
  ASSERT_NE(client, nullptr);
  ASSERT_OK(client->Ping());
  ASSERT_OK_AND_ASSIGN(const std::string json, client->Stats());
  EXPECT_NE(json.find("net.requests"), std::string::npos);
  EXPECT_NE(json.find("server.connections_accepted"), std::string::npos);
}

TEST_F(ServerTest, ConcurrentClientsHammerTheWorkerPool) {
  // >= 4 concurrent connections doing mixed reads/writes across 4 workers:
  // the acceptance-criteria load shape, and the TSan target for the queue /
  // outbox / txn-gate handoffs.
  StartServer();
  constexpr int kClients = 6;
  constexpr int kOpsPerClient = 120;

  // Seed one object per client up front.
  std::vector<uint64_t> seed_oids;
  {
    auto seeder = MustConnect();
    ASSERT_NE(seeder, nullptr);
    for (int i = 0; i < kClients; ++i) {
      ASSERT_OK_AND_ASSIGN(const VersionId vid,
                           seeder->Pnew(type_id_, "seed"));
      seed_oids.push_back(vid.oid.value);
    }
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = Client::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      const ObjectId mine{seed_oids[static_cast<size_t>(c)]};
      for (int i = 0; i < kOpsPerClient; ++i) {
        bool ok = true;
        switch (i % 4) {
          case 0:
            ok = (*client)->DerefLatest(mine).ok();
            break;
          case 1:
            ok = (*client)->NewVersionOf(mine).ok();
            break;
          case 2:
            ok = (*client)->UpdateLatest(mine, "c" + std::to_string(c) +
                                                   " i" + std::to_string(i))
                     .ok();
            break;
          case 3:
            ok = (*client)->VersionsOf(mine).ok();
            break;
        }
        if (!ok) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // The IO thread reaps a connection when epoll delivers the hang-up, which
  // lags the client-side close; poll instead of asserting instantly.
  for (int i = 0; i < 200 && server_->open_connections() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server_->open_connections(), 0u) << "clients should have closed";
}

TEST_F(ServerTest, ConcurrentPipelinedMixWithTransactions) {
  // Pipelined readers racing transactional writers across every worker;
  // exercises parking/unparking under churn.  TSan leg covers the handoffs.
  ServerOptions options;
  options.workers = 2;  // Forces sessions to share workers.
  StartServer(options);

  ASSERT_OK_AND_ASSIGN(const VersionId seed,
                       MustConnect()->Pnew(type_id_, "shared"));
  const uint64_t oid = seed.oid.value;

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&, c] {
      auto client = Client::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int round = 0; round < 20; ++round) {
        if (c == 0) {
          // One transactional writer (the db permits one txn at a time).
          if (!(*client)->TxnBegin().ok()) continue;
          (*client)->NewVersionOf(ObjectId{oid}).status().IgnoreError();
          if (!(*client)->TxnCommit().ok()) failures.fetch_add(1);
        } else {
          // Pipelined read burst.
          constexpr int kBurst = 16;
          for (int i = 0; i < kBurst; ++i) {
            Request req;
            req.op = OpCode::kDerefLatest;
            req.oid = oid;
            if (!(*client)->Send(req).ok()) failures.fetch_add(1);
          }
          if (!(*client)->Flush().ok()) failures.fetch_add(1);
          for (int i = 0; i < kBurst; ++i) {
            Response resp;
            if (!(*client)->Recv(&resp).ok() ||
                resp.status != WireStatus::kOk) {
              failures.fetch_add(1);
            }
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ServerTest, StopAnswersInFlightWithShuttingDownOrCloses) {
  ServerOptions options;
  options.workers = 1;
  StartServer(options);
  auto holder = MustConnect();
  ASSERT_NE(holder, nullptr);
  ASSERT_OK(holder->TxnBegin());  // Queue up parked work behind this.

  auto victim = MustConnect();
  ASSERT_NE(victim, nullptr);
  Request req;
  req.op = OpCode::kPing;
  ASSERT_OK(victim->Send(req));
  ASSERT_OK(victim->Flush());

  server_->Stop();

  // Three clean ends: the parked ping got a typed kShuttingDown answer, it
  // was answered normally in the instant between teardown and drain mode,
  // or the socket closed during shutdown.  Silence/hang is the bug (Recv
  // blocks forever) — reaching here at all means shutdown answered.
  Response resp;
  Status got = victim->Recv(&resp);
  if (got.ok()) {
    EXPECT_TRUE(resp.status == WireStatus::kShuttingDown ||
                resp.status == WireStatus::kOk)
        << static_cast<int>(resp.status) << " " << resp.message;
  }
  server_.reset();
}

}  // namespace
}  // namespace net
}  // namespace ode
