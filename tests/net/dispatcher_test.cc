// Dispatcher semantics through the loopback transport: every request type
// lands on the one Database entry point, responses carry the same outcomes
// a local caller sees, sessions own cursors and the transaction, and a
// poisoned byte stream kills the connection the way the socket server
// would.

#include "net/dispatcher.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/loopback.h"
#include "util/coding.h"
#include "net/wire.h"
#include "tests/testing/db_fixture.h"
#include "tests/testing/util.h"

namespace ode {
namespace net {
namespace {

class DispatcherTest : public testing_internal::DatabaseFixture {
 protected:
  void SetUp() override {
    DatabaseFixture::SetUp();
    SetUpRawType();
    loop_ = std::make_unique<LoopbackTransport>(*db_);
  }

  Response Call(OpCode op, const std::function<void(Request&)>& fill = {}) {
    Request req;
    req.op = op;
    req.request_id = next_id_++;
    if (fill) fill(req);
    Response resp = loop_->Call(req);
    EXPECT_EQ(resp.request_id, req.request_id);
    EXPECT_EQ(resp.op, op);
    return resp;
  }

  /// Creates one object over the wire; returns its oid.
  uint64_t WirePnew(const std::string& payload) {
    Response resp = Call(OpCode::kPnew, [&](Request& r) {
      r.type_id = type_id_;
      r.payload = payload;
    });
    EXPECT_EQ(resp.status, WireStatus::kOk) << resp.message;
    return resp.oid;
  }

  std::unique_ptr<LoopbackTransport> loop_;
  uint64_t next_id_ = 1;
};

TEST_F(DispatcherTest, PingEchoes) {
  Response resp = Call(OpCode::kPing);
  EXPECT_EQ(resp.status, WireStatus::kOk);
}

TEST_F(DispatcherTest, CreateDerefUpdateDeleteLifecycle) {
  const uint64_t oid = WirePnew("v1");

  Response deref = Call(OpCode::kDerefLatest,
                        [&](Request& r) { r.oid = oid; });
  ASSERT_EQ(deref.status, WireStatus::kOk) << deref.message;
  EXPECT_EQ(deref.payload, "v1");
  EXPECT_EQ(deref.oid, oid);
  EXPECT_EQ(deref.vnum, kFirstVersion);

  Response newv = Call(OpCode::kNewVersionOf,
                       [&](Request& r) { r.oid = oid; });
  ASSERT_EQ(newv.status, WireStatus::kOk);
  EXPECT_EQ(newv.vnum, kFirstVersion + 1);

  Response update = Call(OpCode::kUpdateLatest, [&](Request& r) {
    r.oid = oid;
    r.payload = "v2";
  });
  ASSERT_EQ(update.status, WireStatus::kOk) << update.message;
  EXPECT_EQ(Call(OpCode::kDerefLatest, [&](Request& r) { r.oid = oid; })
                .payload,
            "v2");

  Response versions = Call(OpCode::kVersionsOf,
                           [&](Request& r) { r.oid = oid; });
  ASSERT_EQ(versions.status, WireStatus::kOk);
  EXPECT_EQ(versions.vnums.size(), 2u);

  Response specific = Call(OpCode::kDerefVersion, [&](Request& r) {
    r.oid = oid;
    r.vnum = kFirstVersion;
  });
  ASSERT_EQ(specific.status, WireStatus::kOk);
  EXPECT_EQ(specific.payload, "v1");

  Response del = Call(OpCode::kDeleteObject,
                      [&](Request& r) { r.oid = oid; });
  EXPECT_EQ(del.status, WireStatus::kOk);
  EXPECT_EQ(Call(OpCode::kDerefLatest, [&](Request& r) { r.oid = oid; })
                .status,
            WireStatus::kNotFound);
}

TEST_F(DispatcherTest, ErrorsCarryTheLibraryMessage) {
  Response resp = Call(OpCode::kDerefLatest, [](Request& r) { r.oid = 999; });
  EXPECT_EQ(resp.status, WireStatus::kNotFound);
  EXPECT_FALSE(resp.message.empty());
}

TEST_F(DispatcherTest, BatchDerefReportsPerItemStatus) {
  const uint64_t a = WirePnew("alpha");
  const uint64_t b = WirePnew("beta");

  Response resp = Call(OpCode::kDerefBatch, [&](Request& r) {
    r.batch = {{a, 0},          // generic
               {b, 1},          // specific
               {424242, 0},     // missing object
               {a, 99}};        // missing version
  });
  ASSERT_EQ(resp.status, WireStatus::kOk);
  ASSERT_EQ(resp.batch.size(), 4u);
  EXPECT_EQ(resp.batch[0].status, WireStatus::kOk);
  EXPECT_EQ(resp.batch[0].payload, "alpha");
  EXPECT_EQ(resp.batch[0].vnum, kFirstVersion);  // resolved by generic form
  EXPECT_EQ(resp.batch[1].status, WireStatus::kOk);
  EXPECT_EQ(resp.batch[1].payload, "beta");
  EXPECT_EQ(resp.batch[2].status, WireStatus::kNotFound);
  EXPECT_EQ(resp.batch[3].status, WireStatus::kNotFound);
}

TEST_F(DispatcherTest, TypeRegistryOverTheWire) {
  Response reg = Call(OpCode::kRegisterType,
                      [](Request& r) { r.payload = "wire.type"; });
  ASSERT_EQ(reg.status, WireStatus::kOk);
  EXPECT_GT(reg.type_id, 0u);

  Response hit = Call(OpCode::kLookupType,
                      [](Request& r) { r.payload = "wire.type"; });
  ASSERT_EQ(hit.status, WireStatus::kOk);
  EXPECT_TRUE(hit.found);
  EXPECT_EQ(hit.type_id, reg.type_id);

  Response miss = Call(OpCode::kLookupType,
                       [](Request& r) { r.payload = "no.such.type"; });
  ASSERT_EQ(miss.status, WireStatus::kOk);
  EXPECT_FALSE(miss.found);
}

TEST_F(DispatcherTest, ObjectCursorPaginatesAndSelfCloses) {
  std::vector<uint64_t> oids;
  for (int i = 0; i < 10; ++i) oids.push_back(WirePnew("o"));

  Response open = Call(OpCode::kCursorOpen, [](Request& r) {
    r.cursor_kind = static_cast<uint8_t>(CursorKind::kObjects);
  });
  ASSERT_EQ(open.status, WireStatus::kOk);
  const uint64_t cursor = open.cursor_id;

  size_t seen = 0;
  bool done = false;
  while (!done) {
    Response next = Call(OpCode::kCursorNext, [&](Request& r) {
      r.cursor_id = cursor;
      r.max_entries = 3;  // Forces pagination.
    });
    ASSERT_EQ(next.status, WireStatus::kOk) << next.message;
    EXPECT_LE(next.entries.size(), 3u);
    seen += next.entries.size();
    done = next.done;
  }
  EXPECT_EQ(seen, oids.size());

  // Exhausted cursors self-close: the id is gone.
  Response after = Call(OpCode::kCursorNext, [&](Request& r) {
    r.cursor_id = cursor;
    r.max_entries = 3;
  });
  EXPECT_EQ(after.status, WireStatus::kNotFound);
}

TEST_F(DispatcherTest, VersionAndTypeAndClusterCursors) {
  const uint64_t oid = WirePnew("first");
  Call(OpCode::kNewVersionOf, [&](Request& r) { r.oid = oid; });

  Response vopen = Call(OpCode::kCursorOpen, [&](Request& r) {
    r.cursor_kind = static_cast<uint8_t>(CursorKind::kVersions);
    r.cursor_arg = oid;
  });
  ASSERT_EQ(vopen.status, WireStatus::kOk);
  Response vnext = Call(OpCode::kCursorNext, [&](Request& r) {
    r.cursor_id = vopen.cursor_id;
    r.max_entries = 100;
  });
  ASSERT_EQ(vnext.status, WireStatus::kOk);
  EXPECT_EQ(vnext.entries.size(), 2u);
  EXPECT_TRUE(vnext.done);

  Response topen = Call(OpCode::kCursorOpen, [](Request& r) {
    r.cursor_kind = static_cast<uint8_t>(CursorKind::kTypes);
  });
  ASSERT_EQ(topen.status, WireStatus::kOk);
  Response tnext = Call(OpCode::kCursorNext, [&](Request& r) {
    r.cursor_id = topen.cursor_id;
    r.max_entries = 100;
  });
  ASSERT_EQ(tnext.status, WireStatus::kOk);
  ASSERT_GE(tnext.entries.size(), 1u);
  bool saw_raw = false;
  for (const CursorEntry& e : tnext.entries) saw_raw |= (e.s == "raw");
  EXPECT_TRUE(saw_raw);

  Response copen = Call(OpCode::kCursorOpen, [&](Request& r) {
    r.cursor_kind = static_cast<uint8_t>(CursorKind::kCluster);
    r.cursor_arg = type_id_;
  });
  ASSERT_EQ(copen.status, WireStatus::kOk);
  Response cnext = Call(OpCode::kCursorNext, [&](Request& r) {
    r.cursor_id = copen.cursor_id;
    r.max_entries = 100;
  });
  ASSERT_EQ(cnext.status, WireStatus::kOk);
  EXPECT_EQ(cnext.entries.size(), 1u);
  EXPECT_EQ(cnext.entries[0].a, oid);
}

TEST_F(DispatcherTest, CursorCapBoundsLeakyClients) {
  for (size_t i = 0; i < Session::kMaxCursors; ++i) {
    Response open = Call(OpCode::kCursorOpen, [](Request& r) {
      r.cursor_kind = static_cast<uint8_t>(CursorKind::kObjects);
    });
    ASSERT_EQ(open.status, WireStatus::kOk) << "cursor " << i;
  }
  Response over = Call(OpCode::kCursorOpen, [](Request& r) {
    r.cursor_kind = static_cast<uint8_t>(CursorKind::kObjects);
  });
  EXPECT_EQ(over.status, WireStatus::kFailedPrecondition);

  // kCursorClose frees a slot.
  Response close = Call(OpCode::kCursorClose,
                        [](Request& r) { r.cursor_id = 1; });
  EXPECT_EQ(close.status, WireStatus::kOk);
  Response retry = Call(OpCode::kCursorOpen, [](Request& r) {
    r.cursor_kind = static_cast<uint8_t>(CursorKind::kObjects);
  });
  EXPECT_EQ(retry.status, WireStatus::kOk);
}

TEST_F(DispatcherTest, TransactionLifecycleAndDoubleBegin) {
  EXPECT_EQ(Call(OpCode::kTxnCommit).status, WireStatus::kFailedPrecondition);

  ASSERT_EQ(Call(OpCode::kTxnBegin).status, WireStatus::kOk);
  EXPECT_TRUE(loop_->session().in_txn());
  EXPECT_EQ(Call(OpCode::kTxnBegin).status, WireStatus::kFailedPrecondition);

  const uint64_t oid = WirePnew("txn payload");
  ASSERT_EQ(Call(OpCode::kTxnCommit).status, WireStatus::kOk);
  EXPECT_FALSE(loop_->session().in_txn());
  EXPECT_EQ(Call(OpCode::kDerefLatest, [&](Request& r) { r.oid = oid; })
                .status,
            WireStatus::kOk);

  // Abort path: the object created inside never becomes visible.
  ASSERT_EQ(Call(OpCode::kTxnBegin).status, WireStatus::kOk);
  const uint64_t doomed = WirePnew("doomed");
  ASSERT_EQ(Call(OpCode::kTxnAbort).status, WireStatus::kOk);
  EXPECT_EQ(Call(OpCode::kDerefLatest, [&](Request& r) { r.oid = doomed; })
                .status,
            WireStatus::kNotFound);
}

TEST_F(DispatcherTest, SessionTeardownAbortsItsTransaction) {
  ASSERT_EQ(Call(OpCode::kTxnBegin).status, WireStatus::kOk);
  const uint64_t doomed = WirePnew("gone with the session");
  loop_.reset();  // Destructor == disconnect == CloseSession.

  LoopbackTransport fresh(*db_);
  Request req;
  req.op = OpCode::kDerefLatest;
  req.oid = doomed;
  EXPECT_EQ(fresh.Call(req).status, WireStatus::kNotFound);
}

TEST_F(DispatcherTest, StatsReturnsTheMetricsDocument) {
  WirePnew("x");
  Response resp = Call(OpCode::kStats);
  ASSERT_EQ(resp.status, WireStatus::kOk);
  // Dispatcher instruments live in the same registry the snapshot renders.
  EXPECT_NE(resp.payload.find("net.requests"), std::string::npos);
}

TEST_F(DispatcherTest, GarbageOnTheWireKillsTheConnectionTyped) {
  std::string responses;
  // A length prefix past the frame cap: answered once, then dead.
  std::string garbage;
  PutFixed32(&garbage, 0xffffffffu);
  garbage.append("junk");
  Status fed = loop_->Feed(Slice(garbage), &responses);
  EXPECT_FALSE(fed.ok());
  EXPECT_TRUE(loop_->dead());
  EXPECT_FALSE(responses.empty()) << "must answer before closing";

  // The answer is a decodable kProtocolError response.
  Slice stream(responses);
  Slice frame;
  std::string error;
  ASSERT_EQ(ExtractFrame(&stream, &frame, kDefaultMaxFrameBytes, &error),
            FrameResult::kFrame);
  Response resp;
  ASSERT_OK(DecodeResponse(frame, &resp));
  EXPECT_EQ(resp.status, WireStatus::kProtocolError);

  // Dead is dead.
  std::string more;
  EXPECT_FALSE(loop_->Feed(Slice("anything"), &more).ok());
}

TEST_F(DispatcherTest, PipelinedFeedAnswersInOrder) {
  const uint64_t oid = WirePnew("pipelined");
  std::string stream;
  for (uint64_t id = 100; id < 105; ++id) {
    Request req;
    req.op = OpCode::kDerefLatest;
    req.request_id = id;
    req.oid = oid;
    EncodeRequestFrame(req, &stream);
  }
  std::string responses;
  // Feed in two torn halves.
  ASSERT_OK(loop_->Feed(Slice(stream.data(), stream.size() / 2), &responses));
  ASSERT_OK(loop_->Feed(Slice(stream.data() + stream.size() / 2,
                              stream.size() - stream.size() / 2),
                        &responses));
  Slice in(responses);
  for (uint64_t id = 100; id < 105; ++id) {
    Slice frame;
    std::string error;
    ASSERT_EQ(ExtractFrame(&in, &frame, kDefaultMaxFrameBytes, &error),
              FrameResult::kFrame);
    Response resp;
    ASSERT_OK(DecodeResponse(frame, &resp));
    EXPECT_EQ(resp.request_id, id);
    EXPECT_EQ(resp.payload, "pipelined");
  }
  EXPECT_TRUE(in.empty());
}

}  // namespace
}  // namespace net
}  // namespace ode
