// Codec hardening: round-trips for every operation, then the hostile-input
// sweep ISSUE'd for this layer — truncated frames, oversized length
// prefixes, unknown opcodes, torn pipelined streams, trailing garbage,
// random bytes.  The contract under fire is uniform: typed errors, never a
// crash, never a read past the frame.

#include "net/wire.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/ids.h"
#include "fuzz/fuzz.h"
#include "util/coding.h"
#include "util/random.h"
#include "util/slice.h"

namespace ode {
namespace net {
namespace {

// Encodes `req` and hands back just the frame payload (prefix stripped),
// which is what DecodeRequest consumes.
std::string PayloadOf(const Request& req) {
  std::string frame;
  EncodeRequestFrame(req, &frame);
  Slice input(frame);
  Slice payload;
  std::string error;
  EXPECT_EQ(ExtractFrame(&input, &payload, kDefaultMaxFrameBytes, &error),
            FrameResult::kFrame)
      << error;
  EXPECT_TRUE(input.empty());
  return std::string(payload.data(), payload.size());
}

std::string PayloadOf(const Response& resp) {
  std::string frame;
  EncodeResponseFrame(resp, &frame);
  Slice input(frame);
  Slice payload;
  std::string error;
  EXPECT_EQ(ExtractFrame(&input, &payload, kDefaultMaxFrameBytes, &error),
            FrameResult::kFrame)
      << error;
  return std::string(payload.data(), payload.size());
}

Request RoundTrip(const Request& req) {
  Request out;
  const std::string payload = PayloadOf(req);
  EXPECT_TRUE(DecodeRequest(Slice(payload), &out).ok());
  EXPECT_EQ(out.op, req.op);
  EXPECT_EQ(out.request_id, req.request_id);
  return out;
}

Response RoundTrip(const Response& resp) {
  Response out;
  const std::string payload = PayloadOf(resp);
  EXPECT_TRUE(DecodeResponse(Slice(payload), &out).ok());
  EXPECT_EQ(out.op, resp.op);
  EXPECT_EQ(out.request_id, resp.request_id);
  EXPECT_EQ(out.status, resp.status);
  return out;
}

// -- Round trips -------------------------------------------------------------

TEST(WireCodecTest, RequestRoundTripsEveryOperandShape) {
  {
    Request req;
    req.op = OpCode::kPnew;
    req.request_id = 7;
    req.type_id = 3;
    req.payload = std::string("bytes\0with\0nuls", 15);
    Request out = RoundTrip(req);
    EXPECT_EQ(out.type_id, 3u);
    EXPECT_EQ(out.payload, req.payload);
  }
  {
    Request req;
    req.op = OpCode::kNewVersionFrom;
    req.request_id = 8;
    req.oid = 0xdeadbeefcafeull;
    req.vnum = 42;
    Request out = RoundTrip(req);
    EXPECT_EQ(out.oid, req.oid);
    EXPECT_EQ(out.vnum, 42u);
  }
  {
    Request req;
    req.op = OpCode::kDerefBatch;
    req.request_id = 9;
    req.batch = {{1, 0}, {2, 5}, {0xffffffffffffffffull, 0xffffffffu}};
    Request out = RoundTrip(req);
    ASSERT_EQ(out.batch.size(), 3u);
    EXPECT_EQ(out.batch[2].oid, 0xffffffffffffffffull);
    EXPECT_EQ(out.batch[2].vnum, 0xffffffffu);
  }
  {
    Request req;
    req.op = OpCode::kCursorOpen;
    req.request_id = 10;
    req.cursor_kind = static_cast<uint8_t>(CursorKind::kVersions);
    req.cursor_arg = 77;
    Request out = RoundTrip(req);
    EXPECT_EQ(out.cursor_kind, req.cursor_kind);
    EXPECT_EQ(out.cursor_arg, 77u);
  }
  {
    Request req;
    req.op = OpCode::kCursorNext;
    req.request_id = 11;
    req.cursor_id = 5;
    req.max_entries = 128;
    Request out = RoundTrip(req);
    EXPECT_EQ(out.cursor_id, 5u);
    EXPECT_EQ(out.max_entries, 128u);
  }
  for (OpCode op : {OpCode::kPing, OpCode::kTxnBegin, OpCode::kTxnCommit,
                    OpCode::kTxnAbort, OpCode::kStats}) {
    Request req;
    req.op = op;
    req.request_id = 12;
    RoundTrip(req);
  }
}

TEST(WireCodecTest, ResponseRoundTripsEveryBodyShape) {
  {
    Response resp;
    resp.op = OpCode::kDerefLatest;
    resp.request_id = 1;
    resp.oid = 4;
    resp.vnum = 2;
    resp.payload = "data";
    Response out = RoundTrip(resp);
    EXPECT_EQ(out.oid, 4u);
    EXPECT_EQ(out.vnum, 2u);
    EXPECT_EQ(out.payload, "data");
  }
  {
    Response resp;
    resp.op = OpCode::kDerefBatch;
    resp.request_id = 2;
    DerefResult hit;
    hit.oid = 9;
    hit.vnum = 1;
    hit.payload = "x";
    DerefResult miss;
    miss.status = WireStatus::kNotFound;
    resp.batch = {hit, miss};
    Response out = RoundTrip(resp);
    ASSERT_EQ(out.batch.size(), 2u);
    EXPECT_EQ(out.batch[0].payload, "x");
    EXPECT_EQ(out.batch[1].status, WireStatus::kNotFound);
  }
  {
    Response resp;
    resp.op = OpCode::kVersionsOf;
    resp.request_id = 3;
    resp.vnums = {1, 2, 3, 99};
    Response out = RoundTrip(resp);
    EXPECT_EQ(out.vnums, resp.vnums);
  }
  {
    Response resp;
    resp.op = OpCode::kCursorNext;
    resp.request_id = 4;
    resp.done = true;
    resp.entries = {{1, 2, 3, "name"}, {4, 5, 6, ""}};
    Response out = RoundTrip(resp);
    EXPECT_TRUE(out.done);
    ASSERT_EQ(out.entries.size(), 2u);
    EXPECT_EQ(out.entries[0].s, "name");
    EXPECT_EQ(out.entries[1].a, 4u);
  }
  {
    Response resp;
    resp.op = OpCode::kLookupType;
    resp.request_id = 5;
    resp.found = true;
    resp.type_id = 12;
    Response out = RoundTrip(resp);
    EXPECT_TRUE(out.found);
    EXPECT_EQ(out.type_id, 12u);
  }
  {
    Response resp;
    resp.op = OpCode::kPnew;
    resp.request_id = 6;
    resp.status = WireStatus::kNotFound;
    resp.message = "no such thing";
    Response out = RoundTrip(resp);
    EXPECT_EQ(out.message, "no such thing");
    // A non-OK response carries no op-specific body.
    EXPECT_EQ(out.oid, 0u);
  }
}

// -- Framing -----------------------------------------------------------------

TEST(WireCodecTest, ExtractFrameNeedsMoreOnEveryTruncation) {
  Request req;
  req.op = OpCode::kPnew;
  req.payload = "payload";
  std::string frame;
  EncodeRequestFrame(req, &frame);
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    Slice input(frame.data(), cut);
    Slice payload;
    std::string error;
    EXPECT_EQ(ExtractFrame(&input, &payload, kDefaultMaxFrameBytes, &error),
              FrameResult::kNeedMore)
        << "at cut " << cut;
    EXPECT_EQ(input.size(), cut) << "kNeedMore must not consume";
  }
}

TEST(WireCodecTest, OversizedLengthPrefixIsAnUnrecoverableError) {
  std::string stream;
  PutFixed32(&stream, 0xffffffffu);  // 4 GiB "frame".
  stream.append(100, 'x');
  Slice input(stream);
  Slice payload;
  std::string error;
  EXPECT_EQ(ExtractFrame(&input, &payload, kDefaultMaxFrameBytes, &error),
            FrameResult::kError);
  EXPECT_FALSE(error.empty());
}

TEST(WireCodecTest, UndersizedLengthPrefixIsAnError) {
  // length smaller than version+opcode+request_id can't hold a message.
  std::string stream;
  PutFixed32(&stream, 3);
  stream.append(3, 'x');
  Slice input(stream);
  Slice payload;
  std::string error;
  EXPECT_EQ(ExtractFrame(&input, &payload, kDefaultMaxFrameBytes, &error),
            FrameResult::kError);
}

TEST(WireCodecTest, TornPipelinedStreamReassembles) {
  // Three pipelined requests, delivered one byte at a time: every frame
  // must come out intact and in order, exactly once.
  std::string stream;
  for (uint64_t id = 1; id <= 3; ++id) {
    Request req;
    req.op = OpCode::kDerefLatest;
    req.request_id = id;
    req.oid = id * 10;
    EncodeRequestFrame(req, &stream);
  }
  std::string buffer;
  std::vector<Request> decoded;
  for (char byte : stream) {
    buffer.push_back(byte);
    Slice input(buffer);
    while (true) {
      Slice payload;
      std::string error;
      const FrameResult r =
          ExtractFrame(&input, &payload, kDefaultMaxFrameBytes, &error);
      if (r == FrameResult::kNeedMore) break;
      ASSERT_EQ(r, FrameResult::kFrame) << error;
      Request req;
      ASSERT_TRUE(DecodeRequest(payload, &req).ok());
      decoded.push_back(req);
    }
    buffer.erase(0, buffer.size() - input.size());
  }
  ASSERT_EQ(decoded.size(), 3u);
  for (uint64_t id = 1; id <= 3; ++id) {
    EXPECT_EQ(decoded[id - 1].request_id, id);
    EXPECT_EQ(decoded[id - 1].oid, id * 10);
  }
}

// -- Body decoding under fire ------------------------------------------------

TEST(WireCodecTest, WrongProtocolVersionIsRejected) {
  Request req;
  req.op = OpCode::kPing;
  std::string payload = PayloadOf(req);
  payload[0] = static_cast<char>(kWireVersion + 1);
  Request out;
  Status s = DecodeRequest(Slice(payload), &out);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("version"), std::string::npos);
}

TEST(WireCodecTest, UnknownOpcodeIsRejected) {
  Request req;
  req.op = OpCode::kPing;
  std::string payload = PayloadOf(req);
  payload[1] = static_cast<char>(0xee);
  Request out;
  EXPECT_FALSE(DecodeRequest(Slice(payload), &out).ok());
}

TEST(WireCodecTest, TruncatedBodyIsRejectedAtEveryLength) {
  // Every proper prefix of every op's valid payload must decode to an
  // error, not a crash or a bogus success.
  std::vector<Request> shapes;
  {
    Request r;
    r.op = OpCode::kPnew;
    r.type_id = 1;
    r.payload = "body bytes";
    shapes.push_back(r);
  }
  {
    Request r;
    r.op = OpCode::kDerefBatch;
    r.batch = {{1, 2}, {3, 4}};
    shapes.push_back(r);
  }
  {
    Request r;
    r.op = OpCode::kCursorNext;
    r.cursor_id = 1;
    r.max_entries = 10;
    shapes.push_back(r);
  }
  for (const Request& shape : shapes) {
    const std::string payload = PayloadOf(shape);
    for (size_t cut = 0; cut < payload.size(); ++cut) {
      Request out;
      EXPECT_FALSE(DecodeRequest(Slice(payload.data(), cut), &out).ok())
          << OpCodeName(shape.op) << " truncated to " << cut;
    }
  }
}

TEST(WireCodecTest, TrailingGarbageIsRejected) {
  for (OpCode op : {OpCode::kPing, OpCode::kDerefLatest, OpCode::kTxnBegin}) {
    Request req;
    req.op = op;
    req.oid = 1;
    std::string payload = PayloadOf(req);
    payload.push_back('\x00');
    Request out;
    Status s = DecodeRequest(Slice(payload), &out);
    EXPECT_FALSE(s.ok()) << OpCodeName(op);
  }
}

TEST(WireCodecTest, HostileBatchCountIsCappedNotAllocated) {
  // Hand-build a kDerefBatch whose count claims kMaxBatchItems+1 entries:
  // the decoder must reject on the count, before trying to reserve or read
  // the items.
  std::string payload;
  payload.push_back(static_cast<char>(kWireVersion));
  payload.push_back(static_cast<char>(OpCode::kDerefBatch));
  PutFixed64(&payload, 1);  // request id
  PutVarint32(&payload, kMaxBatchItems + 1);
  Request out;
  Status s = DecodeRequest(Slice(payload), &out);
  EXPECT_FALSE(s.ok());
}

TEST(WireCodecTest, ResponseWithUnknownStatusByteIsRejected) {
  Response resp;
  resp.op = OpCode::kPing;
  std::string payload = PayloadOf(resp);
  // Status byte sits right after version+opcode+request_id.
  payload[1 + 1 + 8] = static_cast<char>(200);
  Response out;
  EXPECT_FALSE(DecodeResponse(Slice(payload), &out).ok());
}

TEST(WireCodecTest, RandomGarbageNeverCrashesTheDecoders) {
  // The hostile-input sweep runs through the shared fuzz registry
  // (src/fuzz/), so this test, the `ctest -L fuzz` corpus-replay leg, and
  // the libFuzzer CI job all exercise the exact same harness code — and
  // the targets assert more than "no crash": round-trip identity, buffer
  // discipline on kNeedMore, in-bounds frames.
  fuzz::RegisterAllFuzzTargets();
  std::vector<const fuzz::FuzzTarget*> targets;
  for (const char* name :
       {"wire_extract_frame", "wire_decode_request", "wire_decode_response"}) {
    const auto* t = fuzz::FindFuzzTarget(name);
    ASSERT_NE(t, nullptr) << name;
    targets.push_back(t);
  }
  auto run = [&](const std::string& input) {
    for (const auto* t : targets) {
      EXPECT_EQ(t->entry(reinterpret_cast<const uint8_t*>(input.data()),
                         input.size()),
                0)
          << t->name;
    }
  };
  Random rng(20260809);
  for (int i = 0; i < 500; ++i) {
    run(rng.NextBytes(rng.Uniform(64)));
  }
  // Second sweep: take a VALID payload and flip bytes — decoders must
  // always answer (ok or error), never crash or hang.
  Request valid;
  valid.op = OpCode::kDerefBatch;
  valid.batch = {{1, 2}, {3, 4}, {5, 6}};
  const std::string base = PayloadOf(valid);
  for (int i = 0; i < 500; ++i) {
    std::string mutated = base;
    const size_t flips = 1 + rng.Uniform(4);
    for (size_t f = 0; f < flips; ++f) {
      mutated[rng.Uniform(mutated.size())] ^=
          static_cast<char>(1 + rng.Uniform(255));
    }
    run(mutated);
  }
  // Third sweep: whole frames (prefix included) through the stream target.
  const auto* stream = fuzz::FindFuzzTarget("wire_extract_frame");
  std::string frame;
  EncodeRequestFrame(valid, &frame);
  for (int i = 0; i < 500; ++i) {
    std::string mutated = frame;
    mutated[rng.Uniform(mutated.size())] ^=
        static_cast<char>(1 + rng.Uniform(255));
    EXPECT_EQ(stream->entry(reinterpret_cast<const uint8_t*>(mutated.data()),
                            mutated.size()),
              0);
  }
}

}  // namespace
}  // namespace net
}  // namespace ode
