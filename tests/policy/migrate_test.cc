#include "policy/migrate.h"

#include <gtest/gtest.h>

#include "policy/history.h"
#include "tests/testing/db_fixture.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;

class MigrateTest : public DatabaseFixture {
 protected:
  void SetUp() override {
    DatabaseFixture::SetUp();
    SetUpRawType();
  }

  /// Opens a second, independent database over the same MemEnv.
  std::unique_ptr<Database> OpenSecondDb() {
    DatabaseOptions options;
    options.storage.env = &env_;
    options.storage.path = "/db2";
    options.clock = &clock_;
    auto db = Database::Open(options);
    EXPECT_TRUE(db.ok()) << db.status();
    return db.ok() ? std::move(*db) : nullptr;
  }
};

TEST_F(MigrateTest, ExportImportRoundTripsSingleVersion) {
  VersionId v0 = MustPnew("solo payload");
  auto exported = migrate::ExportObject(*db_, v0.oid);
  ASSERT_TRUE(exported.ok()) << exported.status();
  auto dst = OpenSecondDb();
  ASSERT_NE(dst, nullptr);
  auto imported = migrate::ImportObject(*dst, Slice(*exported));
  ASSERT_TRUE(imported.ok()) << imported.status();
  auto payload = dst->ReadLatest(imported->oid);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(*payload, "solo payload");
}

TEST_F(MigrateTest, CopyPreservesGraphTopology) {
  // Build: v1 -> {v2, v3}, v2 -> {v4}; then delete v2 so v4 re-parents and
  // the copy must reproduce the SPLICED graph.
  VersionId v1 = MustPnew("v1");
  auto v2 = db_->NewVersionFrom(v1);
  auto v3 = db_->NewVersionFrom(v1);
  ASSERT_TRUE(v2.ok() && v3.ok());
  auto v4 = db_->NewVersionFrom(*v2);
  ASSERT_TRUE(v4.ok());
  ASSERT_OK(db_->UpdateVersion(*v3, Slice("v3 payload")));
  ASSERT_OK(db_->PdeleteVersion(*v2));

  auto dst = OpenSecondDb();
  ASSERT_NE(dst, nullptr);
  auto copied = migrate::CopyObject(*db_, v1.oid, *dst);
  ASSERT_TRUE(copied.ok()) << copied.status();

  auto src_graph = history::Collect(*db_, v1.oid);
  auto dst_graph = history::Collect(*dst, copied->oid);
  ASSERT_TRUE(src_graph.ok() && dst_graph.ok());
  ASSERT_EQ(dst_graph->temporal_order.size(),
            src_graph->temporal_order.size());
  // Structure: one root (v1) with two children (v3, v4 after splice).
  ASSERT_EQ(dst_graph->forest.size(), 1u);
  EXPECT_EQ(dst_graph->forest[0].children.size(), 2u);
  // Payloads travel.
  const VersionNum v3_new = copied->vnum_map.at(v3->vnum);
  auto payload = dst->ReadVersion(VersionId{copied->oid, v3_new});
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(*payload, "v3 payload");
}

TEST_F(MigrateTest, MultiRootHistoriesSurviveCopy) {
  // Delete the root of a two-root history; the import must recreate both
  // roots (exercising NewDetachedVersion).
  VersionId v1 = MustPnew("v1");
  auto v2 = db_->NewVersionFrom(v1);
  auto v3 = db_->NewVersionFrom(v1);
  ASSERT_TRUE(v2.ok() && v3.ok());
  ASSERT_OK(db_->PdeleteVersion(v1));  // v2 and v3 become roots.

  auto dst = OpenSecondDb();
  ASSERT_NE(dst, nullptr);
  auto copied = migrate::CopyObject(*db_, v1.oid, *dst);
  ASSERT_TRUE(copied.ok()) << copied.status();
  auto roots = history::Roots(*dst, copied->oid);
  ASSERT_TRUE(roots.ok());
  EXPECT_EQ(roots->size(), 2u);
}

TEST_F(MigrateTest, ImportRegistersTypeInDestination) {
  VersionId v0 = MustPnew("x");
  auto dst = OpenSecondDb();
  ASSERT_NE(dst, nullptr);
  auto copied = migrate::CopyObject(*db_, v0.oid, *dst);
  ASSERT_TRUE(copied.ok());
  auto type = dst->LookupType("raw");
  ASSERT_TRUE(type.ok());
  ASSERT_TRUE(type->has_value());
  auto cluster = dst->ClusterSize(**type);
  ASSERT_TRUE(cluster.ok());
  EXPECT_EQ(*cluster, 1u);
}

TEST_F(MigrateTest, CopyWithinSameDatabaseDuplicates) {
  VersionId v0 = MustPnew("original");
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  auto copied = migrate::CopyObject(*db_, v0.oid, *db_);
  ASSERT_TRUE(copied.ok());
  EXPECT_NE(copied->oid, v0.oid);
  auto versions = db_->VersionsOf(copied->oid);
  ASSERT_TRUE(versions.ok());
  EXPECT_EQ(versions->size(), 2u);
  // The copy is independent: updating it leaves the original alone.
  ASSERT_OK(db_->UpdateLatest(copied->oid, Slice("copy changed")));
  EXPECT_EQ(MustReadLatest(v0.oid), "original");
}

TEST_F(MigrateTest, ExportOfMissingObjectFails) {
  EXPECT_TRUE(
      migrate::ExportObject(*db_, ObjectId{424242}).status().IsNotFound());
}

TEST_F(MigrateTest, ImportRejectsGarbage) {
  auto dst = OpenSecondDb();
  ASSERT_NE(dst, nullptr);
  EXPECT_FALSE(migrate::ImportObject(*dst, Slice("not an export")).ok());
}

TEST_F(MigrateTest, TimestampOrderPreserved) {
  VersionId v1 = MustPnew("a");
  auto v2 = db_->NewVersionOf(v1.oid);
  auto v3 = db_->NewVersionOf(v1.oid);
  ASSERT_TRUE(v2.ok() && v3.ok());
  auto dst = OpenSecondDb();
  ASSERT_NE(dst, nullptr);
  auto copied = migrate::CopyObject(*db_, v1.oid, *dst);
  ASSERT_TRUE(copied.ok());
  auto versions = dst->VersionsOf(copied->oid);
  ASSERT_TRUE(versions.ok());
  uint64_t last_ts = 0;
  for (VersionId vid : *versions) {
    auto meta = dst->Meta(vid);
    ASSERT_TRUE(meta.ok());
    EXPECT_GT(meta->created_ts, last_ts);
    last_ts = meta->created_ts;
  }
}

}  // namespace
}  // namespace ode
