#include <gtest/gtest.h>

#include "core/check.h"
#include "policy/history.h"
#include "tests/testing/db_fixture.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;

class SubtreeTest : public DatabaseFixture {
 protected:
  void SetUp() override {
    DatabaseFixture::SetUp();
    SetUpRawType();
  }

  // Builds: v1 -> {v2, v3}; v2 -> {v4, v5}; v3 -> {v6}.
  void BuildTree() {
    v1_ = MustPnew("v1");
    v2_ = *db_->NewVersionFrom(v1_);
    v3_ = *db_->NewVersionFrom(v1_);
    v4_ = *db_->NewVersionFrom(v2_);
    v5_ = *db_->NewVersionFrom(v2_);
    v6_ = *db_->NewVersionFrom(v3_);
  }

  VersionId v1_, v2_, v3_, v4_, v5_, v6_;
};

TEST_F(SubtreeTest, DeletesVersionAndDescendants) {
  BuildTree();
  auto deleted = history::DeleteSubtree(*db_, v2_);
  ASSERT_TRUE(deleted.ok()) << deleted.status();
  EXPECT_EQ(*deleted, 3u);  // v2, v4, v5.
  for (VersionId vid : {v2_, v4_, v5_}) {
    auto exists = db_->VersionExists(vid);
    ASSERT_TRUE(exists.ok());
    EXPECT_FALSE(*exists);
  }
  for (VersionId vid : {v1_, v3_, v6_}) {
    auto exists = db_->VersionExists(vid);
    ASSERT_TRUE(exists.ok());
    EXPECT_TRUE(*exists);
  }
  auto report = CheckDatabase(*db_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->errors.front();
}

TEST_F(SubtreeTest, LeafSubtreeIsJustTheLeaf) {
  BuildTree();
  auto deleted = history::DeleteSubtree(*db_, v6_);
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(*deleted, 1u);
}

TEST_F(SubtreeTest, RootSubtreeDeletesWholeObject) {
  BuildTree();
  auto deleted = history::DeleteSubtree(*db_, v1_);
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(*deleted, 6u);
  auto exists = db_->ObjectExists(v1_.oid);
  ASSERT_TRUE(exists.ok());
  EXPECT_FALSE(*exists);
}

TEST_F(SubtreeTest, LatestRecomputedAfterPrune) {
  BuildTree();  // v6 is latest.
  auto deleted = history::DeleteSubtree(*db_, v3_);  // Kills v3 and v6.
  ASSERT_TRUE(deleted.ok());
  auto latest = db_->Latest(v1_.oid);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, v5_);  // Newest survivor.
}

TEST_F(SubtreeTest, MissingVersionFails) {
  BuildTree();
  EXPECT_FALSE(
      history::DeleteSubtree(*db_, VersionId{v1_.oid, 999}).ok());
}

TEST_F(SubtreeTest, WorksWithDeltaPayloads) {
  db_.reset();
  DatabaseOptions options = MakeOptions();
  options.payload_strategy = PayloadKind::kDelta;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  db_ = std::move(*db);
  SetUpRawType();
  BuildTree();
  auto deleted = history::DeleteSubtree(*db_, v2_);
  ASSERT_TRUE(deleted.ok()) << deleted.status();
  // Survivors still materialize.
  EXPECT_EQ(MustRead(v6_), "v1");
  auto report = CheckDatabase(*db_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->errors.front();
}

}  // namespace
}  // namespace ode
