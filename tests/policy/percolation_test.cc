#include "policy/percolation.h"

#include <gtest/gtest.h>

#include "tests/testing/db_fixture.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;

class PercolationTest : public DatabaseFixture {
 protected:
  void SetUp() override {
    DatabaseFixture::SetUp();
    SetUpRawType();
  }

  uint32_t VersionCount(ObjectId oid) {
    auto header = db_->Header(oid);
    EXPECT_TRUE(header.ok());
    return header.ok() ? header->version_count : 0;
  }
};

TEST_F(PercolationTest, NewComponentVersionPercolatesToDependent) {
  PercolationPolicy policy(*db_);
  VersionId component = MustPnew("component");
  VersionId composite = MustPnew("composite");
  policy.Declare(component.oid, composite.oid);

  ASSERT_TRUE(db_->NewVersionOf(component.oid).ok());
  EXPECT_EQ(VersionCount(component.oid), 2u);
  EXPECT_EQ(VersionCount(composite.oid), 2u);
  EXPECT_EQ(policy.percolated_versions(), 1u);
}

TEST_F(PercolationTest, TransitivePercolation) {
  PercolationPolicy policy(*db_);
  VersionId leaf = MustPnew("leaf");
  VersionId middle = MustPnew("middle");
  VersionId root = MustPnew("root");
  policy.Declare(leaf.oid, middle.oid);
  policy.Declare(middle.oid, root.oid);

  ASSERT_TRUE(db_->NewVersionOf(leaf.oid).ok());
  EXPECT_EQ(VersionCount(middle.oid), 2u);
  EXPECT_EQ(VersionCount(root.oid), 2u);
  EXPECT_EQ(policy.percolated_versions(), 2u);
}

TEST_F(PercolationTest, SharedDependentVersionedOncePerWave) {
  // Diamond: two components in the same composite; a wave triggered by one
  // component versions the composite once, not twice.
  PercolationPolicy policy(*db_);
  VersionId a = MustPnew("a");
  VersionId b = MustPnew("b");
  VersionId composite = MustPnew("composite");
  VersionId super = MustPnew("super");
  policy.Declare(a.oid, composite.oid);
  policy.Declare(b.oid, composite.oid);
  policy.Declare(composite.oid, super.oid);
  policy.Declare(a.oid, super.oid);  // Diamond edge.

  ASSERT_TRUE(db_->NewVersionOf(a.oid).ok());
  EXPECT_EQ(VersionCount(composite.oid), 2u);
  EXPECT_EQ(VersionCount(super.oid), 2u);
  EXPECT_EQ(policy.percolated_versions(), 2u);
}

TEST_F(PercolationTest, CyclesTerminate) {
  PercolationPolicy policy(*db_);
  VersionId a = MustPnew("a");
  VersionId b = MustPnew("b");
  policy.Declare(a.oid, b.oid);
  policy.Declare(b.oid, a.oid);  // Cycle.

  ASSERT_TRUE(db_->NewVersionOf(a.oid).ok());
  // a was versioned by the user; b percolated; a NOT re-versioned.
  EXPECT_EQ(VersionCount(a.oid), 2u);
  EXPECT_EQ(VersionCount(b.oid), 2u);
  EXPECT_EQ(policy.percolated_versions(), 1u);
}

TEST_F(PercolationTest, SeparateWavesPercolateSeparately) {
  PercolationPolicy policy(*db_);
  VersionId component = MustPnew("c");
  VersionId composite = MustPnew("d");
  policy.Declare(component.oid, composite.oid);
  ASSERT_TRUE(db_->NewVersionOf(component.oid).ok());
  ASSERT_TRUE(db_->NewVersionOf(component.oid).ok());
  EXPECT_EQ(VersionCount(composite.oid), 3u);
  EXPECT_EQ(policy.percolated_versions(), 2u);
}

TEST_F(PercolationTest, UndeclareStopsPercolation) {
  PercolationPolicy policy(*db_);
  VersionId component = MustPnew("c");
  VersionId composite = MustPnew("d");
  policy.Declare(component.oid, composite.oid);
  policy.Undeclare(component.oid, composite.oid);
  ASSERT_TRUE(db_->NewVersionOf(component.oid).ok());
  EXPECT_EQ(VersionCount(composite.oid), 1u);
  EXPECT_EQ(policy.percolated_versions(), 0u);
}

TEST_F(PercolationTest, FanOutMatchesDependencyCount) {
  // The paper's warning quantified: one newversion cascades into N.
  PercolationPolicy policy(*db_);
  VersionId component = MustPnew("shared-part");
  constexpr int kDependents = 20;
  std::vector<ObjectId> dependents;
  for (int i = 0; i < kDependents; ++i) {
    VersionId dep = MustPnew("design-" + std::to_string(i));
    policy.Declare(component.oid, dep.oid);
    dependents.push_back(dep.oid);
  }
  ASSERT_TRUE(db_->NewVersionOf(component.oid).ok());
  EXPECT_EQ(policy.percolated_versions(), static_cast<uint64_t>(kDependents));
  for (ObjectId dep : dependents) {
    EXPECT_EQ(VersionCount(dep), 2u);
  }
  EXPECT_EQ(policy.DependentsOf(component.oid).size(),
            static_cast<size_t>(kDependents));
}

}  // namespace
}  // namespace ode
