#include <gtest/gtest.h>

#include "policy/configuration.h"
#include "policy/labels.h"
#include "policy/notification.h"
#include "policy/percolation.h"
#include "tests/testing/db_fixture.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;

/// Policies are independent layers over the same trigger/primitive surface;
/// these tests run several at once and check they compose.
class PolicyInterplayTest : public DatabaseFixture {
 protected:
  void SetUp() override {
    DatabaseFixture::SetUp();
    SetUpRawType();
  }
};

TEST_F(PolicyInterplayTest, NotifierSeesPercolatedVersions) {
  PercolationPolicy percolation(*db_);
  ChangeNotifier notifier(*db_);

  VersionId component = MustPnew("component");
  VersionId composite = MustPnew("composite");
  percolation.Declare(component.oid, composite.oid);

  std::vector<VersionId> notified;
  notifier.Subscribe(composite.oid, [&](const ChangeNotifier::Event& event) {
    if (event.kind == TriggerEvent::kNewVersion) {
      notified.push_back(event.vid);
    }
  });

  // One user action -> a percolated version of the composite -> one
  // notification for the composite's subscriber.
  ASSERT_TRUE(db_->NewVersionOf(component.oid).ok());
  ASSERT_EQ(notified.size(), 1u);
  EXPECT_EQ(notified[0].oid, composite.oid);
}

TEST_F(PolicyInterplayTest, PercolatedVersionsCanCarryLabels) {
  PercolationPolicy percolation(*db_);
  auto labels_or = VersionLabels::Open(*db_);
  ASSERT_TRUE(labels_or.ok());
  VersionLabels& labels = **labels_or;

  VersionId component = MustPnew("component");
  VersionId composite = MustPnew("composite");
  percolation.Declare(component.oid, composite.oid);

  // A trigger labels every percolated version "auto".
  db_->RegisterTrigger(
      TriggerEvent::kNewVersion, [&](Database&, const TriggerInfo& info) {
        if (info.vid.oid == composite.oid) {
          ASSERT_TRUE(labels.Add(info.vid, "auto").ok());
        }
      });
  ASSERT_TRUE(db_->NewVersionOf(component.oid).ok());
  auto tagged = labels.VersionsOfWith(composite.oid, "auto");
  ASSERT_EQ(tagged.size(), 1u);
  EXPECT_EQ(tagged[0].vnum, 2u);
}

TEST_F(PolicyInterplayTest, ConfigurationTracksPercolatedComposites) {
  // A dynamic configuration binding to a composite follows the versions the
  // percolation policy creates — the two policies combine into "release
  // configurations that advance when any part changes".
  PercolationPolicy percolation(*db_);
  VersionId part = MustPnew("part");
  VersionId assembly = MustPnew("assembly");
  percolation.Declare(part.oid, assembly.oid);

  auto config = Configuration::Create(*db_, "product");
  ASSERT_TRUE(config.ok());
  ASSERT_OK(config->BindDynamic("assembly", assembly.oid));

  ASSERT_TRUE(db_->NewVersionOf(part.oid).ok());  // Percolates to assembly.
  auto resolved = config->Resolve("assembly");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->vnum, 2u);
}

TEST_F(PolicyInterplayTest, AbortRollsBackAcrossPolicies) {
  // A grouped transaction that spans percolation and label writes aborts as
  // one unit: nothing leaks.
  PercolationPolicy percolation(*db_);
  auto labels_or = VersionLabels::Open(*db_);
  ASSERT_TRUE(labels_or.ok());
  VersionLabels& labels = **labels_or;

  VersionId component = MustPnew("component");
  VersionId composite = MustPnew("composite");
  percolation.Declare(component.oid, composite.oid);

  ASSERT_OK(db_->Begin());
  auto vid = db_->NewVersionOf(component.oid);
  ASSERT_TRUE(vid.ok());
  ASSERT_OK(labels.Add(*vid, "doomed"));
  ASSERT_OK(db_->Abort());

  // The database rolled back; the in-memory percolation counter keeps its
  // session tally (documented), but no versions exist.
  auto header = db_->Header(composite.oid);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->version_count, 1u);
  auto component_header = db_->Header(component.oid);
  ASSERT_TRUE(component_header.ok());
  EXPECT_EQ(component_header->version_count, 1u);
  // Label state object rolled back too; the in-memory map may briefly
  // disagree until reloaded — reopen the policy to resync.
  labels_or->reset();
  auto fresh = VersionLabels::Open(*db_);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE((*fresh)->VersionsWith("doomed").empty());
}

}  // namespace
}  // namespace ode
