#include "policy/context.h"

#include <gtest/gtest.h>

#include "tests/testing/db_fixture.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;

class ContextTest : public DatabaseFixture {
 protected:
  void SetUp() override {
    DatabaseFixture::SetUp();
    SetUpRawType();
  }
};

TEST_F(ContextTest, DefaultVersionOverridesLatest) {
  VersionId v1 = MustPnew("v1");
  auto v2 = db_->NewVersionOf(v1.oid);
  ASSERT_TRUE(v2.ok());
  ASSERT_OK(db_->UpdateVersion(*v2, Slice("v2")));

  auto context = Context::Create(*db_, "stable");
  ASSERT_TRUE(context.ok());
  ASSERT_OK(context->SetDefault(v1));

  ContextStack stack(db_.get());
  stack.Push(*context);
  auto resolved = stack.Resolve(v1.oid);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, v1);
  auto read = stack.Read(v1.oid);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "v1");
}

TEST_F(ContextTest, FallsBackToLatestWithoutDefault) {
  VersionId v1 = MustPnew("v1");
  auto v2 = db_->NewVersionOf(v1.oid);
  ASSERT_TRUE(v2.ok());
  ContextStack stack(db_.get());
  auto resolved = stack.Resolve(v1.oid);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, *v2);
}

TEST_F(ContextTest, TopOfStackWins) {
  VersionId v1 = MustPnew("v1");
  auto v2 = db_->NewVersionOf(v1.oid);
  auto v3 = db_->NewVersionOf(v1.oid);
  ASSERT_TRUE(v2.ok() && v3.ok());

  auto base = Context::Create(*db_, "base");
  auto overlay = Context::Create(*db_, "overlay");
  ASSERT_TRUE(base.ok() && overlay.ok());
  ASSERT_OK(base->SetDefault(v1));
  ASSERT_OK(overlay->SetDefault(*v2));

  ContextStack stack(db_.get());
  stack.Push(*base);
  stack.Push(*overlay);
  auto resolved = stack.Resolve(v1.oid);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, *v2);
  stack.Pop();
  resolved = stack.Resolve(v1.oid);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, v1);
}

TEST_F(ContextTest, StaleDefaultFallsThrough) {
  VersionId v1 = MustPnew("v1");
  auto v2 = db_->NewVersionOf(v1.oid);
  ASSERT_TRUE(v2.ok());
  auto context = Context::Create(*db_, "c");
  ASSERT_TRUE(context.ok());
  ASSERT_OK(context->SetDefault(*v2));
  ContextStack stack(db_.get());
  stack.Push(*context);
  ASSERT_OK(db_->PdeleteVersion(*v2));  // The default vanishes.
  auto resolved = stack.Resolve(v1.oid);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, v1);  // Fell back to the (new) latest.
}

TEST_F(ContextTest, SetDefaultRequiresExistingVersion) {
  auto context = Context::Create(*db_, "c");
  ASSERT_TRUE(context.ok());
  EXPECT_TRUE(
      context->SetDefault(VersionId{ObjectId{777}, 1}).IsNotFound());
}

TEST_F(ContextTest, ClearDefault) {
  VersionId v1 = MustPnew("v1");
  auto v2 = db_->NewVersionOf(v1.oid);
  ASSERT_TRUE(v2.ok());
  auto context = Context::Create(*db_, "c");
  ASSERT_TRUE(context.ok());
  ASSERT_OK(context->SetDefault(v1));
  ASSERT_OK(context->ClearDefault(v1.oid));
  EXPECT_FALSE(context->DefaultFor(v1.oid).has_value());
  EXPECT_TRUE(context->ClearDefault(v1.oid).IsNotFound());
  ContextStack stack(db_.get());
  stack.Push(*context);
  auto resolved = stack.Resolve(v1.oid);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, *v2);
}

TEST_F(ContextTest, ContextsPersist) {
  VersionId v1 = MustPnew("v1");
  ASSERT_TRUE(db_->NewVersionOf(v1.oid).ok());
  ObjectId context_oid;
  {
    auto context = Context::Create(*db_, "team-defaults");
    ASSERT_TRUE(context.ok());
    ASSERT_OK(context->SetDefault(v1));
    context_oid = context->oid();
  }
  ReopenDb();
  auto context = Context::Load(*db_, context_oid);
  ASSERT_TRUE(context.ok()) << context.status();
  EXPECT_EQ(context->name(), "team-defaults");
  EXPECT_EQ(context->DefaultFor(v1.oid).value(), v1.vnum);
}

TEST_F(ContextTest, MultipleObjectsInOneContext) {
  VersionId a1 = MustPnew("a1");
  VersionId b1 = MustPnew("b1");
  ASSERT_TRUE(db_->NewVersionOf(a1.oid).ok());
  ASSERT_TRUE(db_->NewVersionOf(b1.oid).ok());
  auto context = Context::Create(*db_, "c");
  ASSERT_TRUE(context.ok());
  ASSERT_OK(context->SetDefault(a1));
  // Only `a` has a default; `b` resolves to latest.
  ContextStack stack(db_.get());
  stack.Push(*context);
  auto ra = stack.Resolve(a1.oid);
  auto rb = stack.Resolve(b1.oid);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra->vnum, a1.vnum);
  EXPECT_EQ(rb->vnum, b1.vnum + 1);
  EXPECT_EQ(context->size(), 1u);
}

}  // namespace
}  // namespace ode
