#include "policy/labels.h"

#include <gtest/gtest.h>

#include "tests/testing/db_fixture.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;

class LabelsTest : public DatabaseFixture {
 protected:
  void SetUp() override {
    DatabaseFixture::SetUp();
    SetUpRawType();
    auto labels = VersionLabels::Open(*db_);
    ASSERT_TRUE(labels.ok()) << labels.status();
    labels_ = std::move(*labels);
  }

  std::unique_ptr<VersionLabels> labels_;
};

TEST_F(LabelsTest, AddAndQuery) {
  VersionId v0 = MustPnew("x");
  ASSERT_OK(labels_->Add(v0, "validated"));
  EXPECT_TRUE(labels_->Has(v0, "validated"));
  EXPECT_FALSE(labels_->Has(v0, "released"));
  EXPECT_EQ(labels_->LabelsOf(v0), std::vector<std::string>{"validated"});
}

TEST_F(LabelsTest, AddIsIdempotent) {
  VersionId v0 = MustPnew("x");
  ASSERT_OK(labels_->Add(v0, "valid"));
  ASSERT_OK(labels_->Add(v0, "valid"));
  EXPECT_EQ(labels_->LabelsOf(v0).size(), 1u);
}

TEST_F(LabelsTest, AddToMissingVersionFails) {
  EXPECT_TRUE(labels_->Add(VersionId{ObjectId{999}, 1}, "x").IsNotFound());
}

TEST_F(LabelsTest, RemoveLabel) {
  VersionId v0 = MustPnew("x");
  ASSERT_OK(labels_->Add(v0, "in-progress"));
  ASSERT_OK(labels_->Remove(v0, "in-progress"));
  EXPECT_FALSE(labels_->Has(v0, "in-progress"));
  EXPECT_TRUE(labels_->Remove(v0, "in-progress").IsNotFound());
}

TEST_F(LabelsTest, VersionsWithPartitionsTheSet) {
  VersionId a = MustPnew("a");
  auto a2 = db_->NewVersionOf(a.oid);
  VersionId b = MustPnew("b");
  ASSERT_TRUE(a2.ok());
  ASSERT_OK(labels_->Add(a, "valid"));
  ASSERT_OK(labels_->Add(*a2, "in-progress"));
  ASSERT_OK(labels_->Add(b, "valid"));
  auto valid = labels_->VersionsWith("valid");
  EXPECT_EQ(valid, (std::vector<VersionId>{a, b}));
  auto wip = labels_->VersionsWith("in-progress");
  EXPECT_EQ(wip, (std::vector<VersionId>{*a2}));
}

TEST_F(LabelsTest, VersionsOfWithScopesToObject) {
  VersionId a = MustPnew("a");
  auto a2 = db_->NewVersionOf(a.oid);
  VersionId b = MustPnew("b");
  ASSERT_TRUE(a2.ok());
  ASSERT_OK(labels_->Add(a, "valid"));
  ASSERT_OK(labels_->Add(*a2, "valid"));
  ASSERT_OK(labels_->Add(b, "valid"));
  auto a_valid = labels_->VersionsOfWith(a.oid, "valid");
  EXPECT_EQ(a_valid, (std::vector<VersionId>{a, *a2}));
}

TEST_F(LabelsTest, DeletingVersionDropsItsLabels) {
  VersionId v0 = MustPnew("x");
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  ASSERT_OK(labels_->Add(v0, "valid"));
  ASSERT_OK(labels_->Add(*v1, "valid"));
  ASSERT_OK(db_->PdeleteVersion(v0));
  EXPECT_FALSE(labels_->Has(v0, "valid"));
  EXPECT_TRUE(labels_->Has(*v1, "valid"));
  EXPECT_EQ(labels_->VersionsWith("valid").size(), 1u);
}

TEST_F(LabelsTest, DeletingObjectDropsAllItsLabels) {
  VersionId v0 = MustPnew("x");
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  ASSERT_OK(labels_->Add(v0, "valid"));
  ASSERT_OK(labels_->Add(*v1, "effective"));
  ASSERT_OK(db_->PdeleteObject(v0.oid));
  EXPECT_TRUE(labels_->VersionsWith("valid").empty());
  EXPECT_TRUE(labels_->VersionsWith("effective").empty());
}

TEST_F(LabelsTest, LabelsPersistAcrossReopen) {
  VersionId v0 = MustPnew("x");
  ASSERT_OK(labels_->Add(v0, "released"));
  labels_.reset();
  ReopenDb();
  auto labels = VersionLabels::Open(*db_);
  ASSERT_TRUE(labels.ok());
  EXPECT_TRUE((*labels)->Has(v0, "released"));
}

TEST_F(LabelsTest, MultipleLabelsPerVersion) {
  VersionId v0 = MustPnew("x");
  ASSERT_OK(labels_->Add(v0, "valid"));
  ASSERT_OK(labels_->Add(v0, "effective"));
  ASSERT_OK(labels_->Add(v0, "released"));
  auto tags = labels_->LabelsOf(v0);
  EXPECT_EQ(tags, (std::vector<std::string>{"effective", "released", "valid"}));
}

}  // namespace
}  // namespace ode
