#include "policy/notification.h"

#include <gtest/gtest.h>

#include "tests/testing/db_fixture.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;

class NotificationTest : public DatabaseFixture {
 protected:
  void SetUp() override {
    DatabaseFixture::SetUp();
    SetUpRawType();
  }
};

TEST_F(NotificationTest, ObjectSubscriberSeesItsChanges) {
  ChangeNotifier notifier(*db_);
  VersionId target = MustPnew("watched");
  VersionId other = MustPnew("unwatched");

  std::vector<ChangeNotifier::Event> events;
  notifier.Subscribe(target.oid, [&](const ChangeNotifier::Event& event) {
    events.push_back(event);
  });

  ASSERT_TRUE(db_->NewVersionOf(target.oid).ok());
  ASSERT_OK(db_->UpdateLatest(target.oid, Slice("changed")));
  ASSERT_TRUE(db_->NewVersionOf(other.oid).ok());  // Not watched.

  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, TriggerEvent::kNewVersion);
  EXPECT_EQ(events[0].derived_from, target);
  EXPECT_EQ(events[1].kind, TriggerEvent::kUpdate);
}

TEST_F(NotificationTest, TypeSubscriberSeesAllObjectsOfType) {
  ChangeNotifier notifier(*db_);
  int count = 0;
  notifier.SubscribeType(type_id_,
                         [&](const ChangeNotifier::Event&) { ++count; });
  VersionId a = MustPnew("a");  // kPnew fires.
  ASSERT_TRUE(db_->NewVersionOf(a.oid).ok());
  VersionId b = MustPnew("b");
  ASSERT_OK(db_->PdeleteObject(b.oid));
  EXPECT_EQ(count, 4);  // pnew, newversion, pnew, delete-object.
}

TEST_F(NotificationTest, UnsubscribeStopsDelivery) {
  ChangeNotifier notifier(*db_);
  VersionId target = MustPnew("x");
  int count = 0;
  uint64_t handle = notifier.Subscribe(
      target.oid, [&](const ChangeNotifier::Event&) { ++count; });
  ASSERT_TRUE(db_->NewVersionOf(target.oid).ok());
  notifier.Unsubscribe(handle);
  ASSERT_TRUE(db_->NewVersionOf(target.oid).ok());
  EXPECT_EQ(count, 1);
}

TEST_F(NotificationTest, DeliveredCountAccumulates) {
  ChangeNotifier notifier(*db_);
  VersionId target = MustPnew("x");
  notifier.Subscribe(target.oid, [](const ChangeNotifier::Event&) {});
  notifier.SubscribeType(type_id_, [](const ChangeNotifier::Event&) {});
  ASSERT_TRUE(db_->NewVersionOf(target.oid).ok());
  EXPECT_EQ(notifier.delivered_count(), 2u);  // Both subscribers hit.
  EXPECT_EQ(notifier.subscriber_count(), 2u);
}

TEST_F(NotificationTest, DestructionUnhooksTriggers) {
  VersionId target = MustPnew("x");
  int count = 0;
  {
    ChangeNotifier notifier(*db_);
    notifier.Subscribe(target.oid,
                       [&](const ChangeNotifier::Event&) { ++count; });
    ASSERT_TRUE(db_->NewVersionOf(target.oid).ok());
  }
  // Notifier gone: further changes deliver nothing (and don't crash).
  ASSERT_TRUE(db_->NewVersionOf(target.oid).ok());
  EXPECT_EQ(count, 1);
}

TEST_F(NotificationTest, DeleteEventsReachObjectSubscribers) {
  ChangeNotifier notifier(*db_);
  VersionId v0 = MustPnew("x");
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  std::vector<TriggerEvent> kinds;
  notifier.Subscribe(v0.oid, [&](const ChangeNotifier::Event& event) {
    kinds.push_back(event.kind);
  });
  ASSERT_OK(db_->PdeleteVersion(*v1));
  ASSERT_OK(db_->PdeleteObject(v0.oid));
  ASSERT_EQ(kinds.size(), 2u);
  EXPECT_EQ(kinds[0], TriggerEvent::kDeleteVersion);
  EXPECT_EQ(kinds[1], TriggerEvent::kDeleteObject);
}

}  // namespace
}  // namespace ode
