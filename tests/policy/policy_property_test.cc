#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/check.h"
#include "policy/checkout.h"
#include "policy/labels.h"
#include "tests/testing/db_fixture.h"
#include "util/random.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;
using VersionState = CheckoutManager::VersionState;

/// Randomized multi-user checkout workflow checked against an in-memory
/// model of the ORION state machine (transient -> working -> released).
class CheckoutPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CheckoutPropertyTest, WorkflowMatchesStateMachine) {
  MemEnv env;
  LogicalClock clock;
  DatabaseOptions options;
  options.storage.env = &env;
  options.storage.path = "/db";
  options.clock = &clock;
  auto db_or = Database::Open(options);
  ASSERT_TRUE(db_or.ok());
  Database& db = **db_or;
  auto type = db.RegisterType("raw");
  ASSERT_TRUE(type.ok());
  auto manager_or = CheckoutManager::Open(db);
  ASSERT_TRUE(manager_or.ok());
  CheckoutManager& manager = *manager_or;

  Random rng(GetParam());
  const std::vector<std::string> users = {"alice", "bob", "carol"};

  struct ModelEntry {
    VersionState state;
    std::string owner;
  };
  std::map<VersionId, ModelEntry> model;  // Labeled versions only.
  std::vector<VersionId> all_versions;

  // Seed released versions.
  for (int i = 0; i < 3; ++i) {
    auto vid = db.PnewRaw(*type, Slice("design " + std::to_string(i)));
    ASSERT_TRUE(vid.ok());
    all_versions.push_back(*vid);
  }

  auto model_state = [&](VersionId vid) {
    auto it = model.find(vid);
    return it == model.end() ? VersionState::kReleased : it->second.state;
  };

  for (int op = 0; op < 300; ++op) {
    const VersionId target =
        all_versions[rng.Uniform(all_versions.size())];
    const std::string& user = users[rng.Uniform(users.size())];
    switch (rng.Uniform(4)) {
      case 0: {  // Checkout.
        auto result = manager.Checkout(target, user);
        if (model_state(target) == VersionState::kTransient) {
          EXPECT_FALSE(result.ok());
        } else {
          ASSERT_TRUE(result.ok()) << result.status();
          model[*result] = ModelEntry{VersionState::kTransient, user};
          all_versions.push_back(*result);
        }
        break;
      }
      case 1: {  // Write.
        Status s = manager.Write(target, user, Slice("edit by " + user));
        const auto it = model.find(target);
        const bool allowed = it != model.end() &&
                             it->second.state != VersionState::kReleased &&
                             it->second.owner == user;
        EXPECT_EQ(s.ok(), allowed) << s;
        break;
      }
      case 2: {  // Checkin.
        Status s = manager.Checkin(target, user);
        const auto it = model.find(target);
        const bool allowed = it != model.end() &&
                             it->second.state == VersionState::kTransient &&
                             it->second.owner == user;
        EXPECT_EQ(s.ok(), allowed) << s;
        if (allowed) it->second.state = VersionState::kWorking;
        break;
      }
      case 3: {  // Promote.
        Status s = manager.Promote(target);
        const auto it = model.find(target);
        const bool allowed =
            it != model.end() && it->second.state == VersionState::kWorking;
        EXPECT_EQ(s.ok(), allowed) << s;
        if (allowed) model.erase(it);
        break;
      }
    }
  }

  // Full-state comparison.
  for (VersionId vid : all_versions) {
    auto state = manager.StateOf(vid);
    ASSERT_TRUE(state.ok());
    EXPECT_EQ(*state, model_state(vid)) << vid;
  }
  // Per-user checkout listings match the model.
  for (const std::string& user : users) {
    std::set<VersionId> expected;
    for (const auto& [vid, entry] : model) {
      if (entry.state == VersionState::kTransient && entry.owner == user) {
        expected.insert(vid);
      }
    }
    auto actual_list = manager.CheckoutsOf(user);
    std::set<VersionId> actual(actual_list.begin(), actual_list.end());
    EXPECT_EQ(actual, expected) << user;
  }
  // And the database stayed structurally consistent (ignore the manager's
  // own state object by checking everything).
  auto report = CheckDatabase(db);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->errors.front();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckoutPropertyTest,
                         ::testing::Values(1001, 1002, 1003));

/// Randomized labels vs a reference model, under interleaved deletion.
TEST(LabelsPropertyTest, MatchesModelUnderChurn) {
  MemEnv env;
  LogicalClock clock;
  DatabaseOptions options;
  options.storage.env = &env;
  options.storage.path = "/db";
  options.clock = &clock;
  auto db_or = Database::Open(options);
  ASSERT_TRUE(db_or.ok());
  Database& db = **db_or;
  auto type = db.RegisterType("raw");
  ASSERT_TRUE(type.ok());
  auto labels_or = VersionLabels::Open(db);
  ASSERT_TRUE(labels_or.ok());
  VersionLabels& labels = **labels_or;

  Random rng(555);
  const std::vector<std::string> tag_pool = {"valid", "invalid", "wip"};
  std::map<VersionId, std::set<std::string>> model;
  std::vector<VersionId> live;

  for (int op = 0; op < 400; ++op) {
    const int action = static_cast<int>(rng.Uniform(10));
    if (live.empty() || action < 3) {
      auto vid = db.PnewRaw(*type, Slice("x"));
      ASSERT_TRUE(vid.ok());
      live.push_back(*vid);
    } else if (action < 6) {
      VersionId target = live[rng.Uniform(live.size())];
      const std::string& tag = tag_pool[rng.Uniform(tag_pool.size())];
      ASSERT_OK(labels.Add(target, tag));
      model[target].insert(tag);
    } else if (action < 8) {
      VersionId target = live[rng.Uniform(live.size())];
      const std::string& tag = tag_pool[rng.Uniform(tag_pool.size())];
      Status s = labels.Remove(target, tag);
      EXPECT_EQ(s.ok(), model[target].erase(tag) > 0);
    } else {
      const size_t idx = rng.Uniform(live.size());
      VersionId target = live[idx];
      ASSERT_OK(db.PdeleteVersion(target));
      model.erase(target);
      live.erase(live.begin() + idx);
    }
  }
  for (VersionId vid : live) {
    std::vector<std::string> expected(model[vid].begin(), model[vid].end());
    EXPECT_EQ(labels.LabelsOf(vid), expected) << vid;
  }
}

}  // namespace
}  // namespace ode
