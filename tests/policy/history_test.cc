#include "policy/history.h"

#include <gtest/gtest.h>

#include "tests/testing/db_fixture.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;

class HistoryTest : public DatabaseFixture {
 protected:
  void SetUp() override {
    DatabaseFixture::SetUp();
    SetUpRawType();
  }

  // Builds: v1 -> {v2, v3}; v2 -> {v4}; v3 -> {v5, v6}.
  void BuildTree() {
    v1_ = MustPnew("v1");
    v2_ = *db_->NewVersionFrom(v1_);
    v3_ = *db_->NewVersionFrom(v1_);
    v4_ = *db_->NewVersionFrom(v2_);
    v5_ = *db_->NewVersionFrom(v3_);
    v6_ = *db_->NewVersionFrom(v3_);
  }

  VersionId v1_, v2_, v3_, v4_, v5_, v6_;
};

TEST_F(HistoryTest, PathToRootFollowsDerivation) {
  BuildTree();
  auto path = history::PathToRoot(*db_, v5_);
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->size(), 3u);
  EXPECT_EQ((*path)[0], v5_);
  EXPECT_EQ((*path)[1], v3_);
  EXPECT_EQ((*path)[2], v1_);
}

TEST_F(HistoryTest, PathToRootOfRootIsItself) {
  BuildTree();
  auto path = history::PathToRoot(*db_, v1_);
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->size(), 1u);
  EXPECT_EQ((*path)[0], v1_);
}

TEST_F(HistoryTest, LeavesAreUpToDateAlternatives) {
  BuildTree();
  auto leaves = history::Leaves(*db_, v1_.oid);
  ASSERT_TRUE(leaves.ok());
  EXPECT_EQ(*leaves, (std::vector<VersionId>{v4_, v5_, v6_}));
}

TEST_F(HistoryTest, RootsFindsDerivationRoots) {
  BuildTree();
  auto roots = history::Roots(*db_, v1_.oid);
  ASSERT_TRUE(roots.ok());
  ASSERT_EQ(roots->size(), 1u);
  EXPECT_EQ((*roots)[0], v1_);
  // Deleting the root splits the forest into two roots.
  ASSERT_OK(db_->PdeleteVersion(v1_));
  roots = history::Roots(*db_, v1_.oid);
  ASSERT_TRUE(roots.ok());
  EXPECT_EQ(*roots, (std::vector<VersionId>{v2_, v3_}));
}

TEST_F(HistoryTest, AlternativesAreSiblings) {
  BuildTree();
  auto alts = history::Alternatives(*db_, v5_);
  ASSERT_TRUE(alts.ok());
  ASSERT_EQ(alts->size(), 1u);
  EXPECT_EQ((*alts)[0], v6_);
  auto v2_alts = history::Alternatives(*db_, v2_);
  ASSERT_TRUE(v2_alts.ok());
  ASSERT_EQ(v2_alts->size(), 1u);
  EXPECT_EQ((*v2_alts)[0], v3_);
}

TEST_F(HistoryTest, CommonAncestor) {
  BuildTree();
  auto ancestor = history::CommonAncestor(*db_, v4_, v6_);
  ASSERT_TRUE(ancestor.ok());
  ASSERT_TRUE(ancestor->has_value());
  EXPECT_EQ(ancestor->value(), v1_);
  auto near = history::CommonAncestor(*db_, v5_, v6_);
  ASSERT_TRUE(near.ok());
  EXPECT_EQ(near->value(), v3_);
  // A version is its own ancestor.
  auto self = history::CommonAncestor(*db_, v3_, v5_);
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(self->value(), v3_);
}

TEST_F(HistoryTest, CommonAncestorAcrossObjectsRejected) {
  VersionId a = MustPnew("a");
  VersionId b = MustPnew("b");
  EXPECT_TRUE(history::CommonAncestor(*db_, a, b).status().IsInvalidArgument());
}

TEST_F(HistoryTest, NoCommonAncestorAfterRootDeletion) {
  BuildTree();
  ASSERT_OK(db_->PdeleteVersion(v1_));  // v2 and v3 become separate roots.
  auto ancestor = history::CommonAncestor(*db_, v4_, v5_);
  ASSERT_TRUE(ancestor.ok());
  EXPECT_FALSE(ancestor->has_value());
}

TEST_F(HistoryTest, DepthCountsEdges) {
  BuildTree();
  auto d1 = history::Depth(*db_, v1_);
  auto d5 = history::Depth(*db_, v5_);
  ASSERT_TRUE(d1.ok() && d5.ok());
  EXPECT_EQ(*d1, 0u);
  EXPECT_EQ(*d5, 2u);
}

TEST_F(HistoryTest, CollectBuildsFullGraph) {
  BuildTree();
  auto graph = history::Collect(*db_, v1_.oid);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->latest, v6_);
  ASSERT_EQ(graph->forest.size(), 1u);
  const auto& root = graph->forest[0];
  EXPECT_EQ(root.vid, v1_);
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].vid, v2_);
  EXPECT_EQ(root.children[1].vid, v3_);
  EXPECT_EQ(root.children[1].children.size(), 2u);
  EXPECT_EQ(graph->temporal_order.size(), 6u);
}

TEST_F(HistoryTest, NthDpreviousWalksDerivation) {
  BuildTree();
  auto two_back = history::NthDprevious(*db_, v4_, 2);
  ASSERT_TRUE(two_back.ok());
  EXPECT_EQ(two_back->value(), v1_);
  auto zero = history::NthDprevious(*db_, v4_, 0);
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero->value(), v4_);
  auto too_far = history::NthDprevious(*db_, v4_, 5);
  ASSERT_TRUE(too_far.ok());
  EXPECT_FALSE(too_far->has_value());
}

TEST_F(HistoryTest, NthTpreviousWalksTemporalChain) {
  BuildTree();
  auto three_back = history::NthTprevious(*db_, v6_, 3);
  ASSERT_TRUE(three_back.ok());
  EXPECT_EQ(three_back->value(), v3_);
  auto too_far = history::NthTprevious(*db_, v6_, 6);
  ASSERT_TRUE(too_far.ok());
  EXPECT_FALSE(too_far->has_value());
}

TEST_F(HistoryTest, RenderShowsTreeAndChain) {
  VersionId v0 = MustPnew("x");
  ASSERT_TRUE(db_->NewVersionFrom(v0).ok());
  auto rendered = history::RenderGraph(*db_, v0.oid);
  ASSERT_TRUE(rendered.ok());
  EXPECT_NE(rendered->find("derived-from tree:"), std::string::npos);
  EXPECT_NE(rendered->find("temporal chain: v1 -> v2"), std::string::npos);
  EXPECT_NE(rendered->find("latest: v2"), std::string::npos);
}

}  // namespace
}  // namespace ode
