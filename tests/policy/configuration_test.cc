#include "policy/configuration.h"

#include <gtest/gtest.h>

#include "tests/testing/db_fixture.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;

class ConfigurationTest : public DatabaseFixture {
 protected:
  void SetUp() override {
    DatabaseFixture::SetUp();
    SetUpRawType();
  }
};

TEST_F(ConfigurationTest, CreateAndResolveStatic) {
  VersionId part = MustPnew("part v1");
  auto config = Configuration::Create(*db_, "board");
  ASSERT_TRUE(config.ok());
  ASSERT_OK(config->BindStatic("cpu", part));
  auto resolved = config->Resolve("cpu");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, part);
}

TEST_F(ConfigurationTest, StaticBindingIgnoresNewVersions) {
  VersionId part = MustPnew("part v1");
  auto config = Configuration::Create(*db_, "board");
  ASSERT_TRUE(config.ok());
  ASSERT_OK(config->BindStatic("cpu", part));
  ASSERT_TRUE(db_->NewVersionOf(part.oid).ok());
  auto resolved = config->Resolve("cpu");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, part);  // Still the pinned version.
}

TEST_F(ConfigurationTest, DynamicBindingTracksLatest) {
  VersionId part = MustPnew("part v1");
  auto config = Configuration::Create(*db_, "board");
  ASSERT_TRUE(config.ok());
  ASSERT_OK(config->BindDynamic("cpu", part.oid));
  auto v2 = db_->NewVersionOf(part.oid);
  ASSERT_TRUE(v2.ok());
  auto resolved = config->Resolve("cpu");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, *v2);
}

TEST_F(ConfigurationTest, BindingMissingTargetsFails) {
  auto config = Configuration::Create(*db_, "c");
  ASSERT_TRUE(config.ok());
  EXPECT_TRUE(
      config->BindStatic("x", VersionId{ObjectId{9999}, 1}).IsNotFound());
  EXPECT_TRUE(config->BindDynamic("x", ObjectId{9999}).IsNotFound());
}

TEST_F(ConfigurationTest, ResolveUnboundComponentFails) {
  auto config = Configuration::Create(*db_, "c");
  ASSERT_TRUE(config.ok());
  EXPECT_TRUE(config->Resolve("nope").status().IsNotFound());
}

TEST_F(ConfigurationTest, UnbindRemovesComponent) {
  VersionId part = MustPnew("p");
  auto config = Configuration::Create(*db_, "c");
  ASSERT_TRUE(config.ok());
  ASSERT_OK(config->BindStatic("x", part));
  ASSERT_OK(config->Unbind("x"));
  EXPECT_TRUE(config->Resolve("x").status().IsNotFound());
  EXPECT_TRUE(config->Unbind("x").IsNotFound());
}

TEST_F(ConfigurationTest, ResolveAllMixedBindings) {
  VersionId a = MustPnew("a");
  VersionId b = MustPnew("b");
  auto config = Configuration::Create(*db_, "c");
  ASSERT_TRUE(config.ok());
  ASSERT_OK(config->BindStatic("fixed", a));
  ASSERT_OK(config->BindDynamic("moving", b.oid));
  auto b2 = db_->NewVersionOf(b.oid);
  ASSERT_TRUE(b2.ok());
  auto all = config->ResolveAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->at("fixed"), a);
  EXPECT_EQ(all->at("moving"), *b2);
}

TEST_F(ConfigurationTest, FreezePinsDynamicBindings) {
  VersionId part = MustPnew("p");
  auto config = Configuration::Create(*db_, "release-1.0");
  ASSERT_TRUE(config.ok());
  ASSERT_OK(config->BindDynamic("cpu", part.oid));
  auto v2 = db_->NewVersionOf(part.oid);
  ASSERT_TRUE(v2.ok());
  ASSERT_OK(config->Freeze());
  // New versions after the freeze do not move the binding.
  ASSERT_TRUE(db_->NewVersionOf(part.oid).ok());
  auto resolved = config->Resolve("cpu");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, *v2);
}

TEST_F(ConfigurationTest, ConfigurationsArePersistent) {
  VersionId part = MustPnew("p");
  ObjectId config_oid;
  {
    auto config = Configuration::Create(*db_, "durable");
    ASSERT_TRUE(config.ok());
    ASSERT_OK(config->BindStatic("cpu", part));
    config_oid = config->oid();
  }
  ReopenDb();
  auto config = Configuration::Load(*db_, config_oid);
  ASSERT_TRUE(config.ok()) << config.status();
  EXPECT_EQ(config->name(), "durable");
  auto resolved = config->Resolve("cpu");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, part);
}

TEST_F(ConfigurationTest, ConfigurationsAreThemselvesVersionable) {
  // Version orthogonality applies to configurations too: snapshot a
  // configuration by taking a new version of it.
  VersionId part = MustPnew("p");
  auto config = Configuration::Create(*db_, "c");
  ASSERT_TRUE(config.ok());
  ASSERT_OK(config->BindStatic("cpu", part));
  auto snapshot = db_->NewVersionOf(config->oid());
  ASSERT_TRUE(snapshot.ok());
  auto versions = db_->VersionsOf(config->oid());
  ASSERT_TRUE(versions.ok());
  EXPECT_EQ(versions->size(), 2u);
}

TEST_F(ConfigurationTest, RebindReplacesExisting) {
  VersionId a = MustPnew("a");
  VersionId b = MustPnew("b");
  auto config = Configuration::Create(*db_, "c");
  ASSERT_TRUE(config.ok());
  ASSERT_OK(config->BindStatic("slot", a));
  ASSERT_OK(config->BindStatic("slot", b));
  auto resolved = config->Resolve("slot");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, b);
  EXPECT_EQ(config->bindings().size(), 1u);
}

}  // namespace
}  // namespace ode
