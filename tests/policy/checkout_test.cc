#include "policy/checkout.h"

#include <gtest/gtest.h>

#include "tests/testing/db_fixture.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;
using VersionState = CheckoutManager::VersionState;

class CheckoutTest : public DatabaseFixture {
 protected:
  void SetUp() override {
    DatabaseFixture::SetUp();
    SetUpRawType();
  }
};

TEST_F(CheckoutTest, CheckoutCreatesTransientDerivedVersion) {
  auto manager = CheckoutManager::Open(*db_);
  ASSERT_TRUE(manager.ok());
  VersionId released = MustPnew("public design");
  auto working = manager->Checkout(released, "alice");
  ASSERT_TRUE(working.ok());
  auto state = manager->StateOf(*working);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, VersionState::kTransient);
  auto owner = manager->OwnerOf(*working);
  ASSERT_TRUE(owner.ok());
  EXPECT_EQ(*owner, "alice");
  // Derived from the released version.
  auto parent = db_->Dprevious(*working);
  ASSERT_TRUE(parent.ok());
  EXPECT_EQ(parent->value(), released);
}

TEST_F(CheckoutTest, UnlabeledVersionsAreReleased) {
  auto manager = CheckoutManager::Open(*db_);
  ASSERT_TRUE(manager.ok());
  VersionId plain = MustPnew("x");
  auto state = manager->StateOf(plain);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, VersionState::kReleased);
  EXPECT_TRUE(manager->OwnerOf(plain).status().IsNotFound());
}

TEST_F(CheckoutTest, OnlyOwnerMayWriteAndCheckin) {
  auto manager = CheckoutManager::Open(*db_);
  ASSERT_TRUE(manager.ok());
  VersionId base = MustPnew("base");
  auto working = manager->Checkout(base, "alice");
  ASSERT_TRUE(working.ok());
  EXPECT_TRUE(manager->Write(*working, "bob", Slice("hijack"))
                  .IsFailedPrecondition());
  EXPECT_TRUE(manager->Checkin(*working, "bob").IsFailedPrecondition());
  ASSERT_OK(manager->Write(*working, "alice", Slice("alice's work")));
  ASSERT_OK(manager->Checkin(*working, "alice"));
  auto state = manager->StateOf(*working);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, VersionState::kWorking);
}

TEST_F(CheckoutTest, ReleasedVersionsAreImmutableThroughManager) {
  auto manager = CheckoutManager::Open(*db_);
  ASSERT_TRUE(manager.ok());
  VersionId released = MustPnew("immutable");
  EXPECT_TRUE(manager->Write(released, "alice", Slice("nope"))
                  .IsFailedPrecondition());
}

TEST_F(CheckoutTest, FullLifecycle) {
  auto manager = CheckoutManager::Open(*db_);
  ASSERT_TRUE(manager.ok());
  VersionId v1 = MustPnew("design v1");
  auto draft = manager->Checkout(v1, "alice");
  ASSERT_TRUE(draft.ok());
  ASSERT_OK(manager->Write(*draft, "alice", Slice("design v2 draft")));
  ASSERT_OK(manager->Checkin(*draft, "alice"));
  ASSERT_OK(manager->Promote(*draft));
  auto state = manager->StateOf(*draft);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, VersionState::kReleased);
  // Released: now immutable, and check-in again is an error.
  EXPECT_TRUE(manager->Write(*draft, "alice", Slice("late edit"))
                  .IsFailedPrecondition());
  EXPECT_TRUE(manager->Checkin(*draft, "alice").IsFailedPrecondition());
  EXPECT_EQ(MustRead(*draft), "design v2 draft");
}

TEST_F(CheckoutTest, PromoteRequiresWorkingState) {
  auto manager = CheckoutManager::Open(*db_);
  ASSERT_TRUE(manager.ok());
  VersionId base = MustPnew("base");
  auto draft = manager->Checkout(base, "alice");
  ASSERT_TRUE(draft.ok());
  EXPECT_TRUE(manager->Promote(*draft).IsFailedPrecondition());  // Transient.
  EXPECT_TRUE(manager->Promote(base).IsFailedPrecondition());    // Released.
}

TEST_F(CheckoutTest, CannotCheckoutAnothersTransient) {
  auto manager = CheckoutManager::Open(*db_);
  ASSERT_TRUE(manager.ok());
  VersionId base = MustPnew("base");
  auto alice_draft = manager->Checkout(base, "alice");
  ASSERT_TRUE(alice_draft.ok());
  EXPECT_TRUE(
      manager->Checkout(*alice_draft, "bob").status().IsFailedPrecondition());
  // But bob can check out the released base in parallel (alternatives).
  auto bob_draft = manager->Checkout(base, "bob");
  ASSERT_TRUE(bob_draft.ok());
  EXPECT_NE(*bob_draft, *alice_draft);
}

TEST_F(CheckoutTest, DiscardDeletesTransientVersion) {
  auto manager = CheckoutManager::Open(*db_);
  ASSERT_TRUE(manager.ok());
  VersionId base = MustPnew("base");
  auto draft = manager->Checkout(base, "alice");
  ASSERT_TRUE(draft.ok());
  ASSERT_OK(manager->DiscardCheckout(*draft, "alice"));
  auto exists = db_->VersionExists(*draft);
  ASSERT_TRUE(exists.ok());
  EXPECT_FALSE(*exists);
  EXPECT_TRUE(manager->CheckoutsOf("alice").empty());
}

TEST_F(CheckoutTest, CheckoutsOfListsUserWork) {
  auto manager = CheckoutManager::Open(*db_);
  ASSERT_TRUE(manager.ok());
  VersionId a = MustPnew("a");
  VersionId b = MustPnew("b");
  auto draft_a = manager->Checkout(a, "alice");
  auto draft_b = manager->Checkout(b, "alice");
  auto draft_c = manager->Checkout(a, "bob");
  ASSERT_TRUE(draft_a.ok() && draft_b.ok() && draft_c.ok());
  auto alice_work = manager->CheckoutsOf("alice");
  EXPECT_EQ(alice_work.size(), 2u);
  auto bob_work = manager->CheckoutsOf("bob");
  EXPECT_EQ(bob_work.size(), 1u);
}

TEST_F(CheckoutTest, StateSurvivesReopen) {
  VersionId base;
  VersionId draft;
  {
    auto manager = CheckoutManager::Open(*db_);
    ASSERT_TRUE(manager.ok());
    base = MustPnew("base");
    auto checked_out = manager->Checkout(base, "alice");
    ASSERT_TRUE(checked_out.ok());
    draft = *checked_out;
  }
  ReopenDb();
  auto manager = CheckoutManager::Open(*db_);
  ASSERT_TRUE(manager.ok()) << manager.status();
  auto state = manager->StateOf(draft);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, VersionState::kTransient);
  auto owner = manager->OwnerOf(draft);
  ASSERT_TRUE(owner.ok());
  EXPECT_EQ(*owner, "alice");
}

}  // namespace
}  // namespace ode
