#include "policy/equivalence.h"

#include <gtest/gtest.h>

#include "tests/testing/db_fixture.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;

class EquivalenceTest : public DatabaseFixture {
 protected:
  void SetUp() override {
    DatabaseFixture::SetUp();
    SetUpRawType();
    auto eq = Equivalences::Open(*db_);
    ASSERT_TRUE(eq.ok()) << eq.status();
    eq_ = std::move(*eq);
  }

  ObjectId NewObject(const std::string& payload) {
    return MustPnew(payload).oid;
  }

  std::unique_ptr<Equivalences> eq_;
};

TEST_F(EquivalenceTest, UnrelatedObjectsAreNotEquivalent) {
  ObjectId a = NewObject("layout view");
  ObjectId b = NewObject("netlist view");
  EXPECT_FALSE(eq_->Equivalent(a, b));
  EXPECT_TRUE(eq_->Equivalent(a, a));  // Reflexive.
  EXPECT_EQ(eq_->ClassOf(a), std::vector<ObjectId>{a});
  EXPECT_TRUE(eq_->ViewsOf(a).empty());
}

TEST_F(EquivalenceTest, RelateMakesEquivalent) {
  ObjectId layout = NewObject("layout");
  ObjectId netlist = NewObject("netlist");
  ASSERT_OK(eq_->Relate(layout, netlist));
  EXPECT_TRUE(eq_->Equivalent(layout, netlist));
  EXPECT_TRUE(eq_->Equivalent(netlist, layout));  // Symmetric.
  EXPECT_EQ(eq_->ViewsOf(layout), std::vector<ObjectId>{netlist});
}

TEST_F(EquivalenceTest, TransitiveClosure) {
  ObjectId a = NewObject("a");
  ObjectId b = NewObject("b");
  ObjectId c = NewObject("c");
  ASSERT_OK(eq_->Relate(a, b));
  ASSERT_OK(eq_->Relate(b, c));
  EXPECT_TRUE(eq_->Equivalent(a, c));
  EXPECT_EQ(eq_->ClassOf(b).size(), 3u);
  EXPECT_EQ(eq_->class_count(), 1u);
}

TEST_F(EquivalenceTest, MergingTwoClasses) {
  ObjectId a = NewObject("a");
  ObjectId b = NewObject("b");
  ObjectId c = NewObject("c");
  ObjectId d = NewObject("d");
  ASSERT_OK(eq_->Relate(a, b));
  ASSERT_OK(eq_->Relate(c, d));
  EXPECT_EQ(eq_->class_count(), 2u);
  ASSERT_OK(eq_->Relate(b, c));
  EXPECT_EQ(eq_->class_count(), 1u);
  EXPECT_TRUE(eq_->Equivalent(a, d));
}

TEST_F(EquivalenceTest, RelateRequiresExistingObjects) {
  ObjectId a = NewObject("a");
  EXPECT_TRUE(eq_->Relate(a, ObjectId{99999}).IsNotFound());
}

TEST_F(EquivalenceTest, RelateIsIdempotent) {
  ObjectId a = NewObject("a");
  ObjectId b = NewObject("b");
  ASSERT_OK(eq_->Relate(a, b));
  ASSERT_OK(eq_->Relate(a, b));
  ASSERT_OK(eq_->Relate(b, a));
  EXPECT_EQ(eq_->ClassOf(a).size(), 2u);
}

TEST_F(EquivalenceTest, DissociateRemovesOneMember) {
  ObjectId a = NewObject("a");
  ObjectId b = NewObject("b");
  ObjectId c = NewObject("c");
  ASSERT_OK(eq_->Relate(a, b));
  ASSERT_OK(eq_->Relate(b, c));
  ASSERT_OK(eq_->Dissociate(b));
  EXPECT_FALSE(eq_->Equivalent(a, b));
  EXPECT_TRUE(eq_->Equivalent(a, c)) << "survivors stay related";
  EXPECT_TRUE(eq_->Dissociate(b).IsNotFound());  // Already out.
}

TEST_F(EquivalenceTest, DissociateCollapsesPairToNothing) {
  ObjectId a = NewObject("a");
  ObjectId b = NewObject("b");
  ASSERT_OK(eq_->Relate(a, b));
  ASSERT_OK(eq_->Dissociate(a));
  EXPECT_FALSE(eq_->Equivalent(a, b));
  EXPECT_EQ(eq_->class_count(), 0u);
}

TEST_F(EquivalenceTest, StatePersistsAcrossReopen) {
  ObjectId a = NewObject("a");
  ObjectId b = NewObject("b");
  ASSERT_OK(eq_->Relate(a, b));
  eq_.reset();
  ReopenDb();
  auto eq = Equivalences::Open(*db_);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE((*eq)->Equivalent(a, b));
}

TEST_F(EquivalenceTest, EquivalentObjectsVersionIndependently) {
  // Views are distinct objects with their own version graphs — equivalence
  // relates identities, not histories.
  ObjectId layout = NewObject("layout v1");
  ObjectId netlist = NewObject("netlist v1");
  ASSERT_OK(eq_->Relate(layout, netlist));
  ASSERT_TRUE(db_->NewVersionOf(layout).ok());
  auto layout_versions = db_->VersionsOf(layout);
  auto netlist_versions = db_->VersionsOf(netlist);
  ASSERT_TRUE(layout_versions.ok() && netlist_versions.ok());
  EXPECT_EQ(layout_versions->size(), 2u);
  EXPECT_EQ(netlist_versions->size(), 1u);
}

}  // namespace
}  // namespace ode
