#ifndef ODE_TESTS_TESTING_UTIL_H_
#define ODE_TESTS_TESTING_UTIL_H_

#include <gtest/gtest.h>

#include "util/status.h"
#include "util/statusor.h"

// Assertion helpers for Status/StatusOr-returning APIs.

#define ASSERT_OK(expr)                                       \
  do {                                                        \
    const ::ode::Status _s = (expr);                          \
    ASSERT_TRUE(_s.ok()) << "status: " << _s.ToString();      \
  } while (0)

#define EXPECT_OK(expr)                                       \
  do {                                                        \
    const ::ode::Status _s = (expr);                          \
    EXPECT_TRUE(_s.ok()) << "status: " << _s.ToString();      \
  } while (0)

/// Evaluates a StatusOr expression, asserting success and assigning the
/// value: ASSERT_OK_AND_ASSIGN(auto db, Database::Open(opts));
#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                           \
  ASSERT_OK_AND_ASSIGN_IMPL(                                       \
      ODE_TEST_CONCAT_(_statusor, __LINE__), lhs, rexpr)

#define ASSERT_OK_AND_ASSIGN_IMPL(var, lhs, rexpr)                 \
  auto var = (rexpr);                                              \
  ASSERT_TRUE(var.ok()) << "status: " << var.status().ToString();  \
  lhs = std::move(var).value()

#define ODE_TEST_CONCAT_(a, b) ODE_TEST_CONCAT_IMPL_(a, b)
#define ODE_TEST_CONCAT_IMPL_(a, b) a##b

#endif  // ODE_TESTS_TESTING_UTIL_H_
