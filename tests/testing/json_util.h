#ifndef ODE_TESTS_TESTING_JSON_UTIL_H_
#define ODE_TESTS_TESTING_JSON_UTIL_H_

#include <cctype>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>

// Minimal JSON checking for tests.  The production tree deliberately has no
// JSON *parser* (util/json.h only writes), so tests validate exported
// documents with this strict recursive-descent checker and probe individual
// values lexically.  Probes assume the writer's compact output ("key":value,
// no spaces) and unique key names within the probed document — both true for
// every document the engine exports.

namespace ode {
namespace testing {

namespace json_internal {

class Checker {
 public:
  explicit Checker(std::string_view s) : s_(s) {}

  bool Check(std::string* error) {
    SkipWs();
    if (!Value()) {
      if (error != nullptr) {
        *error = error_ + " at offset " + std::to_string(i_);
      }
      return false;
    }
    SkipWs();
    if (i_ != s_.size()) {
      if (error != nullptr) {
        *error = "trailing bytes at offset " + std::to_string(i_);
      }
      return false;
    }
    return true;
  }

 private:
  void SkipWs() {
    while (i_ < s_.size() &&
           (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\n' ||
            s_[i_] == '\r')) {
      ++i_;
    }
  }

  bool Fail(const char* what) {
    if (error_.empty()) error_ = what;
    return false;
  }

  bool Literal(std::string_view lit) {
    if (s_.compare(i_, lit.size(), lit) != 0) return Fail("bad literal");
    i_ += lit.size();
    return true;
  }

  bool String() {
    if (i_ >= s_.size() || s_[i_] != '"') return Fail("expected string");
    ++i_;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') {
        ++i_;
        if (i_ >= s_.size()) return Fail("truncated escape");
        const char e = s_[i_];
        if (e == 'u') {
          for (int k = 0; k < 4; ++k) {
            ++i_;
            if (i_ >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[i_]))) {
              return Fail("bad \\u escape");
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return Fail("bad escape");
        }
        ++i_;
      } else if (static_cast<unsigned char>(s_[i_]) < 0x20) {
        return Fail("raw control char in string");
      } else {
        ++i_;
      }
    }
    if (i_ >= s_.size()) return Fail("unterminated string");
    ++i_;  // Closing quote.
    return true;
  }

  bool Number() {
    const size_t start = i_;
    if (i_ < s_.size() && s_[i_] == '-') ++i_;
    if (i_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[i_]))) {
      return Fail("expected digit");
    }
    if (s_[i_] == '0') {
      ++i_;
    } else {
      while (i_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[i_]))) {
        ++i_;
      }
    }
    if (i_ < s_.size() && s_[i_] == '.') {
      ++i_;
      if (i_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[i_]))) {
        return Fail("bad fraction");
      }
      while (i_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[i_]))) {
        ++i_;
      }
    }
    if (i_ < s_.size() && (s_[i_] == 'e' || s_[i_] == 'E')) {
      ++i_;
      if (i_ < s_.size() && (s_[i_] == '+' || s_[i_] == '-')) ++i_;
      if (i_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[i_]))) {
        return Fail("bad exponent");
      }
      while (i_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[i_]))) {
        ++i_;
      }
    }
    return i_ > start;
  }

  bool Value() {
    if (++depth_ > 64) return Fail("nesting too deep");
    SkipWs();
    if (i_ >= s_.size()) return Fail("unexpected end");
    bool ok = false;
    switch (s_[i_]) {
      case '{': ok = Object(); break;
      case '[': ok = Array(); break;
      case '"': ok = String(); break;
      case 't': ok = Literal("true"); break;
      case 'f': ok = Literal("false"); break;
      case 'n': ok = Literal("null"); break;
      default: ok = Number(); break;
    }
    --depth_;
    return ok;
  }

  bool Object() {
    ++i_;  // '{'
    SkipWs();
    if (i_ < s_.size() && s_[i_] == '}') { ++i_; return true; }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (i_ >= s_.size() || s_[i_] != ':') return Fail("expected ':'");
      ++i_;
      if (!Value()) return false;
      SkipWs();
      if (i_ < s_.size() && s_[i_] == ',') { ++i_; continue; }
      if (i_ < s_.size() && s_[i_] == '}') { ++i_; return true; }
      return Fail("expected ',' or '}'");
    }
  }

  bool Array() {
    ++i_;  // '['
    SkipWs();
    if (i_ < s_.size() && s_[i_] == ']') { ++i_; return true; }
    for (;;) {
      if (!Value()) return false;
      SkipWs();
      if (i_ < s_.size() && s_[i_] == ',') { ++i_; continue; }
      if (i_ < s_.size() && s_[i_] == ']') { ++i_; return true; }
      return Fail("expected ',' or ']'");
    }
  }

  std::string_view s_;
  size_t i_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace json_internal

/// Strict structural validation of a complete JSON document.
inline bool IsWellFormedJson(std::string_view s, std::string* error = nullptr) {
  return json_internal::Checker(s).Check(error);
}

/// First numeric value keyed `"key":` anywhere in the document, or nullopt.
/// Lexical — safe because exported documents use distinct key names for
/// distinct quantities.
inline std::optional<double> FindJsonNumber(std::string_view json,
                                            std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const size_t pos = json.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  const std::string tail(json.substr(pos + needle.size(), 64));
  char* end = nullptr;
  const double value = std::strtod(tail.c_str(), &end);
  if (end == tail.c_str()) return std::nullopt;
  return value;
}

/// First string value keyed `"key":"..."`, or nullopt.  Escapes are returned
/// verbatim (exported names never contain them).
inline std::optional<std::string> FindJsonString(std::string_view json,
                                                 std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":\"";
  const size_t pos = json.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  const size_t start = pos + needle.size();
  std::string out;
  for (size_t i = start; i < json.size(); ++i) {
    if (json[i] == '\\' && i + 1 < json.size()) {
      out.push_back(json[i]);
      out.push_back(json[++i]);
    } else if (json[i] == '"') {
      return out;
    } else {
      out.push_back(json[i]);
    }
  }
  return std::nullopt;
}

}  // namespace testing
}  // namespace ode

#endif  // ODE_TESTS_TESTING_JSON_UTIL_H_
