#ifndef ODE_TESTS_TESTING_DB_FIXTURE_H_
#define ODE_TESTS_TESTING_DB_FIXTURE_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/database.h"
#include "core/version_ptr.h"
#include "storage/env.h"
#include "tests/testing/util.h"
#include "util/clock.h"

namespace ode {
namespace testing_internal {

/// A simple Persistable type used throughout the core tests.
struct Doc {
  static constexpr char kTypeName[] = "Doc";

  std::string text;
  int64_t revision = 0;

  void Serialize(BufferWriter& w) const {
    w.WriteString(Slice(text));
    w.WriteI64(revision);
  }
  static StatusOr<Doc> Deserialize(BufferReader& r) {
    Doc doc;
    ODE_RETURN_IF_ERROR(r.ReadString(&doc.text));
    ODE_RETURN_IF_ERROR(r.ReadI64(&doc.revision));
    return doc;
  }
  friend bool operator==(const Doc& a, const Doc& b) {
    return a.text == b.text && a.revision == b.revision;
  }
};

/// Fixture opening an in-memory Ode database with a deterministic clock.
class DatabaseFixture : public ::testing::Test {
 protected:
  void SetUp() override { OpenDb(); }

  void OpenDb() {
    DatabaseOptions options = MakeOptions();
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = std::move(*db);
  }

  /// Closes and reopens the database against the same in-memory files.
  void ReopenDb() {
    db_.reset();
    OpenDb();
  }

  virtual DatabaseOptions MakeOptions() {
    DatabaseOptions options;
    options.storage.env = &env_;
    options.storage.path = "/db";
    options.clock = &clock_;
    return options;
  }

  /// Creates an object with `payload` bytes; returns its initial VersionId.
  VersionId MustPnew(const std::string& payload) {
    auto vid = db_->PnewRaw(type_id_, Slice(payload));
    EXPECT_TRUE(vid.ok()) << vid.status();
    return vid.ok() ? *vid : VersionId{};
  }

  /// Registers the default raw type once.
  void SetUpRawType() {
    auto id = db_->RegisterType("raw");
    ASSERT_TRUE(id.ok()) << id.status();
    type_id_ = *id;
  }

  std::string MustRead(VersionId vid) {
    auto bytes = db_->ReadVersion(vid);
    EXPECT_TRUE(bytes.ok()) << bytes.status();
    return bytes.ok() ? *bytes : std::string();
  }

  std::string MustReadLatest(ObjectId oid) {
    auto bytes = db_->ReadLatest(oid);
    EXPECT_TRUE(bytes.ok()) << bytes.status();
    return bytes.ok() ? *bytes : std::string();
  }

  MemEnv env_;
  LogicalClock clock_;
  std::unique_ptr<Database> db_;
  uint32_t type_id_ = 0;
};

}  // namespace testing_internal
}  // namespace ode

#endif  // ODE_TESTS_TESTING_DB_FIXTURE_H_
