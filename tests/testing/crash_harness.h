#ifndef ODE_TESTS_TESTING_CRASH_HARNESS_H_
#define ODE_TESTS_TESTING_CRASH_HARNESS_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/check.h"
#include "core/cursor.h"
#include "core/database.h"
#include "core/diagnostics.h"
#include "storage/fault_env.h"
#include "tests/testing/json_util.h"
#include "tests/testing/util.h"
#include "util/event_log.h"

namespace ode {
namespace testing {

/// Crash-recovery test harness (the tentpole of the fault-injection work).
///
/// A Workload is a named sequence of operations, each an atomic Database
/// call (or an explicit Begin/.../Commit or Abort group).  RunCrashMatrix
/// executes the workload under a FaultInjectionEnv once per (crash step,
/// tear mode) pair: the crash is scheduled to fire instead of the Nth
/// mutating I/O operation, the database is dropped mid-flight, reopened
/// (running WAL recovery), and the recovered state is checked against a
/// shadow model — a twin database that ran the same ops on a healthy MemEnv:
///
///  - all-or-nothing per operation: the recovered logical state (types,
///    headers, version metadata, payloads) equals the twin's state after
///    exactly the committed prefix of operations.  The single allowed
///    ambiguity is CrashTear::kKeepAll at a commit's fsync: the commit
///    reported failure but its records became durable anyway, so the state
///    may equal the next prefix too;
///  - the temporal chain and derived-from tree are intact (every
///    Tprevious/Tnext and Dprevious/Dnext edge inverts correctly);
///  - caches are cold-correct (every payload re-materializes through the
///    cold read path to the shadow value);
///  - the full fsck (CheckDatabase) reports no violations.
///
/// The step sweep is dense: step 0, 1, 2, ... until a step past the last
/// mutating operation of the whole run (including the close-time
/// checkpoint), so every WAL append, every fsync, and every checkpoint
/// write is a crash point.  Failures name the (workload, tear, step)
/// triple; set ODE_CRASH_ARTIFACT_DIR to also append failing triples to
/// <dir>/failing_injections.txt (CI uploads that file for deterministic
/// repros).

using WorkloadOp = std::function<Status(Database&)>;

struct Workload {
  std::string name;
  /// storage.env and storage.path are overwritten by the harness.
  DatabaseOptions options;
  std::vector<WorkloadOp> ops;
};

struct CrashMatrixStats {
  uint64_t injections = 0;  ///< (step, tear) pairs where a crash fired.
  uint64_t max_steps = 0;   ///< Densest sweep length over the tear modes.
};

inline const char* TearName(CrashTear tear) {
  switch (tear) {
    case CrashTear::kLoseAll: return "lose_all";
    case CrashTear::kKeepAll: return "keep_all";
    case CrashTear::kTearHalf: return "tear_half";
    case CrashTear::kTornByte: return "torn_byte";
    case CrashTear::kCorruptLast: return "corrupt_last";
  }
  return "?";
}

/// Logical state dump used for shadow-model comparison.  Deliberately
/// excludes physical detail (record ids, delta/keyframe representation):
/// recovery guarantees logical equality, not byte-identical files.
inline std::string DumpState(Database& db) {
  std::ostringstream out;
  TypeCursor types(db);
  for (; types.Valid(); types.Next()) {
    out << "type " << types.id() << " " << types.name() << "\n";
  }
  EXPECT_OK(types.status());
  ObjectCursor objs(db);
  for (; objs.Valid(); objs.Next()) {
    const ObjectHeader& h = objs.header();
    out << "object " << objs.oid().value << " type=" << h.type_id
        << " latest=" << h.latest << " next=" << h.next_vnum
        << " count=" << h.version_count << " ts=" << h.created_ts << "\n";
    VersionCursor vers(db, objs.oid());
    for (; vers.Valid(); vers.Next()) {
      const VersionMeta& m = vers.meta();
      out << "  v" << m.vnum << " from=" << m.derived_from
          << " ts=" << m.created_ts << " size=" << m.logical_size
          << " payload=";
      auto payload = db.ReadVersion(vers.vid());
      if (payload.ok()) {
        out << *payload;
      } else {
        out << "<unreadable: " << payload.status() << ">";
      }
      out << "\n";
    }
    EXPECT_OK(vers.status());
  }
  EXPECT_OK(objs.status());
  return out.str();
}

/// The odedump-verify chain checks: every Tprevious/Tnext and
/// Dprevious/Dnext edge must invert, and headers must agree with the
/// version entries.  Returns human-readable violations (empty = intact).
inline std::vector<std::string> VerifyChains(Database& db) {
  std::vector<std::string> violations;
  const auto violation = [&](std::string what) {
    violations.push_back(std::move(what));
  };
  ObjectCursor objs(db);
  for (; objs.Valid(); objs.Next()) {
    const ObjectId oid = objs.oid();
    const ObjectHeader& header = objs.header();
    const std::string label = "object " + std::to_string(oid.value);
    auto latest = db.Latest(oid);
    if (!latest.ok() || latest->vnum != header.latest) {
      violation(label + ": Latest() disagrees with header");
    }
    uint64_t count = 0;
    std::optional<VersionId> prev;
    VersionCursor vers(db, oid);
    for (; vers.Valid(); vers.Next()) {
      const VersionId vid = vers.vid();
      const VersionMeta& meta = vers.meta();
      ++count;
      const std::string vlabel = label + " v" + std::to_string(vid.vnum);
      auto tprev = db.Tprevious(vid);
      if (!tprev.ok() || *tprev != prev) {
        violation(vlabel + ": broken Tprevious link");
      } else if (prev.has_value()) {
        auto tnext = db.Tnext(*prev);
        if (!tnext.ok() || !tnext->has_value() || !(**tnext == vid)) {
          violation(vlabel + ": broken Tnext link");
        }
      }
      auto dprev = db.Dprevious(vid);
      if (!dprev.ok()) {
        violation(vlabel + ": Dprevious failed");
      } else if (meta.derived_from == kNoVersion) {
        if (dprev->has_value()) violation(vlabel + ": spurious Dprevious");
      } else if (!dprev->has_value() ||
                 (*dprev)->vnum != meta.derived_from) {
        violation(vlabel + ": broken Dprevious link");
      } else {
        auto children = db.Dnext(**dprev);
        bool found = false;
        if (children.ok()) {
          for (const VersionId& child : *children) {
            if (child == vid) { found = true; break; }
          }
        }
        if (!found) violation(vlabel + ": missing from parent's Dnext");
      }
      prev = vid;
    }
    if (!vers.status().ok()) {
      violation(label + ": version scan failed: " +
                vers.status().ToString());
    }
    if (count != header.version_count) {
      violation(label + ": header.version_count mismatch");
    }
    if (prev.has_value() && prev->vnum != header.latest) {
      violation(label + ": temporal tail != header.latest");
    }
  }
  if (!objs.status().ok()) {
    violation("object scan failed: " + objs.status().ToString());
  }
  return violations;
}

inline void RecordFailingInjection(const std::string& workload,
                                   CrashTear tear, uint64_t step) {
  const char* dir = std::getenv("ODE_CRASH_ARTIFACT_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  std::ofstream out(std::string(dir) + "/failing_injections.txt",
                    std::ios::app);
  out << workload << " " << TearName(tear) << " " << step << "\n";
}

/// Saves a failing injection's diagnostics dump next to
/// failing_injections.txt so CI uploads the flight-recorder evidence, not
/// just the (workload, tear, step) coordinates.
inline void SaveFailingDump(const std::string& workload, CrashTear tear,
                            uint64_t step, const std::string& dump_json) {
  const char* dir = std::getenv("ODE_CRASH_ARTIFACT_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  std::ofstream out(std::string(dir) + "/" + workload + "-" +
                    TearName(tear) + "-" + std::to_string(step) +
                    ".diagnostics.json");
  out << dump_json;
}

/// Flight-recorder contract after a recovered injection: the dump the
/// recovered database exports must be well-formed JSON whose WAL watermarks
/// are internally ordered (durable <= appended <= enqueued, acked <=
/// enqueued) and whose recovery section matches the engine's own recovery
/// stats for this reopen.  Returns human-readable violations (empty = ok).
inline std::vector<std::string> VerifyDiagnosticsDump(
    const std::string& dump_json, const RecoveryStats& recovery) {
  std::vector<std::string> violations;
  std::string parse_error;
  if (!testing::IsWellFormedJson(dump_json, &parse_error)) {
    violations.push_back("diagnostics dump is not well-formed JSON: " +
                         parse_error);
    return violations;  // Field probes on a broken doc prove nothing.
  }
  const auto number = [&](const char* key) -> double {
    const auto v = testing::FindJsonNumber(dump_json, key);
    if (!v.has_value()) {
      violations.push_back(std::string("diagnostics dump lacks \"") + key +
                           "\"");
      return 0.0;
    }
    return *v;
  };
  const double enqueued = number("enqueued_txn");
  const double appended = number("appended_txn");
  const double durable = number("durable_txn");
  const double acked = number("acked_txn");
  if (!(durable <= appended && appended <= enqueued)) {
    violations.push_back("watermarks out of order: durable=" +
                         std::to_string(durable) + " appended=" +
                         std::to_string(appended) + " enqueued=" +
                         std::to_string(enqueued));
  }
  if (acked > enqueued) {
    violations.push_back("acked watermark beyond enqueued: acked=" +
                         std::to_string(acked) + " enqueued=" +
                         std::to_string(enqueued));
  }
  const auto expect_eq = [&](const char* key, uint64_t want) {
    const double got = number(key);
    if (got != static_cast<double>(want)) {
      violations.push_back(std::string("recovery.") + key + " = " +
                           std::to_string(got) + ", engine reported " +
                           std::to_string(want));
    }
  };
  expect_eq("committed_txns", recovery.committed_txns);
  expect_eq("discarded_txns", recovery.discarded_txns);
  const auto trigger = testing::FindJsonString(dump_json, "trigger");
  if (!trigger.has_value() || *trigger != "crash_matrix") {
    violations.push_back("dump trigger is not \"crash_matrix\"");
  }
  return violations;
}

/// Runs the full (step x tear) crash matrix for one workload.  Reports
/// failures through gtest; fills `stats` for coverage assertions.
inline void RunCrashMatrix(const Workload& workload, CrashMatrixStats* stats) {
  // Shadow model: the expected logical dump after each committed prefix.
  std::vector<std::string> expected;
  {
    MemEnv twin_env;
    DatabaseOptions opts = workload.options;
    opts.storage.env = &twin_env;
    opts.storage.path = "/twin";
    auto twin = Database::Open(opts);
    ASSERT_OK(twin.status());
    expected.push_back(DumpState(**twin));
    for (const WorkloadOp& op : workload.ops) {
      ASSERT_OK(op(**twin));
      expected.push_back(DumpState(**twin));
    }
  }

  constexpr CrashTear kTears[] = {CrashTear::kLoseAll, CrashTear::kKeepAll,
                                  CrashTear::kTearHalf, CrashTear::kTornByte,
                                  CrashTear::kCorruptLast};
  // Far beyond any real workload's mutating-op count; a sweep that never
  // stops firing means crash_fired() is stuck and the harness is broken.
  constexpr uint64_t kStepCap = 100000;

  for (CrashTear tear : kTears) {
    for (uint64_t step = 0;; ++step) {
      ASSERT_LT(step, kStepCap) << "crash sweep did not terminate";
      SCOPED_TRACE(workload.name + " tear=" + TearName(tear) +
                   " step=" + std::to_string(step));
      FaultInjectionEnv env(nullptr);
      DatabaseOptions opts = workload.options;
      opts.storage.env = &env;
      opts.storage.path = "/crash";
      size_t committed = 0;
      bool opened = false;
      {
        auto db = Database::Open(opts);
        ASSERT_OK(db.status());  // No crash armed yet: must open cleanly.
        opened = true;
        // Journal fired injections into the victim's flight recorder so a
        // poison-time dump names the fault that felled it.
        env.set_event_log(&(*db)->event_log());
        env.ScheduleCrash(step, tear);
        for (const WorkloadOp& op : workload.ops) {
          Status s = op(**db);
          if (!s.ok()) break;  // First casualty of the crash.
          ++committed;
        }
      }  // Close (and attempt the close-time checkpoint) while still armed.
      env.set_event_log(nullptr);  // The victim's journal died with it.
      (void)opened;
      if (!env.crash_fired()) {
        // This step is past the last mutating op of the whole run: every
        // earlier step crashed somewhere, so the sweep is complete.
        EXPECT_EQ(committed, workload.ops.size());
        if (stats != nullptr) {
          stats->max_steps = std::max(stats->max_steps, step);
        }
        break;
      }
      if (stats != nullptr) ++stats->injections;

      // "Reboot": keep the torn files, clear all fault state, reopen.
      env.ClearFaults();
      bool injection_ok = true;
      {
        auto recovered = Database::Open(opts);
        ASSERT_OK(recovered.status());  // Recovery must cope with any tear.
        env.set_event_log(&(*recovered)->event_log());

        for (const std::string& v : VerifyChains(**recovered)) {
          ADD_FAILURE() << v;
          injection_ok = false;
        }
        auto report = CheckDatabase(**recovered);
        ASSERT_OK(report.status());
        for (const std::string& e : report->errors) {
          ADD_FAILURE() << "fsck: " << e;
          injection_ok = false;
        }

        const std::string dump = DumpState(**recovered);
        bool match = dump == expected[committed];
        if (!match && tear == CrashTear::kKeepAll &&
            committed + 1 < expected.size()) {
          // The crash swallowed the fsync's success report: the op failed
          // from the caller's view but its WAL records survived whole.
          match = dump == expected[committed + 1];
        }
        if (!match) {
          ADD_FAILURE() << "recovered state is not the committed prefix ("
                        << committed << " ops committed)\n--- recovered:\n"
                        << dump << "--- expected:\n" << expected[committed];
          injection_ok = false;
        }

        // Flight-recorder contract: every injected crash must yield a
        // parseable diagnostics dump from the recovered database, with WAL
        // watermarks and recovery stats that agree with the engine.
        auto dump_path = (*recovered)->DumpDiagnostics("crash_matrix");
        ASSERT_OK(dump_path.status());
        auto dump_json = ReadDiagnosticsFile(&env, *dump_path);
        ASSERT_OK(dump_json.status());
        for (const std::string& v : VerifyDiagnosticsDump(
                 *dump_json, (*recovered)->storage().last_recovery())) {
          ADD_FAILURE() << "diagnostics: " << v;
          injection_ok = false;
        }
        if (!injection_ok) {
          SaveFailingDump(workload.name, tear, step, *dump_json);
        }
      }
      env.set_event_log(nullptr);
      if (!injection_ok) RecordFailingInjection(workload.name, tear, step);
    }
  }
}

}  // namespace testing
}  // namespace ode

#endif  // ODE_TESTS_TESTING_CRASH_HARNESS_H_
