#include "core/query.h"

#include <gtest/gtest.h>

#include "tests/testing/db_fixture.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;
using testing_internal::Doc;

class QueryTest : public DatabaseFixture {
 protected:
  void Populate() {
    for (int i = 0; i < 20; ++i) {
      auto ref = pnew(*db_, Doc{"doc" + std::to_string(i), i});
      ASSERT_TRUE(ref.ok());
      refs_.push_back(*ref);
    }
  }
  std::vector<Ref<Doc>> refs_;
};

TEST_F(QueryTest, SelectFiltersByPredicate) {
  Populate();
  auto high = Select<Doc>(*db_, [](const Doc& d) { return d.revision >= 15; });
  ASSERT_TRUE(high.ok());
  EXPECT_EQ(high->size(), 5u);
  for (const Ref<Doc>& ref : *high) {
    EXPECT_GE(ref->revision, 15);
  }
}

TEST_F(QueryTest, SelectSeesLatestVersions) {
  Populate();
  // Bump doc3's revision through a new version; the query must see it.
  auto vp = newversion(refs_[3]);
  ASSERT_TRUE(vp.ok());
  ASSERT_OK(vp->Store(Doc{"doc3", 100}));
  auto found =
      Select<Doc>(*db_, [](const Doc& d) { return d.revision == 100; });
  ASSERT_TRUE(found.ok());
  ASSERT_EQ(found->size(), 1u);
  EXPECT_EQ((*found)[0].oid(), refs_[3].oid());
}

TEST_F(QueryTest, SelectEmptyResult) {
  Populate();
  auto none =
      Select<Doc>(*db_, [](const Doc& d) { return d.revision > 9999; });
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST_F(QueryTest, CountWhere) {
  Populate();
  auto count =
      CountWhere<Doc>(*db_, [](const Doc& d) { return d.revision % 2 == 0; });
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 10u);
}

TEST_F(QueryTest, ForEachLatestEarlyStop) {
  Populate();
  int visited = 0;
  ASSERT_OK(ForEachLatest<Doc>(*db_, [&](const Ref<Doc>&, const Doc&) {
    return ++visited < 7;
  }));
  EXPECT_EQ(visited, 7);
}

TEST_F(QueryTest, SelectVersionsQueriesHistory) {
  auto account = pnew(*db_, Doc{"balance", 100});
  ASSERT_TRUE(account.ok());
  for (int64_t balance : {50, -20, 30, -5, 80}) {
    auto vp = newversion(*account);
    ASSERT_TRUE(vp.ok());
    ASSERT_OK(vp->Store(Doc{"balance", balance}));
  }
  // "Every state where the balance was negative."
  auto negative = SelectVersions<Doc>(
      *db_, account->oid(), [](const Doc& d) { return d.revision < 0; });
  ASSERT_TRUE(negative.ok());
  ASSERT_EQ(negative->size(), 2u);
  EXPECT_EQ((*negative)[0]->revision, -20);
  EXPECT_EQ((*negative)[1]->revision, -5);
}

TEST_F(QueryTest, QueriesSkipOtherTypes) {
  Populate();
  // An object of a different type must not appear in Doc queries.
  auto type = db_->RegisterType("other");
  ASSERT_TRUE(type.ok());
  ASSERT_TRUE(db_->PnewRaw(*type, Slice("raw")).ok());
  auto all = Select<Doc>(*db_, [](const Doc&) { return true; });
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 20u);
}

}  // namespace
}  // namespace ode
