#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/check.h"
#include "core/database.h"
#include "storage/btree.h"
#include "storage/storage_engine.h"
#include "tests/testing/db_fixture.h"
#include "util/random.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;

TEST(BTreeVacuumTest, ReclaimsEmptiedPages) {
  MemEnv env;
  StorageOptions options;
  options.env = &env;
  options.path = "/db";
  auto engine = StorageEngine::Open(options);
  ASSERT_TRUE(engine.ok());

  uint32_t pages_before_vacuum = 0, pages_after_vacuum = 0;
  ASSERT_OK((*engine)->WithTxn([&](Txn& txn) -> Status {
    auto tree = BTree::Open(&txn, 4);
    if (!tree.ok()) return tree.status();
    for (int i = 0; i < 5000; ++i) {
      ODE_RETURN_IF_ERROR(
          tree->Put(Slice("key" + std::to_string(i)), Slice("some value")));
    }
    // Delete everything: pages empty out but are not reclaimed.
    for (int i = 0; i < 5000; ++i) {
      ODE_RETURN_IF_ERROR(tree->Delete(Slice("key" + std::to_string(i))));
    }
    auto used = tree->PageCountUsed();
    if (!used.ok()) return used.status();
    pages_before_vacuum = *used;
    ODE_RETURN_IF_ERROR(tree->Vacuum());
    used = tree->PageCountUsed();
    if (!used.ok()) return used.status();
    pages_after_vacuum = *used;
    return Status::OK();
  }));
  EXPECT_GT(pages_before_vacuum, 10u);
  EXPECT_EQ(pages_after_vacuum, 1u);  // A single empty root leaf.
}

TEST(BTreeVacuumTest, PreservesAllEntries) {
  MemEnv env;
  StorageOptions options;
  options.env = &env;
  options.path = "/db";
  auto engine = StorageEngine::Open(options);
  ASSERT_TRUE(engine.ok());
  Random rng(3);

  std::map<std::string, std::string> model;
  ASSERT_OK((*engine)->WithTxn([&](Txn& txn) -> Status {
    auto tree = BTree::Open(&txn, 4);
    if (!tree.ok()) return tree.status();
    for (int i = 0; i < 3000; ++i) {
      std::string key = rng.NextString(rng.Range(4, 20));
      std::string value = rng.NextBytes(rng.Range(0, 100));
      ODE_RETURN_IF_ERROR(tree->Put(Slice(key), Slice(value)));
      model[key] = value;
    }
    // Delete a third.
    int removed = 0;
    for (auto it = model.begin(); it != model.end() && removed < 1000;) {
      ODE_RETURN_IF_ERROR(tree->Delete(Slice(it->first)));
      it = model.erase(it);
      ++removed;
    }
    ODE_RETURN_IF_ERROR(tree->Vacuum());
    // Everything left must be intact and ordered.
    auto it = tree->NewIterator();
    auto model_it = model.begin();
    for (it.SeekToFirst(); it.Valid(); it.Next(), ++model_it) {
      if (model_it == model.end()) {
        return Status::Internal("extra key after vacuum: " + it.key());
      }
      EXPECT_EQ(it.key(), model_it->first);
      EXPECT_EQ(it.value(), model_it->second);
    }
    EXPECT_EQ(model_it, model.end());
    return it.status();
  }));
}

TEST(BTreeVacuumTest, FreedPagesAreReusable) {
  MemEnv env;
  StorageOptions options;
  options.env = &env;
  options.path = "/db";
  auto engine = StorageEngine::Open(options);
  ASSERT_TRUE(engine.ok());
  // Fill + clear + vacuum, then check the file does not grow when refilled
  // (freed pages get recycled).
  auto fill_and_clear = [&]() -> uint32_t {
    uint32_t page_count = 0;
    Status s = (*engine)->WithTxn([&](Txn& txn) -> Status {
      auto tree = BTree::Open(&txn, 4);
      if (!tree.ok()) return tree.status();
      for (int i = 0; i < 2000; ++i) {
        ODE_RETURN_IF_ERROR(
            tree->Put(Slice("k" + std::to_string(i)), Slice("v")));
      }
      for (int i = 0; i < 2000; ++i) {
        ODE_RETURN_IF_ERROR(tree->Delete(Slice("k" + std::to_string(i))));
      }
      ODE_RETURN_IF_ERROR(tree->Vacuum());
      auto pc = txn.PageCount();
      if (!pc.ok()) return pc.status();
      page_count = *pc;
      return Status::OK();
    });
    EXPECT_TRUE(s.ok()) << s;
    return page_count;
  };
  const uint32_t first = fill_and_clear();
  const uint32_t second = fill_and_clear();
  EXPECT_EQ(first, second);
}

class DatabaseVacuumTest : public DatabaseFixture {};

TEST_F(DatabaseVacuumTest, VacuumKeepsDatabaseConsistent) {
  SetUpRawType();
  // Create churn: many objects, delete most.
  std::vector<ObjectId> survivors;
  for (int i = 0; i < 200; ++i) {
    VersionId vid = MustPnew("object " + std::to_string(i));
    ASSERT_TRUE(db_->NewVersionOf(vid.oid).ok());
    if (i % 10 == 0) {
      survivors.push_back(vid.oid);
    } else {
      ASSERT_OK(db_->PdeleteObject(vid.oid));
    }
  }
  ASSERT_OK(db_->Vacuum());
  auto report = CheckDatabase(*db_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->errors.front();
  EXPECT_EQ(report->objects_checked, survivors.size());
  for (ObjectId oid : survivors) {
    auto bytes = db_->ReadLatest(oid);
    EXPECT_TRUE(bytes.ok());
  }
}

TEST_F(DatabaseVacuumTest, VacuumSurvivesReopen) {
  SetUpRawType();
  VersionId keep = MustPnew("keeper");
  for (int i = 0; i < 50; ++i) {
    VersionId vid = MustPnew("churn");
    ASSERT_OK(db_->PdeleteObject(vid.oid));
  }
  ASSERT_OK(db_->Vacuum());
  ReopenDb();
  auto bytes = db_->ReadLatest(keep.oid);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "keeper");
}

class IncrementalVacuumTest : public DatabaseFixture {};

TEST_F(IncrementalVacuumTest, StepsUntilDoneWithTinyBudget) {
  SetUpRawType();
  std::vector<ObjectId> survivors;
  for (int i = 0; i < 150; ++i) {
    VersionId vid = MustPnew("obj " + std::to_string(i));
    if (i % 5 == 0) {
      survivors.push_back(vid.oid);
    } else {
      ASSERT_OK(db_->PdeleteObject(vid.oid));
    }
  }
  // A 16-entry budget forces many steps per tree; the pass must still
  // terminate and leave a consistent database.
  int steps = 0;
  while (true) {
    auto done = db_->VacuumStep(16);
    ASSERT_TRUE(done.ok()) << done.status();
    ++steps;
    if (*done) break;
    ASSERT_LT(steps, 10000);
  }
  EXPECT_GT(steps, 5);  // It genuinely ran incrementally.
  auto report = CheckDatabase(*db_);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << report->errors.front();
  for (ObjectId oid : survivors) {
    EXPECT_OK(db_->ReadLatest(oid).status());
  }
}

TEST_F(IncrementalVacuumTest, WritesBetweenStepsFallBackSafely) {
  SetUpRawType();
  for (int i = 0; i < 120; ++i) {
    VersionId vid = MustPnew("churn " + std::to_string(i));
    if (i % 3 != 0) ASSERT_OK(db_->PdeleteObject(vid.oid));
  }
  // Interleave foreign commits with vacuum steps: every step sees the
  // commit counter move and must take the single-transaction fallback for
  // the tree it was copying — never publishing a stale shadow.
  std::vector<ObjectId> late;
  int steps = 0;
  while (true) {
    auto done = db_->VacuumStep(8);
    ASSERT_TRUE(done.ok()) << done.status();
    if (*done) break;
    late.push_back(MustPnew("interleaved " + std::to_string(steps)).oid);
    ASSERT_LT(++steps, 10000);
  }
  for (ObjectId oid : late) {
    auto bytes = db_->ReadLatest(oid);
    ASSERT_TRUE(bytes.ok()) << bytes.status();
  }
  auto report = CheckDatabase(*db_);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << report->errors.front();
}

TEST_F(IncrementalVacuumTest, RejectsBadBudgetAndOpenTransaction) {
  SetUpRawType();
  EXPECT_TRUE(db_->VacuumStep(0).status().IsInvalidArgument());
  ASSERT_OK(db_->Begin());
  EXPECT_TRUE(db_->VacuumStep().status().IsFailedPrecondition());
  EXPECT_TRUE(db_->Vacuum().IsFailedPrecondition());
  ASSERT_OK(db_->Abort());
  EXPECT_OK(db_->Vacuum());
}

TEST_F(IncrementalVacuumTest, ReopenReclaimsAbandonedShadowTree) {
  SetUpRawType();
  for (int i = 0; i < 100; ++i) {
    VersionId vid = MustPnew("filler " + std::to_string(i));
    if (i % 2 == 0) ASSERT_OK(db_->PdeleteObject(vid.oid));
  }
  // Begin a pass and abandon it mid-tree: the scratch slot may hold a
  // partially built shadow.
  auto done = db_->VacuumStep(8);
  ASSERT_TRUE(done.ok()) << done.status();
  ASSERT_FALSE(*done);
  const uint32_t pages_before = [&] {
    auto stats = db_->GatherStorageStats();
    EXPECT_TRUE(stats.ok()) << stats.status();
    return stats.ok() ? stats->total_pages - stats->free_pages : 0u;
  }();
  ReopenDb();  // Open() must free the leftover shadow pages.
  const uint32_t pages_after = [&] {
    auto stats = db_->GatherStorageStats();
    EXPECT_TRUE(stats.ok()) << stats.status();
    return stats.ok() ? stats->total_pages - stats->free_pages : 0u;
  }();
  EXPECT_LE(pages_after, pages_before);
  auto report = CheckDatabase(*db_);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << report->errors.front();
  // A fresh full pass still works after the cleanup.
  ASSERT_OK(db_->Vacuum());
}

TEST_F(IncrementalVacuumTest, ConcurrentWritersDuringIncrementalVacuum) {
  SetUpRawType();
  for (int i = 0; i < 200; ++i) {
    VersionId vid = MustPnew("seed " + std::to_string(i));
    if (i % 2 == 0) ASSERT_OK(db_->PdeleteObject(vid.oid));
  }
  // Writers hammer the database while one thread drives vacuum steps; the
  // TSan job runs this (-R Concurrent) to prove the vacuum state handoff
  // and shadow-tree swaps are race-free.
  std::atomic<bool> stop{false};
  std::atomic<int> write_errors{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto vid = db_->PnewRaw(
            type_id_, Slice("w" + std::to_string(t) + "." + std::to_string(i)));
        if (!vid.ok()) {
          ++write_errors;
          break;
        }
        if (i % 2 == 0) {
          if (!db_->PdeleteObject(vid->oid).ok()) ++write_errors;
        }
        ++i;
      }
    });
  }
  int passes = 0;
  while (passes < 3) {
    auto done = db_->VacuumStep(32);
    ASSERT_TRUE(done.ok()) << done.status();
    if (*done) ++passes;
  }
  stop.store(true);
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(write_errors.load(), 0);
  auto report = CheckDatabase(*db_);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << report->errors.front();
}

}  // namespace
}  // namespace ode
