#include <gtest/gtest.h>

#include "core/check.h"
#include "core/database.h"
#include "storage/btree.h"
#include "storage/storage_engine.h"
#include "tests/testing/db_fixture.h"
#include "util/random.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;

TEST(BTreeVacuumTest, ReclaimsEmptiedPages) {
  MemEnv env;
  StorageOptions options;
  options.env = &env;
  options.path = "/db";
  auto engine = StorageEngine::Open(options);
  ASSERT_TRUE(engine.ok());

  uint32_t pages_before_vacuum = 0, pages_after_vacuum = 0;
  ASSERT_OK((*engine)->WithTxn([&](Txn& txn) -> Status {
    auto tree = BTree::Open(&txn, 4);
    if (!tree.ok()) return tree.status();
    for (int i = 0; i < 5000; ++i) {
      ODE_RETURN_IF_ERROR(
          tree->Put(Slice("key" + std::to_string(i)), Slice("some value")));
    }
    // Delete everything: pages empty out but are not reclaimed.
    for (int i = 0; i < 5000; ++i) {
      ODE_RETURN_IF_ERROR(tree->Delete(Slice("key" + std::to_string(i))));
    }
    auto used = tree->PageCountUsed();
    if (!used.ok()) return used.status();
    pages_before_vacuum = *used;
    ODE_RETURN_IF_ERROR(tree->Vacuum());
    used = tree->PageCountUsed();
    if (!used.ok()) return used.status();
    pages_after_vacuum = *used;
    return Status::OK();
  }));
  EXPECT_GT(pages_before_vacuum, 10u);
  EXPECT_EQ(pages_after_vacuum, 1u);  // A single empty root leaf.
}

TEST(BTreeVacuumTest, PreservesAllEntries) {
  MemEnv env;
  StorageOptions options;
  options.env = &env;
  options.path = "/db";
  auto engine = StorageEngine::Open(options);
  ASSERT_TRUE(engine.ok());
  Random rng(3);

  std::map<std::string, std::string> model;
  ASSERT_OK((*engine)->WithTxn([&](Txn& txn) -> Status {
    auto tree = BTree::Open(&txn, 4);
    if (!tree.ok()) return tree.status();
    for (int i = 0; i < 3000; ++i) {
      std::string key = rng.NextString(rng.Range(4, 20));
      std::string value = rng.NextBytes(rng.Range(0, 100));
      ODE_RETURN_IF_ERROR(tree->Put(Slice(key), Slice(value)));
      model[key] = value;
    }
    // Delete a third.
    int removed = 0;
    for (auto it = model.begin(); it != model.end() && removed < 1000;) {
      ODE_RETURN_IF_ERROR(tree->Delete(Slice(it->first)));
      it = model.erase(it);
      ++removed;
    }
    ODE_RETURN_IF_ERROR(tree->Vacuum());
    // Everything left must be intact and ordered.
    auto it = tree->NewIterator();
    auto model_it = model.begin();
    for (it.SeekToFirst(); it.Valid(); it.Next(), ++model_it) {
      if (model_it == model.end()) {
        return Status::Internal("extra key after vacuum: " + it.key());
      }
      EXPECT_EQ(it.key(), model_it->first);
      EXPECT_EQ(it.value(), model_it->second);
    }
    EXPECT_EQ(model_it, model.end());
    return it.status();
  }));
}

TEST(BTreeVacuumTest, FreedPagesAreReusable) {
  MemEnv env;
  StorageOptions options;
  options.env = &env;
  options.path = "/db";
  auto engine = StorageEngine::Open(options);
  ASSERT_TRUE(engine.ok());
  // Fill + clear + vacuum, then check the file does not grow when refilled
  // (freed pages get recycled).
  auto fill_and_clear = [&]() -> uint32_t {
    uint32_t page_count = 0;
    Status s = (*engine)->WithTxn([&](Txn& txn) -> Status {
      auto tree = BTree::Open(&txn, 4);
      if (!tree.ok()) return tree.status();
      for (int i = 0; i < 2000; ++i) {
        ODE_RETURN_IF_ERROR(
            tree->Put(Slice("k" + std::to_string(i)), Slice("v")));
      }
      for (int i = 0; i < 2000; ++i) {
        ODE_RETURN_IF_ERROR(tree->Delete(Slice("k" + std::to_string(i))));
      }
      ODE_RETURN_IF_ERROR(tree->Vacuum());
      auto pc = txn.PageCount();
      if (!pc.ok()) return pc.status();
      page_count = *pc;
      return Status::OK();
    });
    EXPECT_TRUE(s.ok()) << s;
    return page_count;
  };
  const uint32_t first = fill_and_clear();
  const uint32_t second = fill_and_clear();
  EXPECT_EQ(first, second);
}

class DatabaseVacuumTest : public DatabaseFixture {};

TEST_F(DatabaseVacuumTest, VacuumKeepsDatabaseConsistent) {
  SetUpRawType();
  // Create churn: many objects, delete most.
  std::vector<ObjectId> survivors;
  for (int i = 0; i < 200; ++i) {
    VersionId vid = MustPnew("object " + std::to_string(i));
    ASSERT_TRUE(db_->NewVersionOf(vid.oid).ok());
    if (i % 10 == 0) {
      survivors.push_back(vid.oid);
    } else {
      ASSERT_OK(db_->PdeleteObject(vid.oid));
    }
  }
  ASSERT_OK(db_->Vacuum());
  auto report = CheckDatabase(*db_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->errors.front();
  EXPECT_EQ(report->objects_checked, survivors.size());
  for (ObjectId oid : survivors) {
    auto bytes = db_->ReadLatest(oid);
    EXPECT_TRUE(bytes.ok());
  }
}

TEST_F(DatabaseVacuumTest, VacuumSurvivesReopen) {
  SetUpRawType();
  VersionId keep = MustPnew("keeper");
  for (int i = 0; i < 50; ++i) {
    VersionId vid = MustPnew("churn");
    ASSERT_OK(db_->PdeleteObject(vid.oid));
  }
  ASSERT_OK(db_->Vacuum());
  ReopenDb();
  auto bytes = db_->ReadLatest(keep.oid);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "keeper");
}

}  // namespace
}  // namespace ode
