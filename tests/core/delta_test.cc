#include "core/delta.h"

#include <gtest/gtest.h>

#include "tests/testing/util.h"
#include "util/coding.h"
#include "util/random.h"

namespace ode {
namespace {

std::string RoundTrip(const std::string& base, const std::string& target) {
  std::string encoded = delta::Encode(Slice(base), Slice(target));
  auto applied = delta::Apply(Slice(base), Slice(encoded));
  EXPECT_TRUE(applied.ok()) << applied.status();
  return applied.ok() ? *applied : std::string();
}

TEST(DeltaTest, IdenticalPayloadRoundTrip) {
  const std::string data(1000, 'a');
  EXPECT_EQ(RoundTrip(data, data), data);
}

TEST(DeltaTest, IdenticalPayloadEncodesTiny) {
  const std::string data(10000, 'x');
  std::string encoded = delta::Encode(Slice(data), Slice(data));
  EXPECT_LT(encoded.size(), 20u);
}

TEST(DeltaTest, EmptyTarget) {
  EXPECT_EQ(RoundTrip("some base", ""), "");
}

TEST(DeltaTest, EmptyBase) {
  EXPECT_EQ(RoundTrip("", "brand new content"), "brand new content");
}

TEST(DeltaTest, BothEmpty) { EXPECT_EQ(RoundTrip("", ""), ""); }

TEST(DeltaTest, SmallEditInLargePayload) {
  Random rng(1);
  std::string base = rng.NextBytes(8192);
  std::string target = base;
  target[4000] = static_cast<char>(target[4000] ^ 0x55);
  EXPECT_EQ(RoundTrip(base, target), target);
  std::string encoded = delta::Encode(Slice(base), Slice(target));
  // A one-byte edit should cost far less than the payload.
  EXPECT_LT(encoded.size(), base.size() / 10);
}

TEST(DeltaTest, InsertionInMiddle) {
  Random rng(2);
  std::string base = rng.NextBytes(4096);
  std::string target =
      base.substr(0, 2000) + "INSERTED CHUNK" + base.substr(2000);
  EXPECT_EQ(RoundTrip(base, target), target);
  std::string encoded = delta::Encode(Slice(base), Slice(target));
  EXPECT_LT(encoded.size(), 200u);
}

TEST(DeltaTest, DeletionInMiddle) {
  Random rng(3);
  std::string base = rng.NextBytes(4096);
  std::string target = base.substr(0, 1000) + base.substr(3000);
  EXPECT_EQ(RoundTrip(base, target), target);
  std::string encoded = delta::Encode(Slice(base), Slice(target));
  EXPECT_LT(encoded.size(), 200u);
}

TEST(DeltaTest, CompletelyDifferentContent) {
  Random rng(4);
  std::string base = rng.NextBytes(2048);
  std::string target = rng.NextBytes(2048);
  EXPECT_EQ(RoundTrip(base, target), target);
}

TEST(DeltaTest, TargetRepeatsBaseBlocks) {
  Random rng(5);
  std::string base = rng.NextBytes(1024);
  std::string target = base + base + base;
  EXPECT_EQ(RoundTrip(base, target), target);
  std::string encoded = delta::Encode(Slice(base), Slice(target));
  EXPECT_LT(encoded.size(), 100u);  // Three COPY ops.
}

TEST(DeltaTest, StatsCountOps) {
  Random rng(6);
  std::string base = rng.NextBytes(4096);
  std::string target = base.substr(0, 2000) + "xyz" + base.substr(2000);
  delta::DeltaStats stats;
  std::string encoded = delta::EncodeWithStats(Slice(base), Slice(target),
                                               &stats);
  EXPECT_GE(stats.copy_ops, 1u);
  EXPECT_GE(stats.add_ops, 1u);
  EXPECT_EQ(stats.copied_bytes + stats.added_bytes, target.size());
  auto applied = delta::Apply(Slice(base), Slice(encoded));
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, target);
}

TEST(DeltaTest, ShortBaseTakesLiteralPath) {
  // A base below kBlockSize cannot seed the block index; the encoder must
  // fall back to one literal ADD instead of degenerate per-byte matching.
  Random rng(7);
  std::string base = rng.NextBytes(delta::kBlockSize - 1);
  std::string target = rng.NextBytes(4096);
  delta::DeltaStats stats;
  std::string encoded =
      delta::EncodeWithStats(Slice(base), Slice(target), &stats);
  EXPECT_EQ(stats.copy_ops, 0u);
  EXPECT_EQ(stats.add_ops, 1u);
  EXPECT_EQ(stats.copied_bytes, 0u);
  EXPECT_EQ(stats.added_bytes, target.size());
  // Literal encoding overhead is a handful of varints, not per-block ops.
  EXPECT_LT(encoded.size(), target.size() + 16);
  auto applied = delta::Apply(Slice(base), Slice(encoded));
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_EQ(*applied, target);
}

TEST(DeltaTest, IdenticalPayloadHasZeroAddBytes) {
  Random rng(8);
  std::string data = rng.NextBytes(4096);
  delta::DeltaStats stats;
  std::string encoded =
      delta::EncodeWithStats(Slice(data), Slice(data), &stats);
  EXPECT_EQ(stats.added_bytes, 0u);
  EXPECT_EQ(stats.copied_bytes, data.size());
  auto applied = delta::Apply(Slice(data), Slice(encoded));
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_EQ(*applied, data);
}

TEST(DeltaTest, StatsConserveBytesAcrossEdgeCases) {
  Random rng(9);
  const std::string cases_base[] = {"", "x", std::string(16, 'a'),
                                    rng.NextBytes(1000)};
  const std::string cases_target[] = {"", "y", std::string(16, 'a'),
                                      rng.NextBytes(1000)};
  for (const std::string& base : cases_base) {
    for (const std::string& target : cases_target) {
      delta::DeltaStats stats;
      std::string encoded =
          delta::EncodeWithStats(Slice(base), Slice(target), &stats);
      EXPECT_EQ(stats.copied_bytes + stats.added_bytes, target.size())
          << "base=" << base.size() << " target=" << target.size();
      auto applied = delta::Apply(Slice(base), Slice(encoded));
      ASSERT_TRUE(applied.ok()) << applied.status();
      EXPECT_EQ(*applied, target);
    }
  }
}

TEST(DeltaTest, AdversarialRepetitivePayloads) {
  // Highly self-similar payloads historically trip rolling-hash encoders
  // (every block hashes identically).  They must still round-trip and stay
  // compact when base == target.
  const std::string page(delta::kBlockSize, '\0');
  std::string base;
  for (int i = 0; i < 64; ++i) base += page;
  std::string target = base;
  target.insert(target.size() / 2, "spike");
  EXPECT_EQ(RoundTrip(base, target), target);
  std::string same = delta::Encode(Slice(base), Slice(base));
  EXPECT_LT(same.size(), 32u);
}

TEST(DeltaTest, ApplyRejectsTruncatedDelta) {
  std::string base = "base content here";
  std::string encoded = delta::Encode(Slice(base), Slice(base));
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    auto applied = delta::Apply(Slice(base), Slice(encoded.data(), cut));
    EXPECT_FALSE(applied.ok()) << "cut=" << cut;
  }
}

TEST(DeltaTest, ApplyRejectsOutOfRangeCopy) {
  // Hand-build a delta whose COPY reaches past the base.
  std::string evil;
  PutVarint64(&evil, 10);  // Target length.
  evil.push_back(0);       // COPY.
  PutVarint64(&evil, 5);   // Offset.
  PutVarint64(&evil, 10);  // Length: 5+10 > base size 8.
  auto applied = delta::Apply(Slice("12345678"), Slice(evil));
  EXPECT_TRUE(applied.status().IsCorruption());
}

TEST(DeltaTest, ApplyRejectsUnknownTag) {
  std::string evil;
  PutVarint64(&evil, 1);
  evil.push_back(7);  // No such op.
  auto applied = delta::Apply(Slice("base"), Slice(evil));
  EXPECT_TRUE(applied.status().IsCorruption());
}

TEST(DeltaTest, ApplyRejectsWrongLength) {
  std::string evil;
  PutVarint64(&evil, 100);  // Claims 100 bytes...
  evil.push_back(1);        // ADD
  PutVarint64(&evil, 3);
  evil += "abc";            // ...but provides 3.
  auto applied = delta::Apply(Slice(""), Slice(evil));
  EXPECT_TRUE(applied.status().IsCorruption());
}

/// Property sweep: randomized mutations of random bases always round-trip.
class DeltaPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaPropertyTest, RandomMutationsRoundTrip) {
  Random rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    std::string base = rng.NextBytes(rng.Range(0, 5000));
    std::string target = base;
    // Random sequence of splice mutations.
    const int mutations = static_cast<int>(rng.Range(0, 5));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = target.empty() ? 0 : rng.Uniform(target.size());
      const size_t del = target.empty()
                             ? 0
                             : rng.Uniform(std::min<size_t>(
                                   100, target.size() - pos + 1));
      target = target.substr(0, pos) + rng.NextBytes(rng.Range(0, 100)) +
               target.substr(pos + del);
    }
    std::string encoded = delta::Encode(Slice(base), Slice(target));
    auto applied = delta::Apply(Slice(base), Slice(encoded));
    ASSERT_TRUE(applied.ok()) << applied.status();
    ASSERT_EQ(*applied, target) << "iter=" << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace ode
