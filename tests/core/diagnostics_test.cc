// Flight-recorder / diagnostics pipeline tests (ctest label: diag).
//
// Covers the dump file naming scheme, manual and poison-triggered
// DIAGNOSTICS-*.json exports, retention, HealthCheck verdicts, slow-op
// journaling, the METRICS.json exporter, and the engine's event journaling
// as observed through Database::event_log().

#include "core/diagnostics.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "storage/fault_env.h"
#include "tests/testing/db_fixture.h"
#include "tests/testing/json_util.h"
#include "util/event_log.h"

namespace ode {
namespace {

using testing::FindJsonNumber;
using testing::FindJsonString;
using testing::IsWellFormedJson;
using testing_internal::DatabaseFixture;

// --- File naming ----------------------------------------------------------

TEST(DiagnosticsNameTest, FileNameRoundTrips) {
  uint64_t seq = 0;
  EXPECT_EQ(DiagnosticsFileName(7), "DIAGNOSTICS-000007.json");
  ASSERT_TRUE(ParseDiagnosticsFileName("DIAGNOSTICS-000007.json", &seq));
  EXPECT_EQ(seq, 7u);
  // Unpadded digits (hand-renamed files) still parse.
  ASSERT_TRUE(ParseDiagnosticsFileName("DIAGNOSTICS-12345678.json", &seq));
  EXPECT_EQ(seq, 12345678u);
}

TEST(DiagnosticsNameTest, ZeroPaddingSortsLexically) {
  // Lexical order of generated names == numeric order, so `ls` and
  // ListDiagnosticsDumps agree on which dump is newest.
  EXPECT_LT(DiagnosticsFileName(9), DiagnosticsFileName(10));
  EXPECT_LT(DiagnosticsFileName(99), DiagnosticsFileName(100));
}

TEST(DiagnosticsNameTest, RejectsNonDumpNames) {
  uint64_t seq = 0;
  EXPECT_FALSE(ParseDiagnosticsFileName("DIAGNOSTICS-.json", &seq));
  EXPECT_FALSE(ParseDiagnosticsFileName("DIAGNOSTICS-12a.json", &seq));
  EXPECT_FALSE(ParseDiagnosticsFileName("DIAGNOSTICS-1.txt", &seq));
  EXPECT_FALSE(ParseDiagnosticsFileName("METRICS.json", &seq));
  EXPECT_FALSE(ParseDiagnosticsFileName("data.odb", &seq));
  // The atomic-write temp must never be mistaken for a finished dump.
  EXPECT_FALSE(ParseDiagnosticsFileName("DIAGNOSTICS-000001.json.tmp", &seq));
}

// --- Manual dumps ---------------------------------------------------------

class DiagnosticsTest : public DatabaseFixture {
 protected:
  void SetUp() override {
    DatabaseFixture::SetUp();
    SetUpRawType();
  }
};

TEST_F(DiagnosticsTest, ManualDumpIsWellFormedAndComplete) {
  VersionId v = MustPnew("payload");
  ASSERT_OK(db_->UpdateLatest(v.oid, Slice("payload v2")));

  auto path = db_->DumpDiagnostics();
  ASSERT_OK(path.status());
  EXPECT_EQ(*path, "/db/" + DiagnosticsFileName(1));

  auto doc = ReadDiagnosticsFile(&env_, *path);
  ASSERT_OK(doc.status());
  std::string error;
  ASSERT_TRUE(IsWellFormedJson(*doc, &error)) << error;

  EXPECT_EQ(FindJsonNumber(*doc, "schema"), 1.0);
  EXPECT_EQ(FindJsonString(*doc, "trigger"), "manual");
  EXPECT_EQ(FindJsonNumber(*doc, "seq"), 1.0);
  EXPECT_EQ(FindJsonString(*doc, "state"), "ok");

  // Every layer's section made it into the document.
  for (const char* key :
       {"health", "poison", "wal", "recovery", "latches", "buffer_pool",
        "caches", "vacuum", "tracer", "event_log", "metrics"}) {
    EXPECT_NE(doc->find("\"" + std::string(key) + "\":"), std::string::npos)
        << "missing section: " << key;
  }

  // The engine journaled the workload: commits appear in the embedded
  // journal, and the dump stamped itself in as the newest (health) record.
  EXPECT_NE(doc->find("\"type\":\"txn_commit\""), std::string::npos);
  EXPECT_NE(doc->find("\"type\":\"health\""), std::string::npos);

  // Watermarks are internally ordered even on a healthy database.
  const double enqueued = *FindJsonNumber(*doc, "enqueued_txn");
  const double appended = *FindJsonNumber(*doc, "appended_txn");
  const double durable = *FindJsonNumber(*doc, "durable_txn");
  EXPECT_LE(durable, appended);
  EXPECT_LE(appended, enqueued);
}

TEST_F(DiagnosticsTest, DumpSequenceIncrementsAndRetentionPrunes) {
  // MakeOptions default diagnostics_retain is 8; override via reopen.
  db_.reset();
  DatabaseOptions options = MakeOptions();
  options.diagnostics_retain = 2;
  auto reopened = Database::Open(options);
  ASSERT_OK(reopened.status());
  db_ = std::move(*reopened);

  for (int i = 0; i < 4; ++i) {
    auto path = db_->DumpDiagnostics("manual");
    ASSERT_OK(path.status());
  }
  auto dumps = ListDiagnosticsDumps(&env_, "/db");
  ASSERT_OK(dumps.status());
  ASSERT_EQ(dumps->size(), 2u);  // Newest two survive the sweep.
  EXPECT_EQ((*dumps)[0].first, 3u);
  EXPECT_EQ((*dumps)[1].first, 4u);
  // The evicted dumps are really gone.
  EXPECT_FALSE(env_.FileExists("/db/" + DiagnosticsFileName(1)));
  EXPECT_FALSE(env_.FileExists("/db/" + DiagnosticsFileName(2)));
}

// --- Poison-triggered dumps ----------------------------------------------

TEST(DiagnosticsPoisonTest, PoisonExportsDumpAutomatically) {
  FaultInjectionEnv env(nullptr);
  DatabaseOptions options;
  options.storage.env = &env;
  options.storage.path = "/db";

  {
    auto db = Database::Open(options);
    ASSERT_OK(db.status());
    auto type_id = (*db)->RegisterType("raw");
    ASSERT_OK(type_id.status());
    ASSERT_OK((*db)->PnewRaw(*type_id, Slice("before")).status());

    // Journal the injection into the database's own flight recorder, then
    // fail exactly one WAL fsync (non-sticky: the disk "recovers", so the
    // dump write itself succeeds).
    env.set_event_log(&(*db)->event_log());
    env.FailNth(FaultOp::kSync, 0, Status::IOError("injected sync failure"),
                /*sticky=*/false);
    auto poisoned_write = (*db)->PnewRaw(*type_id, Slice("victim"));
    EXPECT_FALSE(poisoned_write.ok());
    EXPECT_EQ((*db)->HealthCheck().state, HealthState::kPoisoned);
    env.set_event_log(nullptr);
  }  // Close: the engine owes (and fires) the poison diagnostics dump.

  auto dumps = ListDiagnosticsDumps(&env, "/db");
  ASSERT_OK(dumps.status());
  ASSERT_EQ(dumps->size(), 1u);
  auto doc = ReadDiagnosticsFile(&env, "/db/" + (*dumps)[0].second);
  ASSERT_OK(doc.status());
  std::string error;
  ASSERT_TRUE(IsWellFormedJson(*doc, &error)) << error;

  EXPECT_EQ(FindJsonString(*doc, "trigger"), "poison");
  EXPECT_EQ(FindJsonString(*doc, "state"), "poisoned");
  EXPECT_NE(doc->find("\"poisoned\":true"), std::string::npos);
  EXPECT_NE(doc->find("injected sync failure"), std::string::npos);
  // The injected fault that felled the engine is in the journal...
  EXPECT_NE(doc->find("\"type\":\"fault_injection\""), std::string::npos);
  // ...as is the poison itself.
  EXPECT_NE(doc->find("\"type\":\"poison\""), std::string::npos);
}

// --- HealthCheck ----------------------------------------------------------

class HealthTest : public DatabaseFixture {};

TEST_F(HealthTest, FreshDatabaseIsOk) {
  const HealthReport report = db_->HealthCheck();
  EXPECT_EQ(report.state, HealthState::kOk);
  EXPECT_TRUE(report.reasons.empty());
}

TEST_F(HealthTest, WalBacklogDegrades) {
  db_.reset();
  DatabaseOptions options = MakeOptions();
  // One byte of WAL backlog already exceeds the limit; the checkpointer is
  // effectively never "caught up".
  options.storage.health_max_wal_backlog_bytes = 1;
  // Keep the automatic checkpointer from erasing the backlog mid-assert.
  options.storage.checkpoint_wal_bytes = 1ull << 40;
  auto db = Database::Open(options);
  ASSERT_OK(db.status());
  db_ = std::move(*db);
  SetUpRawType();
  MustPnew("enough bytes to out-size the one-byte backlog limit");

  const HealthReport report = db_->HealthCheck();
  EXPECT_EQ(report.state, HealthState::kDegraded);
  ASSERT_FALSE(report.reasons.empty());
  EXPECT_NE(report.reasons[0].find("wal backlog"), std::string::npos);
}

// --- Slow-op journaling ---------------------------------------------------

TEST(SlowOpTest, ThresholdZeroDisablesSlowOpEvents) {
  MemEnv env;
  DatabaseOptions options;
  options.storage.env = &env;
  options.storage.path = "/db";
  auto db = Database::Open(options);
  ASSERT_OK(db.status());
  auto type_id = (*db)->RegisterType("raw");
  ASSERT_OK(type_id.status());
  auto vid = (*db)->PnewRaw(*type_id, Slice("payload"));
  ASSERT_OK(vid.status());
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK((*db)->ReadVersion(*vid).status());
  }
  std::vector<EventRecord> events;
  (*db)->event_log().Snapshot(&events);
  for (const EventRecord& e : events) {
    EXPECT_NE(e.type, EventType::kSlowOp);
  }
}

TEST(SlowOpTest, SlowDerefAndCommitAreJournaled) {
  MemEnv env;
  DatabaseOptions options;
  options.storage.env = &env;
  options.storage.path = "/db";
  // 1us thresholds: every real commit (WAL append + fsync) and cold deref
  // (catalog walk + payload materialization) takes longer than this.
  options.slow_deref_us = 1;
  options.storage.slow_commit_us = 1;
  auto db = Database::Open(options);
  ASSERT_OK(db.status());
  auto type_id = (*db)->RegisterType("raw");
  ASSERT_OK(type_id.status());
  auto vid = (*db)->PnewRaw(*type_id, Slice(std::string(64 * 1024, 'p')));
  ASSERT_OK(vid.status());
  ASSERT_OK((*db)->ReadVersion(*vid).status());

  std::vector<EventRecord> events;
  (*db)->event_log().Snapshot(&events);
  bool saw_deref = false, saw_commit = false;
  for (const EventRecord& e : events) {
    if (e.type != EventType::kSlowOp) continue;
    EXPECT_EQ(e.severity, EventSeverity::kWarn);
    EXPECT_GT(e.a, e.b);  // duration_us > threshold_us.
    if (std::string_view(e.detail) == "slow.deref_version") saw_deref = true;
    if (std::string_view(e.detail) == "slow.commit") saw_commit = true;
  }
  EXPECT_TRUE(saw_deref);
  EXPECT_TRUE(saw_commit);
}

// --- METRICS.json exporter ------------------------------------------------

TEST(MetricsExportTest, ExporterWritesAtOpenAndClose) {
  MemEnv env;
  DatabaseOptions options;
  options.storage.env = &env;
  options.storage.path = "/db";
  options.stats_export_interval_ms = 60000;  // Open/close exports only.
  const std::string metrics_path =
      "/db/" + std::string(kMetricsExportFileName);
  {
    auto db = Database::Open(options);
    ASSERT_OK(db.status());
    // The opening export is synchronous: the file exists before Open
    // returns, so `ode_top` pointed at a fresh database sees data.
    ASSERT_TRUE(env.FileExists(metrics_path));
    auto at_open = ReadDiagnosticsFile(&env, metrics_path);
    ASSERT_OK(at_open.status());
    std::string error;
    ASSERT_TRUE(IsWellFormedJson(*at_open, &error)) << error;
    const auto ts_open = FindJsonNumber(*at_open, "ts_micros");
    ASSERT_TRUE(ts_open.has_value());

    auto type_id = (*db)->RegisterType("raw");
    ASSERT_OK(type_id.status());
    ASSERT_OK((*db)->PnewRaw(*type_id, Slice("payload")).status());
  }
  // The closing export captured the workload's counters.
  auto at_close = ReadDiagnosticsFile(&env, metrics_path);
  ASSERT_OK(at_close.status());
  std::string error;
  ASSERT_TRUE(IsWellFormedJson(*at_close, &error)) << error;
  EXPECT_NE(at_close->find("\"counters\":"), std::string::npos);
  const auto commits = FindJsonNumber(*at_close, "txn.commits");
  ASSERT_TRUE(commits.has_value());
  EXPECT_GE(*commits, 1.0);
}

TEST(MetricsExportTest, DisabledExporterWritesNothing) {
  MemEnv env;
  DatabaseOptions options;
  options.storage.env = &env;
  options.storage.path = "/db";  // stats_export_interval_ms defaults to 0.
  {
    auto db = Database::Open(options);
    ASSERT_OK(db.status());
  }
  EXPECT_FALSE(env.FileExists("/db/" + std::string(kMetricsExportFileName)));
}

// --- Engine journaling through Database::event_log() ----------------------

TEST_F(DiagnosticsTest, EngineActivityIsJournaled) {
  VersionId v = MustPnew("a");
  ASSERT_OK(db_->UpdateLatest(v.oid, Slice("b")));
  ASSERT_OK(db_->Checkpoint());

  std::vector<EventRecord> events;
  db_->event_log().Snapshot(&events);
  bool saw_begin = false, saw_commit = false, saw_batch = false,
       saw_checkpoint = false;
  for (const EventRecord& e : events) {
    switch (e.type) {
      case EventType::kTxnBegin: saw_begin = true; break;
      case EventType::kTxnCommit: saw_commit = true; break;
      case EventType::kGroupCommitBatch: saw_batch = true; break;
      case EventType::kCheckpoint: saw_checkpoint = true; break;
      default: break;
    }
  }
  EXPECT_TRUE(saw_begin);
  EXPECT_TRUE(saw_commit);
  EXPECT_TRUE(saw_batch);
  EXPECT_TRUE(saw_checkpoint);
}

TEST_F(DiagnosticsTest, EventLogDisabledViaOptions) {
  db_.reset();
  DatabaseOptions options = MakeOptions();
  options.event_log_enabled = false;
  auto db = Database::Open(options);
  ASSERT_OK(db.status());
  db_ = std::move(*db);
  SetUpRawType();
  MustPnew("x");

  std::vector<EventRecord> events;
  db_->event_log().Snapshot(&events);
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(db_->event_log().total_recorded(), 0u);
}

}  // namespace
}  // namespace ode
