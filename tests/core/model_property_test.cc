#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "core/database.h"
#include "tests/testing/db_fixture.h"
#include "util/random.h"

namespace ode {
namespace {

/// In-memory reference model of the paper's versioning semantics.
struct ModelVersion {
  std::string payload;
  VersionNum derived_from = kNoVersion;
};

struct ModelObject {
  std::map<VersionNum, ModelVersion> versions;  // Keyed by vnum (temporal).
  VersionNum next_vnum = kFirstVersion;

  VersionNum latest() const { return versions.rbegin()->first; }
};

struct Model {
  std::map<uint64_t, ModelObject> objects;  // Keyed by oid value.
};

struct SweepParam {
  uint64_t seed;
  int ops;
  PayloadKind strategy;
  uint32_t keyframe;
};

/// Differential test: a random operation stream applied both to the real
/// database and to the reference model, with full-state comparison.
class ModelPropertyTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ModelPropertyTest, DatabaseMatchesReferenceModel) {
  const SweepParam param = GetParam();
  MemEnv env;
  LogicalClock clock;
  DatabaseOptions options;
  options.storage.env = &env;
  options.storage.path = "/db";
  options.clock = &clock;
  options.payload_strategy = param.strategy;
  options.delta_keyframe_interval = param.keyframe;
  auto db_or = Database::Open(options);
  ASSERT_TRUE(db_or.ok());
  auto db = std::move(*db_or);
  auto type = db->RegisterType("raw");
  ASSERT_TRUE(type.ok());

  Random rng(param.seed);
  Model model;

  auto random_oid = [&]() -> uint64_t {
    auto it = model.objects.begin();
    std::advance(it, rng.Uniform(model.objects.size()));
    return it->first;
  };
  auto random_vnum = [&](const ModelObject& obj) -> VersionNum {
    auto it = obj.versions.begin();
    std::advance(it, rng.Uniform(obj.versions.size()));
    return it->first;
  };

  for (int op = 0; op < param.ops; ++op) {
    const int action = static_cast<int>(rng.Uniform(100));
    if (model.objects.empty() || action < 15) {
      // pnew
      const std::string payload = rng.NextBytes(rng.Range(0, 600));
      auto vid = db->PnewRaw(*type, Slice(payload));
      ASSERT_TRUE(vid.ok()) << vid.status();
      ModelObject obj;
      obj.versions[kFirstVersion] = ModelVersion{payload, kNoVersion};
      obj.next_vnum = kFirstVersion + 1;
      ASSERT_EQ(model.objects.count(vid->oid.value), 0u);
      model.objects[vid->oid.value] = std::move(obj);
    } else if (action < 40) {
      // newversion from a random existing version.
      const uint64_t oid = random_oid();
      ModelObject& obj = model.objects[oid];
      const VersionNum base = random_vnum(obj);
      auto vid = db->NewVersionFrom(VersionId{ObjectId{oid}, base});
      ASSERT_TRUE(vid.ok()) << vid.status();
      ASSERT_EQ(vid->vnum, obj.next_vnum);
      obj.versions[vid->vnum] =
          ModelVersion{obj.versions[base].payload, base};
      obj.next_vnum = vid->vnum + 1;
    } else if (action < 60) {
      // update a random version (mutate a copy of its payload).
      const uint64_t oid = random_oid();
      ModelObject& obj = model.objects[oid];
      const VersionNum target = random_vnum(obj);
      std::string payload = obj.versions[target].payload;
      if (payload.empty() || rng.OneIn(4)) {
        payload = rng.NextBytes(rng.Range(0, 600));
      } else {
        payload[rng.Uniform(payload.size())] ^= 0x11;
      }
      ASSERT_OK(
          db->UpdateVersion(VersionId{ObjectId{oid}, target}, Slice(payload)));
      obj.versions[target].payload = payload;
    } else if (action < 75) {
      // pdelete a random version (with re-parenting in the model).
      const uint64_t oid = random_oid();
      ModelObject& obj = model.objects[oid];
      const VersionNum target = random_vnum(obj);
      ASSERT_OK(db->PdeleteVersion(VersionId{ObjectId{oid}, target}));
      const VersionNum parent = obj.versions[target].derived_from;
      obj.versions.erase(target);
      for (auto& [vnum, version] : obj.versions) {
        if (version.derived_from == target) version.derived_from = parent;
      }
      if (obj.versions.empty()) model.objects.erase(oid);
    } else if (action < 80) {
      // pdelete a whole object.
      const uint64_t oid = random_oid();
      ASSERT_OK(db->PdeleteObject(ObjectId{oid}));
      model.objects.erase(oid);
    } else if (action < 90) {
      // Read a random version and compare.
      const uint64_t oid = random_oid();
      ModelObject& obj = model.objects[oid];
      const VersionNum target = random_vnum(obj);
      auto bytes = db->ReadVersion(VersionId{ObjectId{oid}, target});
      ASSERT_TRUE(bytes.ok()) << bytes.status();
      ASSERT_EQ(*bytes, obj.versions[target].payload);
    } else {
      // Read latest and compare.
      const uint64_t oid = random_oid();
      ModelObject& obj = model.objects[oid];
      VersionId resolved;
      auto bytes = db->ReadLatest(ObjectId{oid}, &resolved);
      ASSERT_TRUE(bytes.ok()) << bytes.status();
      ASSERT_EQ(resolved.vnum, obj.latest());
      ASSERT_EQ(*bytes, obj.versions[obj.latest()].payload);
    }
  }

  // Full-state comparison: every object, every version, every relationship.
  auto cluster = db->ClusterScan(*type);
  ASSERT_TRUE(cluster.ok());
  ASSERT_EQ(cluster->size(), model.objects.size());
  for (const auto& [oid_value, obj] : model.objects) {
    const ObjectId oid{oid_value};
    auto header = db->Header(oid);
    ASSERT_TRUE(header.ok()) << header.status();
    EXPECT_EQ(header->version_count, obj.versions.size());
    EXPECT_EQ(header->latest, obj.latest());
    auto versions = db->VersionsOf(oid);
    ASSERT_TRUE(versions.ok());
    ASSERT_EQ(versions->size(), obj.versions.size());
    size_t idx = 0;
    for (const auto& [vnum, version] : obj.versions) {
      const VersionId vid{oid, vnum};
      EXPECT_EQ((*versions)[idx++], vid);
      auto bytes = db->ReadVersion(vid);
      ASSERT_TRUE(bytes.ok()) << bytes.status();
      EXPECT_EQ(*bytes, version.payload) << vid;
      auto dprev = db->Dprevious(vid);
      ASSERT_TRUE(dprev.ok());
      if (version.derived_from == kNoVersion) {
        EXPECT_FALSE(dprev->has_value()) << vid;
      } else {
        ASSERT_TRUE(dprev->has_value()) << vid;
        EXPECT_EQ(dprev->value().vnum, version.derived_from) << vid;
      }
    }
    // Temporal chain: Tprevious walks the sorted vnum sequence.
    std::optional<VersionNum> prev;
    for (const auto& [vnum, version] : obj.versions) {
      auto tprev = db->Tprevious(VersionId{oid, vnum});
      ASSERT_TRUE(tprev.ok());
      if (!prev.has_value()) {
        EXPECT_FALSE(tprev->has_value());
      } else {
        ASSERT_TRUE(tprev->has_value());
        EXPECT_EQ(tprev->value().vnum, *prev);
      }
      prev = vnum;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelPropertyTest,
    ::testing::Values(
        SweepParam{101, 600, PayloadKind::kFull, 16},
        SweepParam{102, 600, PayloadKind::kDelta, 16},
        SweepParam{103, 600, PayloadKind::kDelta, 2},
        SweepParam{104, 1200, PayloadKind::kFull, 16},
        SweepParam{105, 1200, PayloadKind::kDelta, 4},
        SweepParam{106, 300, PayloadKind::kDelta, 1}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_" +
             (info.param.strategy == PayloadKind::kFull ? "full" : "delta") +
             "_kf" + std::to_string(info.param.keyframe);
    });

}  // namespace
}  // namespace ode
