#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/check.h"
#include "core/database.h"
#include "tests/testing/db_fixture.h"
#include "util/random.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;

/// Chain length of the version at chain position `pos` under the skip
/// topology: each delta targets the ancestor at pos & (pos - 1), so the
/// number of links back to the keyframe is the population count.
uint32_t SkipChainBound(uint32_t pos) {
  uint32_t bits = 0;
  for (uint32_t v = pos; v != 0; v &= v - 1) ++bits;
  return bits;
}

/// Worst-case skip-chain length over any position < `depth`: the widest
/// popcount a position of that magnitude can have, i.e. the bit width.
uint32_t WorstChainBelow(uint32_t depth) {
  uint32_t bits = 0;
  for (uint32_t v = depth; v != 0; v >>= 1) ++bits;
  return bits;
}

class SkipDeltaTest : public DatabaseFixture {
 protected:
  DatabaseOptions MakeOptions() override {
    DatabaseOptions options = DatabaseFixture::MakeOptions();
    options.payload_strategy = PayloadKind::kDelta;
    options.delta_topology = DeltaTopology::kSkip;
    // No keyframe forcing: the topology alone must bound dereference cost.
    options.delta_keyframe_interval = 1u << 20;
    options.payload_cache_bytes = 0;  // Every read walks the real chain.
    return options;
  }

  /// Builds a `depth`-version history by successive small edits; returns the
  /// version ids in chain order (index 0 = initial full version).
  std::vector<VersionId> BuildChain(int depth, std::string* final_payload) {
    std::vector<VersionId> chain;
    Random rng(42);
    std::string payload = rng.NextBytes(2048);
    chain.push_back(MustPnew(payload));
    payloads_.push_back(payload);
    for (int i = 1; i < depth; ++i) {
      const size_t at = rng.Uniform(payload.size());
      payload[at] = static_cast<char>(payload[at] ^ (1 + rng.Uniform(255)));
      payload += "edit " + std::to_string(i) + ";";
      auto vid = db_->NewVersionOf(chain.front().oid);
      EXPECT_TRUE(vid.ok()) << vid.status();
      EXPECT_OK(db_->UpdateVersion(*vid, Slice(payload)));
      chain.push_back(*vid);
      payloads_.push_back(payload);
    }
    if (final_payload != nullptr) *final_payload = payload;
    return chain;
  }

  std::vector<std::string> payloads_;
};

TEST_F(SkipDeltaTest, ChainLengthIsLogarithmicInDepth) {
  SetUpRawType();
  constexpr int kDepth = 300;
  std::vector<VersionId> chain = BuildChain(kDepth, nullptr);

  uint32_t max_chain = 0;
  uint64_t delta_versions = 0;
  for (int i = 0; i < kDepth; ++i) {
    auto meta = db_->Meta(chain[i]);
    ASSERT_TRUE(meta.ok()) << meta.status();
    if (meta->kind == PayloadKind::kDelta) {
      ++delta_versions;
      // Position p sits popcount(p) links from its keyframe; a delta forced
      // full (delta_max_ratio) only SHORTENS descendants' chains.
      EXPECT_LE(meta->delta_chain_len, SkipChainBound(meta->delta_pos))
          << "version " << i;
    } else {
      EXPECT_EQ(meta->delta_chain_len, 0u) << "version " << i;
    }
    max_chain = std::max(max_chain, meta->delta_chain_len);
  }
  // The topology must actually be storing deltas...
  EXPECT_GT(delta_versions, static_cast<uint64_t>(kDepth) / 2);
  // ...and the deepest chain must be logarithmic, not linear.
  EXPECT_LE(max_chain, WorstChainBelow(kDepth));  // <= 9 for depth 300.
  EXPECT_GT(max_chain, 1u);
}

TEST_F(SkipDeltaTest, ColdReadsMaterializeEveryDepthCorrectly) {
  SetUpRawType();
  constexpr int kDepth = 128;
  std::vector<VersionId> chain = BuildChain(kDepth, nullptr);
  ReopenDb();  // Drop all caches: reads below walk real skip chains.
  for (int i = 0; i < kDepth; ++i) {
    EXPECT_EQ(MustRead(chain[i]), payloads_[i]) << "depth " << i;
  }
  auto report = CheckDatabase(*db_);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << report->errors.front();
}

TEST_F(SkipDeltaTest, DeletingSkipAncestorRematerializesDependents) {
  SetUpRawType();
  constexpr int kDepth = 48;
  std::vector<VersionId> chain = BuildChain(kDepth, nullptr);
  // Delete versions other chains delta against, including the keyframe's
  // immediate successors and a power-of-two position (a popular skip base).
  for (int victim : {1, 16, 32, 33}) {
    ASSERT_OK(db_->PdeleteVersion(chain[victim]));
  }
  for (int i = 0; i < kDepth; ++i) {
    if (i == 1 || i == 16 || i == 32 || i == 33) continue;
    EXPECT_EQ(MustRead(chain[i]), payloads_[i]) << "depth " << i;
  }
  auto report = CheckDatabase(*db_);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << report->errors.front();
}

/// Same workload under the linear topology: chains grow with depth, which is
/// exactly the behaviour kSkip exists to avoid.
class LinearDeltaTest : public SkipDeltaTest {
 protected:
  DatabaseOptions MakeOptions() override {
    DatabaseOptions options = SkipDeltaTest::MakeOptions();
    options.delta_topology = DeltaTopology::kLinear;
    options.delta_keyframe_interval = 64;
    return options;
  }
};

TEST_F(LinearDeltaTest, ChainsGrowLinearlyBetweenKeyframes) {
  SetUpRawType();
  constexpr int kDepth = 200;
  std::vector<VersionId> chain = BuildChain(kDepth, nullptr);
  uint32_t max_chain = 0;
  for (const VersionId& vid : chain) {
    auto meta = db_->Meta(vid);
    ASSERT_TRUE(meta.ok()) << meta.status();
    max_chain = std::max(max_chain, meta->delta_chain_len);
  }
  // Deep linear chains (up to the keyframe interval), where skip stays ~log.
  EXPECT_GT(max_chain, WorstChainBelow(kDepth));
  EXPECT_LE(max_chain, 64u);
  for (int i = 0; i < kDepth; ++i) {
    EXPECT_EQ(MustRead(chain[i]), payloads_[i]) << "depth " << i;
  }
  auto report = CheckDatabase(*db_);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << report->errors.front();
}

}  // namespace
}  // namespace ode
