#include "core/check.h"
#include "storage/fault_env.h"

#include <gtest/gtest.h>

#include "tests/testing/db_fixture.h"
#include "util/random.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;

class CheckTest : public DatabaseFixture {
 protected:
  void SetUp() override {
    DatabaseFixture::SetUp();
    SetUpRawType();
  }

  void ExpectConsistent() {
    auto report = CheckDatabase(*db_);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_TRUE(report->ok()) << report->errors.front();
  }
};

TEST_F(CheckTest, EmptyDatabaseIsConsistent) {
  auto report = CheckDatabase(*db_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());
  EXPECT_EQ(report->objects_checked, 0u);
}

TEST_F(CheckTest, SimpleGraphIsConsistent) {
  VersionId v0 = MustPnew("v0");
  auto v1 = db_->NewVersionFrom(v0);
  auto v2 = db_->NewVersionFrom(v0);
  ASSERT_TRUE(v1.ok() && v2.ok());
  auto report = CheckDatabase(*db_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());
  EXPECT_EQ(report->objects_checked, 1u);
  EXPECT_EQ(report->versions_checked, 3u);
}

TEST_F(CheckTest, ConsistentAfterHeavyChurn) {
  Random rng(1);
  std::vector<VersionId> pool;
  for (int op = 0; op < 400; ++op) {
    if (pool.empty() || rng.OneIn(4)) {
      pool.push_back(MustPnew(rng.NextBytes(rng.Range(0, 500))));
    } else {
      VersionId base = pool[rng.Uniform(pool.size())];
      auto exists = db_->VersionExists(base);
      ASSERT_TRUE(exists.ok());
      if (!*exists) continue;
      switch (rng.Uniform(3)) {
        case 0: {
          auto vid = db_->NewVersionFrom(base);
          ASSERT_TRUE(vid.ok());
          pool.push_back(*vid);
          break;
        }
        case 1:
          ASSERT_OK(db_->UpdateVersion(base, Slice(rng.NextBytes(300))));
          break;
        case 2:
          ASSERT_OK(db_->PdeleteVersion(base));
          break;
      }
    }
  }
  ExpectConsistent();
}

TEST_F(CheckTest, ConsistentWithDeltaStrategyAfterChurn) {
  db_.reset();
  DatabaseOptions options = MakeOptions();
  options.payload_strategy = PayloadKind::kDelta;
  options.delta_keyframe_interval = 3;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  db_ = std::move(*db);
  SetUpRawType();

  Random rng(2);
  VersionId current = MustPnew(rng.NextBytes(2000));
  for (int i = 0; i < 50; ++i) {
    auto next = db_->NewVersionFrom(current);
    ASSERT_TRUE(next.ok());
    if (rng.OneIn(3)) {
      ASSERT_OK(db_->UpdateVersion(*next, Slice(rng.NextBytes(2000))));
    }
    if (rng.OneIn(5)) {
      ASSERT_OK(db_->PdeleteVersion(current));
    }
    current = *next;
  }
  ExpectConsistent();
}

TEST_F(CheckTest, ConsistentAfterCrashRecovery) {
  // Re-create the fixture over a fault env, crash mid-transaction, verify.
  FaultInjectionEnv fault_env(nullptr);
  DatabaseOptions options;
  options.storage.env = &fault_env;
  options.storage.path = "/crash";
  options.clock = &clock_;
  {
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    auto type = (*db)->RegisterType("raw");
    ASSERT_TRUE(type.ok());
    auto v0 = (*db)->PnewRaw(*type, Slice("committed"));
    ASSERT_TRUE(v0.ok());
    ASSERT_TRUE((*db)->NewVersionOf(v0->oid).ok());
    ASSERT_OK((*db)->Begin());
    ASSERT_TRUE((*db)->PnewRaw(*type, Slice("uncommitted")).ok());
    fault_env.CrashAndLoseUnsynced();
  }
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  auto report = CheckDatabase(**db);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->errors.front();
  EXPECT_EQ(report->objects_checked, 1u);
  EXPECT_EQ(report->versions_checked, 2u);
}

TEST_F(CheckTest, CountsPayloadBytes) {
  MustPnew(std::string(1000, 'a'));
  MustPnew(std::string(500, 'b'));
  auto report = CheckDatabase(*db_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->payload_bytes, 1500u);
}

}  // namespace
}  // namespace ode
