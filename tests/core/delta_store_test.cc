#include <gtest/gtest.h>

#include "core/database.h"
#include "tests/testing/db_fixture.h"
#include "util/random.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;

/// Tests of the delta payload strategy (SCCS/RCS-style storage along the
/// derived-from relationship, §2 of the paper).
class DeltaStoreTest : public DatabaseFixture {
 protected:
  DatabaseOptions MakeOptions() override {
    DatabaseOptions options = DatabaseFixture::MakeOptions();
    options.payload_strategy = PayloadKind::kDelta;
    options.delta_keyframe_interval = 4;
    return options;
  }

  void SetUp() override {
    DatabaseFixture::SetUp();
    SetUpRawType();
  }
};

TEST_F(DeltaStoreTest, NewVersionStoresDelta) {
  VersionId v0 = MustPnew(std::string(2000, 'a'));
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  auto meta = db_->Meta(*v1);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->kind, PayloadKind::kDelta);
  EXPECT_EQ(meta->delta_base, v0.vnum);
  EXPECT_EQ(meta->delta_chain_len, 1u);
  EXPECT_EQ(MustRead(*v1), std::string(2000, 'a'));
}

TEST_F(DeltaStoreTest, RootVersionIsAlwaysFull) {
  VersionId v0 = MustPnew("root");
  auto meta = db_->Meta(v0);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->kind, PayloadKind::kFull);
}

TEST_F(DeltaStoreTest, KeyframeBoundsChainLength) {
  VersionId current = MustPnew(std::string(1000, 'k'));
  for (int i = 0; i < 20; ++i) {
    auto next = db_->NewVersionFrom(current);
    ASSERT_TRUE(next.ok());
    auto meta = db_->Meta(*next);
    ASSERT_TRUE(meta.ok());
    EXPECT_LE(meta->delta_chain_len, 4u) << "at depth " << i;
    current = *next;
  }
  EXPECT_EQ(MustRead(current), std::string(1000, 'k'));
}

TEST_F(DeltaStoreTest, SmallEditsStoredAsSmallDeltas) {
  Random rng(9);
  std::string content = rng.NextBytes(8000);
  VersionId v0 = MustPnew(content);
  const uint64_t full_bytes_before = db_->stats().full_bytes_written;
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  content[100] ^= 0x20;  // One-byte edit.
  ASSERT_OK(db_->UpdateVersion(*v1, Slice(content)));
  EXPECT_EQ(db_->stats().full_bytes_written, full_bytes_before)
      << "the edit should have been stored as a delta";
  EXPECT_EQ(MustRead(*v1), content);
  EXPECT_EQ(MustRead(v0).size(), 8000u);
}

TEST_F(DeltaStoreTest, DissimilarUpdateFallsBackToFull) {
  Random rng(10);
  VersionId v0 = MustPnew(rng.NextBytes(4000));
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  const std::string unrelated = rng.NextBytes(4000);
  ASSERT_OK(db_->UpdateVersion(*v1, Slice(unrelated)));
  auto meta = db_->Meta(*v1);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->kind, PayloadKind::kFull)
      << "a delta bigger than the ratio limit must be stored full";
  EXPECT_EQ(MustRead(*v1), unrelated);
}

TEST_F(DeltaStoreTest, UpdatingDeltaBaseRematerializesChildren) {
  Random rng(11);
  const std::string original = rng.NextBytes(3000);
  VersionId v0 = MustPnew(original);
  auto v1 = db_->NewVersionOf(v0.oid);  // Delta on v0.
  ASSERT_TRUE(v1.ok());
  // Rewrite v0 entirely: v1 must still read as `original`.
  ASSERT_OK(db_->UpdateVersion(v0, Slice("completely new v0")));
  EXPECT_EQ(MustRead(*v1), original);
  auto meta = db_->Meta(*v1);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->kind, PayloadKind::kFull);
}

TEST_F(DeltaStoreTest, DeletingDeltaBasePreservesChildren) {
  Random rng(12);
  const std::string original = rng.NextBytes(3000);
  VersionId v0 = MustPnew(original);
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  auto v2 = db_->NewVersionFrom(v0);
  ASSERT_TRUE(v2.ok());
  ASSERT_OK(db_->PdeleteVersion(v0));
  EXPECT_EQ(MustRead(*v1), original);
  EXPECT_EQ(MustRead(*v2), original);
}

TEST_F(DeltaStoreTest, BranchedDeltasMaterializeIndependently) {
  Random rng(13);
  std::string base = rng.NextBytes(5000);
  VersionId v0 = MustPnew(base);
  auto v1 = db_->NewVersionFrom(v0);
  auto v2 = db_->NewVersionFrom(v0);
  ASSERT_TRUE(v1.ok() && v2.ok());
  std::string alt1 = base;
  alt1.replace(100, 10, "ALTERNATE1");
  std::string alt2 = base;
  alt2.replace(4000, 10, "ALTERNATE2");
  ASSERT_OK(db_->UpdateVersion(*v1, Slice(alt1)));
  ASSERT_OK(db_->UpdateVersion(*v2, Slice(alt2)));
  EXPECT_EQ(MustRead(*v1), alt1);
  EXPECT_EQ(MustRead(*v2), alt2);
  EXPECT_EQ(MustRead(v0), base);
}

TEST_F(DeltaStoreTest, DeltaWritesFarSmallerThanFullCopies) {
  // The headline storage claim: N versions of a large object with small
  // edits cost far less under delta storage than N full copies would.
  Random rng(14);
  std::string content = rng.NextBytes(16384);
  VersionId current = MustPnew(content);
  const ObjectId oid = current.oid;
  for (int i = 0; i < 16; ++i) {
    auto next = db_->NewVersionOf(oid);
    ASSERT_TRUE(next.ok());
    content[rng.Uniform(content.size())] ^= 1;
    ASSERT_OK(db_->UpdateLatest(oid, Slice(content)));
    current = *next;
  }
  const VersionStats& stats = db_->stats();
  // Full bytes: the root version + periodic keyframes.  Delta bytes: the
  // rest.  Together they must be far below 17 full copies.
  const uint64_t total = stats.full_bytes_written + stats.delta_bytes_written;
  EXPECT_LT(total, 17u * 16384u / 2);
  EXPECT_EQ(MustRead(current), content);
}

TEST_F(DeltaStoreTest, StatsDistinguishFullAndDelta) {
  VersionId v0 = MustPnew(std::string(1000, 'z'));
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  const VersionStats& after_create = db_->stats();
  EXPECT_GE(after_create.full_payloads_written, 1u);
  EXPECT_GE(after_create.delta_payloads_written, 1u);
  // newversion takes the identity-delta fast path: NO materialization.
  EXPECT_EQ(after_create.materializations, 0u);
  // Reading the delta version materializes through the chain.
  EXPECT_EQ(MustRead(*v1), std::string(1000, 'z'));
  EXPECT_GT(db_->stats().materializations, 0u);
  EXPECT_GT(db_->stats().delta_applications, 0u);
}

/// The full-copy strategy (default) never writes deltas.
class FullCopyStoreTest : public DatabaseFixture {
 protected:
  void SetUp() override {
    DatabaseFixture::SetUp();
    SetUpRawType();
  }
};

TEST_F(FullCopyStoreTest, AllPayloadsAreFull) {
  VersionId v0 = MustPnew(std::string(500, 'f'));
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  auto v2 = db_->NewVersionFrom(*v1);
  ASSERT_TRUE(v2.ok());
  for (VersionId vid : {v0, *v1, *v2}) {
    auto meta = db_->Meta(vid);
    ASSERT_TRUE(meta.ok());
    EXPECT_EQ(meta->kind, PayloadKind::kFull);
  }
  EXPECT_EQ(db_->stats().delta_payloads_written, 0u);
}

}  // namespace
}  // namespace ode
