#include "core/codec.h"

#include <gtest/gtest.h>

#include "tests/testing/db_fixture.h"

namespace ode {
namespace {

using testing_internal::Doc;

// Compile-time contract checks on the Persistable concept.
static_assert(Persistable<Doc>, "Doc satisfies the contract");
static_assert(!Persistable<int>, "scalars are not persistable");
static_assert(!Persistable<std::string>, "std types are not persistable");

struct MissingName {
  void Serialize(BufferWriter&) const {}
  static StatusOr<MissingName> Deserialize(BufferReader&) {
    return MissingName{};
  }
};
static_assert(!Persistable<MissingName>, "kTypeName is required");

struct MissingSerialize {
  static constexpr char kTypeName[] = "X";
  static StatusOr<MissingSerialize> Deserialize(BufferReader&) {
    return MissingSerialize{};
  }
};
static_assert(!Persistable<MissingSerialize>, "Serialize is required");

TEST(CodecTest, EncodeDecodeRoundTrip) {
  Doc doc{"codec payload", -99};
  const std::string bytes = EncodeObject(doc);
  auto decoded = DecodeObject<Doc>(Slice(bytes));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, doc);
}

TEST(CodecTest, DecodeRejectsTruncation) {
  Doc doc{"will be cut short", 1};
  const std::string bytes = EncodeObject(doc);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto decoded = DecodeObject<Doc>(Slice(bytes.data(), cut));
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
  }
}

TEST(CodecTest, ReferenceIdsRoundTrip) {
  BufferWriter w;
  WriteObjectId(w, ObjectId{0xdeadbeefcafeull});
  WriteVersionId(w, VersionId{ObjectId{7}, 42});
  BufferReader r(w.slice());
  ObjectId oid;
  VersionId vid;
  ASSERT_TRUE(ReadObjectId(r, &oid).ok());
  ASSERT_TRUE(ReadVersionId(r, &vid).ok());
  EXPECT_EQ(oid.value, 0xdeadbeefcafeull);
  EXPECT_EQ(vid, (VersionId{ObjectId{7}, 42}));
  EXPECT_TRUE(r.AtEnd());
}

}  // namespace
}  // namespace ode
