#include "core/meta.h"

#include <gtest/gtest.h>

#include "tests/testing/util.h"

namespace ode {
namespace {

TEST(MetaTest, ObjectHeaderRoundTrip) {
  ObjectHeader header;
  header.type_id = 7;
  header.latest = 42;
  header.next_vnum = 43;
  header.version_count = 12;
  header.created_ts = 0xabcdef0123456789ull;
  std::string encoded = header.Encode();
  ObjectHeader decoded;
  ASSERT_OK(ObjectHeader::Decode(Slice(encoded), &decoded));
  EXPECT_EQ(decoded.type_id, header.type_id);
  EXPECT_EQ(decoded.latest, header.latest);
  EXPECT_EQ(decoded.next_vnum, header.next_vnum);
  EXPECT_EQ(decoded.version_count, header.version_count);
  EXPECT_EQ(decoded.created_ts, header.created_ts);
}

TEST(MetaTest, ObjectHeaderRejectsTruncation) {
  ObjectHeader header;
  std::string encoded = header.Encode();
  ObjectHeader decoded;
  EXPECT_TRUE(ObjectHeader::Decode(Slice(encoded.data(), encoded.size() - 1),
                                   &decoded)
                  .IsCorruption());
}

TEST(MetaTest, VersionMetaRoundTrip) {
  VersionMeta meta;
  meta.vnum = 9;
  meta.derived_from = 4;
  meta.created_ts = 123456;
  meta.payload = RecordId{77, 3};
  meta.kind = PayloadKind::kDelta;
  meta.delta_base = 4;
  meta.delta_chain_len = 2;
  meta.logical_size = 4096;
  std::string encoded = meta.Encode();
  VersionMeta decoded;
  ASSERT_OK(VersionMeta::Decode(Slice(encoded), &decoded));
  EXPECT_EQ(decoded.vnum, meta.vnum);
  EXPECT_EQ(decoded.derived_from, meta.derived_from);
  EXPECT_EQ(decoded.created_ts, meta.created_ts);
  EXPECT_EQ(decoded.payload, meta.payload);
  EXPECT_EQ(decoded.kind, meta.kind);
  EXPECT_EQ(decoded.delta_base, meta.delta_base);
  EXPECT_EQ(decoded.delta_chain_len, meta.delta_chain_len);
  EXPECT_EQ(decoded.logical_size, meta.logical_size);
}

TEST(MetaTest, VersionMetaRejectsBadKind) {
  VersionMeta meta;
  std::string encoded = meta.Encode();
  // The kind byte sits after vnum(4) + derived_from(4) + ts(8) + rid(8).
  encoded[24] = 9;
  VersionMeta decoded;
  EXPECT_TRUE(VersionMeta::Decode(Slice(encoded), &decoded).IsCorruption());
}

TEST(MetaTest, VersionKeysSortByOidThenVnum) {
  // Key order must equal (oid, vnum) numeric order for temporal scans.
  EXPECT_LT(VersionKey({ObjectId{1}, 2}), VersionKey({ObjectId{1}, 10}));
  EXPECT_LT(VersionKey({ObjectId{1}, 0xffffffff}), VersionKey({ObjectId{2}, 1}));
  EXPECT_LT(VersionKey({ObjectId{255}, 1}), VersionKey({ObjectId{256}, 1}));
}

TEST(MetaTest, VersionKeyPrefixCoversAllVersions) {
  const std::string prefix = VersionKeyPrefix(ObjectId{42});
  EXPECT_TRUE(Slice(VersionKey({ObjectId{42}, 1})).starts_with(Slice(prefix)));
  EXPECT_TRUE(
      Slice(VersionKey({ObjectId{42}, 0xffffffff})).starts_with(Slice(prefix)));
  EXPECT_FALSE(Slice(VersionKey({ObjectId{43}, 1})).starts_with(Slice(prefix)));
}

TEST(MetaTest, ParseVersionKeyRoundTrip) {
  const VersionId vid{ObjectId{0x1122334455667788ull}, 0x99aabbcc};
  VersionId parsed;
  ASSERT_OK(ParseVersionKey(Slice(VersionKey(vid)), &parsed));
  EXPECT_EQ(parsed, vid);
}

TEST(MetaTest, ParseVersionKeyRejectsWrongSize) {
  VersionId parsed;
  EXPECT_TRUE(ParseVersionKey(Slice("short"), &parsed).IsCorruption());
}

TEST(MetaTest, ClusterKeysGroupByType) {
  EXPECT_LT(ClusterKey(1, ObjectId{999}), ClusterKey(2, ObjectId{1}));
  const std::string prefix = ClusterKeyPrefix(7);
  EXPECT_TRUE(Slice(ClusterKey(7, ObjectId{123})).starts_with(Slice(prefix)));
  EXPECT_FALSE(Slice(ClusterKey(8, ObjectId{123})).starts_with(Slice(prefix)));
}

TEST(MetaTest, ParseClusterKeyRoundTrip) {
  uint32_t type_id = 0;
  ObjectId oid;
  ASSERT_OK(ParseClusterKey(Slice(ClusterKey(55, ObjectId{66})), &type_id, &oid));
  EXPECT_EQ(type_id, 55u);
  EXPECT_EQ(oid.value, 66u);
}

TEST(MetaTest, ParseObjectKeyRoundTrip) {
  ObjectId oid;
  ASSERT_OK(ParseObjectKey(Slice(ObjectKey(ObjectId{1234567})), &oid));
  EXPECT_EQ(oid.value, 1234567u);
}

TEST(MetaTest, ObjectKeysSortNumerically) {
  EXPECT_LT(ObjectKey(ObjectId{255}), ObjectKey(ObjectId{256}));
  EXPECT_LT(ObjectKey(ObjectId{1}), ObjectKey(ObjectId{0x100000000ull}));
}

}  // namespace
}  // namespace ode
