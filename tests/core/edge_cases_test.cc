#include <gtest/gtest.h>

#include "core/check.h"
#include "core/cursor.h"
#include "core/database.h"
#include "core/version_ptr.h"
#include "tests/testing/db_fixture.h"
#include "util/random.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;
using testing_internal::Doc;

/// Edge-condition tests that cut across modules.
class EdgeCasesTest : public DatabaseFixture {
 protected:
  void SetUp() override {
    DatabaseFixture::SetUp();
    SetUpRawType();
  }
};

TEST_F(EdgeCasesTest, TinyBufferPoolStillCorrect) {
  // A pool far smaller than the working set forces constant eviction and
  // re-reads; correctness must not depend on residency.
  db_.reset();
  DatabaseOptions options = MakeOptions();
  options.storage.buffer_pool_pages = 8;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  db_ = std::move(*db);
  SetUpRawType();

  Random rng(1);
  std::vector<std::pair<VersionId, std::string>> data;
  for (int i = 0; i < 100; ++i) {
    std::string payload = rng.NextBytes(3000);  // ~1 page each.
    data.emplace_back(MustPnew(payload), payload);
  }
  // Read them all back, twice (second pass hits a fully evicted cache).
  for (int round = 0; round < 2; ++round) {
    for (const auto& [vid, payload] : data) {
      EXPECT_EQ(MustRead(vid), payload);
    }
  }
  auto report = CheckDatabase(*db_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());
}

TEST_F(EdgeCasesTest, PersistedClockSurvivesReopen) {
  // Without an injected clock, timestamps come from the crash-safe
  // persisted counter and must stay monotone across reopen.
  db_.reset();
  DatabaseOptions options = MakeOptions();
  options.clock = nullptr;
  {
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
  }
  SetUpRawType();
  VersionId before = MustPnew("a");
  auto meta_before = db_->Meta(before);
  ASSERT_TRUE(meta_before.ok());
  db_.reset();
  {
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
  }
  SetUpRawType();
  VersionId after = MustPnew("b");
  auto meta_after = db_->Meta(after);
  ASSERT_TRUE(meta_after.ok());
  EXPECT_GT(meta_after->created_ts, meta_before->created_ts);
}

TEST_F(EdgeCasesTest, ManyVersionsOfOneObject) {
  VersionId v0 = MustPnew("start");
  constexpr int kVersions = 2000;
  ASSERT_OK(db_->Begin());
  for (int i = 1; i < kVersions; ++i) {
    ASSERT_TRUE(db_->NewVersionOf(v0.oid).ok());
  }
  ASSERT_OK(db_->Commit());
  auto header = db_->Header(v0.oid);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->version_count, static_cast<uint32_t>(kVersions));
  auto versions = db_->VersionsOf(v0.oid);
  ASSERT_TRUE(versions.ok());
  EXPECT_EQ(versions->size(), static_cast<size_t>(kVersions));
}

TEST_F(EdgeCasesTest, ManyObjectsSingleVersionEach) {
  constexpr int kObjects = 3000;
  ASSERT_OK(db_->Begin());
  for (int i = 0; i < kObjects; ++i) {
    MustPnew("payload");
  }
  ASSERT_OK(db_->Commit());
  uint64_t count = 0;
  ObjectCursor objects(*db_);
  for (; objects.Valid(); objects.Next()) ++count;
  ASSERT_OK(objects.status());
  EXPECT_EQ(count, static_cast<uint64_t>(kObjects));
}

TEST_F(EdgeCasesTest, DeleteMiddleOfLongChainKeepsEndsReadable) {
  db_.reset();
  DatabaseOptions options = MakeOptions();
  options.payload_strategy = PayloadKind::kDelta;
  options.delta_keyframe_interval = 100;  // One long chain.
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  db_ = std::move(*db);
  SetUpRawType();

  Random rng(9);
  std::string payload = rng.NextBytes(2000);
  std::vector<VersionId> chain;
  std::vector<std::string> states;
  VersionId current = MustPnew(payload);
  chain.push_back(current);
  states.push_back(payload);
  for (int i = 0; i < 20; ++i) {
    auto next = db_->NewVersionFrom(current);
    ASSERT_TRUE(next.ok());
    payload[rng.Uniform(payload.size())] ^= 1;
    ASSERT_OK(db_->UpdateVersion(*next, Slice(payload)));
    chain.push_back(*next);
    states.push_back(payload);
    current = *next;
  }
  // Delete every other version in the middle.
  for (size_t i = 2; i + 2 < chain.size(); i += 2) {
    ASSERT_OK(db_->PdeleteVersion(chain[i]));
  }
  // Survivors still materialize their exact states.
  for (size_t i = 0; i < chain.size(); ++i) {
    if (i >= 2 && i + 2 < chain.size() && i % 2 == 0) continue;  // Deleted.
    EXPECT_EQ(MustRead(chain[i]), states[i]) << "index " << i;
  }
  auto report = CheckDatabase(*db_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->errors.front();
}

TEST_F(EdgeCasesTest, InterleavedObjectsShareNothing) {
  // Operations on interleaved objects must not bleed into each other even
  // with adjacent ids and interleaved version creation.
  VersionId a = MustPnew("a0");
  VersionId b = MustPnew("b0");
  auto a1 = db_->NewVersionOf(a.oid);
  auto b1 = db_->NewVersionOf(b.oid);
  ASSERT_TRUE(a1.ok() && b1.ok());
  ASSERT_OK(db_->UpdateVersion(*a1, Slice("a1")));
  ASSERT_OK(db_->UpdateVersion(*b1, Slice("b1")));
  ASSERT_OK(db_->PdeleteObject(a.oid));
  EXPECT_EQ(MustRead(b), "b0");
  EXPECT_EQ(MustRead(*b1), "b1");
  auto versions = db_->VersionsOf(b.oid);
  ASSERT_TRUE(versions.ok());
  EXPECT_EQ(versions->size(), 2u);
}

TEST_F(EdgeCasesTest, PayloadAtBTreeCellBoundaryGoesToHeap) {
  // Payloads of every size route through the heap file, never the catalog
  // trees; sizes around page boundaries must round-trip.
  for (size_t size : {4000u, 4096u, 8192u, 100000u}) {
    Random rng(size);
    const std::string payload = rng.NextBytes(size);
    VersionId vid = MustPnew(payload);
    EXPECT_EQ(MustRead(vid).size(), size);
  }
}

TEST_F(EdgeCasesTest, StorageStatsClassifyPages) {
  Random rng(21);
  VersionId small = MustPnew("tiny");
  VersionId big = MustPnew(rng.NextBytes(50000));  // Overflow chains.
  (void)small;
  auto stats = db_->GatherStorageStats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GT(stats->total_pages, 10u);
  EXPECT_GE(stats->heap_pages, 1u);
  EXPECT_GT(stats->overflow_pages, 10u);
  EXPECT_GE(stats->btree_pages, 4u);  // Four catalog trees.
  EXPECT_EQ(stats->live_records, 2u);
  // Deleting the big object frees its overflow pages onto the free list.
  ASSERT_OK(db_->PdeleteObject(big.oid));
  auto after = db_->GatherStorageStats();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->overflow_pages, 0u);
  EXPECT_GT(after->free_pages, 10u);
  EXPECT_EQ(after->total_pages, stats->total_pages);  // File did not shrink.
  EXPECT_EQ(after->live_records, 1u);
}

using EdgeCasesDeathTest = EdgeCasesTest;

TEST_F(EdgeCasesDeathTest, DerefOfDeletedObjectChecks) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto ref = pnew(*db_, Doc{"doomed", 1});
  ASSERT_TRUE(ref.ok());
  ASSERT_OK(pdelete(*ref));
  // The unchecked convenience operator must CHECK-fail, not corrupt.
  EXPECT_DEATH((void)(*ref)->text, "CHECK failed");
}

}  // namespace
}  // namespace ode
