#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "tests/testing/db_fixture.h"

// Single-writer / multi-reader stress tests for the Database read path.
// Readers run ReadLatest / ReadVersion / traversals through ReadTxn (shared
// engine lock) while one writer commits mutations through exclusive
// transactions.  The invariant under no-steal buffering: every successful
// read observes some state that was committed at the time the read's shared
// lock was held — never a torn payload, never in-flight transaction state.
// These tests are the TSan targets for the core layer (ctest -R Concurrent).

namespace ode {
namespace {

using testing_internal::DatabaseFixture;

class ConcurrentReadTest : public DatabaseFixture {
 protected:
  void SetUp() override {
    DatabaseFixture::SetUp();
    SetUpRawType();
  }

  /// Payload for object index `obj` at revision `rev`.  Readers validate the
  /// prefix to prove a read never mixes objects or tears mid-payload.
  static std::string Payload(int obj, int rev) {
    std::string p = "obj" + std::to_string(obj) + ":rev" +
                    std::to_string(rev) + ":";
    // Pad so payloads span multiple cache lines; a torn read would show as a
    // filler mismatch.
    p.resize(256, static_cast<char>('a' + (rev % 26)));
    return p;
  }

  static bool PayloadConsistent(const std::string& got, int obj) {
    const std::string prefix = "obj" + std::to_string(obj) + ":rev";
    if (got.size() != 256 || got.compare(0, prefix.size(), prefix) != 0) {
      return false;
    }
    int rev = 0;
    size_t i = prefix.size();
    while (i < got.size() && got[i] >= '0' && got[i] <= '9') {
      rev = rev * 10 + (got[i] - '0');
      ++i;
    }
    if (i == prefix.size() || i >= got.size() || got[i] != ':') return false;
    const char filler = static_cast<char>('a' + (rev % 26));
    for (++i; i < got.size(); ++i) {
      if (got[i] != filler) return false;
    }
    return true;
  }
};

TEST_F(ConcurrentReadTest, ConcurrentReadersSeeOnlyCommittedPayloads) {
  constexpr int kObjects = 8;
  constexpr int kReaders = 4;
  constexpr int kWriterRounds = 200;

  std::vector<ObjectId> oids;
  for (int i = 0; i < kObjects; ++i) {
    auto vid = db_->PnewRaw(type_id_, Slice(Payload(i, 0)));
    ASSERT_TRUE(vid.ok()) << vid.status();
    oids.push_back(vid->oid);
  }

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::atomic<int> read_errors{0};
  std::atomic<uint64_t> reads_done{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const int obj = (r + i++) % kObjects;
        auto bytes = db_->ReadLatest(oids[obj]);
        if (!bytes.ok()) {
          read_errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (!PayloadConsistent(*bytes, obj)) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
        reads_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Writer: each UpdateLatest is its own exclusive transaction, so readers
  // between two commits must see either the old or the new payload, whole.
  for (int round = 1; round <= kWriterRounds; ++round) {
    const int obj = round % kObjects;
    ASSERT_OK(db_->UpdateLatest(oids[obj], Slice(Payload(obj, round))));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(read_errors.load(), 0);
  EXPECT_GT(reads_done.load(), 0u);
}

TEST_F(ConcurrentReadTest, ConcurrentTraversalsWhileVersionsGrow) {
  // Note the writer-rounds count is deliberately modest: readers here never
  // hit the pre-lock caches (traversals always take the shared engine lock),
  // and glibc's rwlock prefers readers, so each exclusive acquisition waits
  // out the reader storm.  More rounds mostly measures that starvation.
  constexpr int kObjects = 4;
  constexpr int kReaders = 4;
  constexpr int kNewVersions = 32;

  std::vector<ObjectId> oids;
  for (int i = 0; i < kObjects; ++i) {
    auto vid = db_->PnewRaw(type_id_, Slice(Payload(i, 0)));
    ASSERT_TRUE(vid.ok()) << vid.status();
    oids.push_back(vid->oid);
  }

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const int obj = (r + i++) % kObjects;
        // Version-set traversal: whatever snapshot the shared lock caught,
        // the set must be a dense prefix kFirstVersion..latest of the
        // temporal order (nothing is deleted in this test).
        auto versions = db_->VersionsOf(oids[obj]);
        if (!versions.ok()) {
          violations.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        for (size_t k = 0; k < versions->size(); ++k) {
          if ((*versions)[k].vnum != kFirstVersion + static_cast<VersionNum>(k)) {
            violations.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
        // Latest must be the last element of that set.
        auto latest = db_->Latest(oids[obj]);
        if (!latest.ok()) {
          violations.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // Temporal-order walk from latest terminates at the first version.
        auto prev = db_->Tprevious(*latest);
        if (!prev.ok()) {
          violations.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (latest->vnum == kFirstVersion) {
          if (prev->has_value()) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (!prev->has_value() ||
                   (*prev)->vnum != latest->vnum - 1) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (int n = 0; n < kNewVersions; ++n) {
    const int obj = n % kObjects;
    auto vid = db_->NewVersionOf(oids[obj]);
    ASSERT_TRUE(vid.ok()) << vid.status();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();

  EXPECT_EQ(violations.load(), 0);
}

TEST_F(ConcurrentReadTest, ConcurrentReadsTolerateDeletes) {
  constexpr int kReaders = 4;
  constexpr int kRounds = 60;

  // One object whose non-latest versions the writer keeps deleting; readers
  // pin specific versions and must get either the whole payload or NotFound,
  // never garbage.
  auto v0 = db_->PnewRaw(type_id_, Slice(Payload(0, 0)));
  ASSERT_TRUE(v0.ok()) << v0.status();
  const ObjectId oid = v0->oid;

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::atomic<uint64_t> max_vnum{kFirstVersion};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t hi = max_vnum.load(std::memory_order_relaxed);
        const VersionNum vnum =
            kFirstVersion + static_cast<VersionNum>((r + i++) % hi);
        auto bytes = db_->ReadVersion(VersionId{oid, vnum});
        if (bytes.ok()) {
          if (!PayloadConsistent(*bytes, 0)) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (!bytes.status().IsNotFound()) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (int round = 1; round <= kRounds; ++round) {
    auto vid = db_->NewVersionOf(oid);
    ASSERT_TRUE(vid.ok()) << vid.status();
    ASSERT_OK(db_->UpdateVersion(*vid, Slice(Payload(0, round))));
    max_vnum.store(vid->vnum, std::memory_order_relaxed);
    if (round % 3 == 0 && vid->vnum >= 2) {
      // Delete an older version; concurrent readers of it must flip cleanly
      // to NotFound.
      Status s = db_->PdeleteVersion(VersionId{oid, vid->vnum - 2});
      if (!s.ok() && !s.IsNotFound()) {
        ASSERT_OK(s);
      }
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();

  EXPECT_EQ(violations.load(), 0);
}

TEST_F(ConcurrentReadTest, StatsSnapshotIsCoherentUnderConcurrency) {
  auto vid = db_->PnewRaw(type_id_, Slice(Payload(0, 0)));
  ASSERT_TRUE(vid.ok()) << vid.status();
  const ObjectId oid = vid->oid;

  constexpr int kReaders = 4;
  constexpr int kReadsPerThread = 500;
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      for (int i = 0; i < kReadsPerThread; ++i) {
        auto bytes = db_->ReadLatest(oid);
        EXPECT_TRUE(bytes.ok()) << bytes.status();
        // Interleave stats() snapshots with reads to exercise the atomic
        // counters from many threads at once.
        (void)db_->stats();
      }
    });
  }
  for (auto& th : readers) th.join();

  const VersionStats stats = db_->stats();
  // Every ReadLatest probes the latest-version cache exactly once.
  EXPECT_EQ(stats.latest_cache_hits + stats.latest_cache_misses,
            static_cast<uint64_t>(kReaders) * kReadsPerThread);
}

// Multi-WRITER stress: several threads mutate disjoint objects through the
// striped write latches and the group-commit queue, while readers validate
// payload integrity and pollers hammer the stats snapshot.  This is the
// primary TSan target for the write-path concurrency work: a data race in
// the latch set, the commit queue, the cache epoch hooks, or the metric
// counters shows up here under `ctest -R Concurrent` in the tsan CI job.
TEST_F(ConcurrentReadTest, ConcurrentDisjointWritersScaleWithoutRaces) {
  constexpr int kWriters = 4;
  constexpr int kObjectsPerWriter = 2;
  constexpr int kRoundsPerWriter = 120;
  constexpr int kReaders = 2;

  // Each writer owns kObjectsPerWriter objects; writers never touch each
  // other's objects, so every commit is eligible for concurrent batching.
  std::vector<std::vector<ObjectId>> owned(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    for (int k = 0; k < kObjectsPerWriter; ++k) {
      const int obj = w * kObjectsPerWriter + k;
      auto vid = db_->PnewRaw(type_id_, Slice(Payload(obj, 0)));
      ASSERT_TRUE(vid.ok()) << vid.status();
      owned[w].push_back(vid->oid);
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> threads;

  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int round = 1; round <= kRoundsPerWriter; ++round) {
        for (int k = 0; k < kObjectsPerWriter; ++k) {
          const int obj = w * kObjectsPerWriter + k;
          Status s = db_->UpdateLatest(owned[w][k], Slice(Payload(obj, round)));
          ASSERT_TRUE(s.ok()) << s;
        }
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const int obj = static_cast<int>((i + r) %
                                         (kWriters * kObjectsPerWriter));
        auto bytes = db_->ReadLatest(owned[obj / kObjectsPerWriter]
                                          [obj % kObjectsPerWriter]);
        if (bytes.ok() && !PayloadConsistent(*bytes, obj)) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
        ++i;
      }
    });
  }
  // Stats poller: reads every atomic counter (including the group-commit
  // ones) while writers are mid-batch.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const VersionStats s = db_->stats();
      if (s.group_commit_fsyncs > s.group_commit_commits) {
        violations.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_relaxed);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(violations.load(), 0);
  // Every writer's last revision must be the visible state.
  for (int w = 0; w < kWriters; ++w) {
    for (int k = 0; k < kObjectsPerWriter; ++k) {
      const int obj = w * kObjectsPerWriter + k;
      auto bytes = db_->ReadLatest(owned[w][k]);
      ASSERT_TRUE(bytes.ok()) << bytes.status();
      EXPECT_EQ(*bytes, Payload(obj, kRoundsPerWriter));
    }
  }
  const VersionStats stats = db_->stats();
  EXPECT_GE(stats.update_count, static_cast<uint64_t>(kWriters) *
                                    kObjectsPerWriter * kRoundsPerWriter);
}

}  // namespace
}  // namespace ode
