#include "core/database.h"

#include <gtest/gtest.h>

#include "tests/testing/db_fixture.h"
#include "util/random.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;

class DatabaseTest : public DatabaseFixture {
 protected:
  void SetUp() override {
    DatabaseFixture::SetUp();
    SetUpRawType();
  }
};

TEST_F(DatabaseTest, PnewCreatesObjectWithInitialVersion) {
  VersionId vid = MustPnew("first payload");
  EXPECT_TRUE(vid.valid());
  EXPECT_EQ(vid.vnum, kFirstVersion);
  EXPECT_EQ(MustRead(vid), "first payload");
  EXPECT_EQ(MustReadLatest(vid.oid), "first payload");
}

TEST_F(DatabaseTest, PnewAssignsDistinctOids) {
  VersionId a = MustPnew("a");
  VersionId b = MustPnew("b");
  EXPECT_NE(a.oid, b.oid);
}

TEST_F(DatabaseTest, HeaderReflectsInitialState) {
  VersionId vid = MustPnew("x");
  auto header = db_->Header(vid.oid);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->type_id, type_id_);
  EXPECT_EQ(header->latest, kFirstVersion);
  EXPECT_EQ(header->version_count, 1u);
}

TEST_F(DatabaseTest, NewVersionCopiesState) {
  VersionId v0 = MustPnew("original");
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->vnum, v0.vnum + 1);
  EXPECT_EQ(MustRead(*v1), "original");
  EXPECT_EQ(MustRead(v0), "original");
}

TEST_F(DatabaseTest, NewVersionBecomesLatest) {
  VersionId v0 = MustPnew("original");
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  auto latest = db_->Latest(v0.oid);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, *v1);
}

TEST_F(DatabaseTest, UpdateLatestModifiesOnlyLatest) {
  VersionId v0 = MustPnew("original");
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  ASSERT_OK(db_->UpdateLatest(v0.oid, Slice("changed")));
  EXPECT_EQ(MustRead(v0), "original");
  EXPECT_EQ(MustRead(*v1), "changed");
  EXPECT_EQ(MustReadLatest(v0.oid), "changed");
}

TEST_F(DatabaseTest, UpdateSpecificVersion) {
  VersionId v0 = MustPnew("original");
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  ASSERT_OK(db_->UpdateVersion(v0, Slice("old changed")));
  EXPECT_EQ(MustRead(v0), "old changed");
  EXPECT_EQ(MustRead(*v1), "original");
}

TEST_F(DatabaseTest, VersionOrthogonality) {
  // Any object can grow versions at any time — no declaration, no
  // transformation step (the paper's key property).  Simulate a long-lived
  // unversioned object that suddenly becomes versioned.
  VersionId v0 = MustPnew("plain object");
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(db_->UpdateLatest(v0.oid, Slice("state " + std::to_string(i))));
  }
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok()) << "versioning must not require preparation";
  EXPECT_EQ(MustRead(*v1), "state 9");
}

TEST_F(DatabaseTest, NewVersionFromSpecificCreatesAlternative) {
  VersionId v0 = MustPnew("base");
  auto v1 = db_->NewVersionFrom(v0);
  auto v2 = db_->NewVersionFrom(v0);
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());
  ASSERT_OK(db_->UpdateVersion(*v1, Slice("alternative 1")));
  ASSERT_OK(db_->UpdateVersion(*v2, Slice("alternative 2")));
  EXPECT_EQ(MustRead(v0), "base");
  EXPECT_EQ(MustRead(*v1), "alternative 1");
  EXPECT_EQ(MustRead(*v2), "alternative 2");
  // v2 was created last, so it is the latest.
  auto latest = db_->Latest(v0.oid);
  EXPECT_EQ(*latest, *v2);
}

TEST_F(DatabaseTest, PdeleteObjectRemovesEverything) {
  VersionId v0 = MustPnew("x");
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  ASSERT_OK(db_->PdeleteObject(v0.oid));
  auto exists = db_->ObjectExists(v0.oid);
  ASSERT_TRUE(exists.ok());
  EXPECT_FALSE(*exists);
  EXPECT_TRUE(db_->ReadVersion(v0).status().IsNotFound());
  EXPECT_TRUE(db_->ReadVersion(*v1).status().IsNotFound());
  EXPECT_TRUE(db_->ReadLatest(v0.oid).status().IsNotFound());
}

TEST_F(DatabaseTest, PdeleteVersionRemovesJustThatVersion) {
  VersionId v0 = MustPnew("v0");
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  ASSERT_OK(db_->UpdateVersion(*v1, Slice("v1")));
  ASSERT_OK(db_->PdeleteVersion(v0));
  EXPECT_TRUE(db_->ReadVersion(v0).status().IsNotFound());
  EXPECT_EQ(MustRead(*v1), "v1");
  auto header = db_->Header(v0.oid);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->version_count, 1u);
}

TEST_F(DatabaseTest, DeletingLatestPromotesTemporalPredecessor) {
  VersionId v0 = MustPnew("v0");
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  ASSERT_OK(db_->UpdateVersion(*v1, Slice("v1")));
  ASSERT_OK(db_->PdeleteVersion(*v1));
  auto latest = db_->Latest(v0.oid);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, v0);
  EXPECT_EQ(MustReadLatest(v0.oid), "v0");
}

TEST_F(DatabaseTest, DeletingLastVersionDeletesObject) {
  VersionId v0 = MustPnew("only");
  ASSERT_OK(db_->PdeleteVersion(v0));
  auto exists = db_->ObjectExists(v0.oid);
  ASSERT_TRUE(exists.ok());
  EXPECT_FALSE(*exists);
}

TEST_F(DatabaseTest, OperationsOnMissingObjectsFail) {
  const ObjectId ghost{999999};
  const VersionId ghost_vid{ghost, 1};
  EXPECT_TRUE(db_->ReadLatest(ghost).status().IsNotFound());
  EXPECT_TRUE(db_->ReadVersion(ghost_vid).status().IsNotFound());
  EXPECT_TRUE(db_->NewVersionOf(ghost).status().IsNotFound());
  EXPECT_TRUE(db_->NewVersionFrom(ghost_vid).status().IsNotFound());
  EXPECT_TRUE(db_->UpdateLatest(ghost, Slice("x")).IsNotFound());
  EXPECT_TRUE(db_->UpdateVersion(ghost_vid, Slice("x")).IsNotFound());
  EXPECT_TRUE(db_->PdeleteObject(ghost).IsNotFound());
  EXPECT_TRUE(db_->PdeleteVersion(ghost_vid).IsNotFound());
}

TEST_F(DatabaseTest, NewVersionFromDeletedVersionFails) {
  VersionId v0 = MustPnew("v0");
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  ASSERT_OK(db_->PdeleteVersion(v0));
  EXPECT_TRUE(db_->NewVersionFrom(v0).status().IsNotFound());
}

TEST_F(DatabaseTest, VersionNumbersNeverReused) {
  VersionId v0 = MustPnew("x");
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  ASSERT_OK(db_->PdeleteVersion(*v1));
  auto v2 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v2.ok());
  EXPECT_GT(v2->vnum, v1->vnum);
}

TEST_F(DatabaseTest, TimestampsFollowCreationOrder) {
  VersionId a0 = MustPnew("a");
  VersionId b0 = MustPnew("b");
  auto a1 = db_->NewVersionOf(a0.oid);
  ASSERT_TRUE(a1.ok());
  auto ma0 = db_->Meta(a0);
  auto mb0 = db_->Meta(b0);
  auto ma1 = db_->Meta(*a1);
  ASSERT_TRUE(ma0.ok());
  ASSERT_TRUE(mb0.ok());
  ASSERT_TRUE(ma1.ok());
  EXPECT_LT(ma0->created_ts, mb0->created_ts);
  EXPECT_LT(mb0->created_ts, ma1->created_ts);
}

TEST_F(DatabaseTest, EmptyPayloadSupported) {
  VersionId vid = MustPnew("");
  EXPECT_EQ(MustRead(vid), "");
  auto v1 = db_->NewVersionOf(vid.oid);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(MustRead(*v1), "");
}

TEST_F(DatabaseTest, LargePayloadSupported) {
  Random rng(1);
  const std::string big = rng.NextBytes(200000);
  VersionId vid = MustPnew(big);
  EXPECT_EQ(MustRead(vid), big);
  auto v1 = db_->NewVersionOf(vid.oid);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(MustRead(*v1), big);
}

TEST_F(DatabaseTest, GroupedTransactionCommit) {
  ASSERT_OK(db_->Begin());
  VersionId a = MustPnew("a");
  VersionId b = MustPnew("b");
  ASSERT_OK(db_->Commit());
  EXPECT_EQ(MustRead(a), "a");
  EXPECT_EQ(MustRead(b), "b");
}

TEST_F(DatabaseTest, GroupedTransactionAbortRollsBackAll) {
  VersionId keep = MustPnew("keep");
  ASSERT_OK(db_->Begin());
  VersionId a = MustPnew("a");
  ASSERT_OK(db_->UpdateLatest(keep.oid, Slice("modified")));
  ASSERT_OK(db_->Abort());
  auto exists = db_->ObjectExists(a.oid);
  ASSERT_TRUE(exists.ok());
  EXPECT_FALSE(*exists);
  EXPECT_EQ(MustReadLatest(keep.oid), "keep");
}

TEST_F(DatabaseTest, StatsTrackOperations) {
  VersionId v0 = MustPnew("x");
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  ASSERT_OK(db_->UpdateLatest(v0.oid, Slice("y")));
  ASSERT_OK(db_->PdeleteVersion(v0));
  ASSERT_OK(db_->PdeleteObject(v0.oid));
  const VersionStats& stats = db_->stats();
  EXPECT_EQ(stats.pnew_count, 1u);
  EXPECT_EQ(stats.newversion_count, 1u);
  EXPECT_EQ(stats.update_count, 1u);
  EXPECT_GE(stats.delete_version_count, 2u);
  EXPECT_EQ(stats.delete_object_count, 1u);
}

TEST_F(DatabaseTest, TypeRegistrationIsIdempotent) {
  auto a = db_->RegisterType("Widget");
  auto b = db_->RegisterType("Widget");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  auto c = db_->RegisterType("Gadget");
  ASSERT_TRUE(c.ok());
  EXPECT_NE(*a, *c);
}

TEST_F(DatabaseTest, LookupTypeDoesNotCreate) {
  auto missing = db_->LookupType("NeverRegistered");
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing->has_value());
  ASSERT_TRUE(db_->RegisterType("Exists").ok());
  auto found = db_->LookupType("Exists");
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(found->has_value());
}

}  // namespace
}  // namespace ode
