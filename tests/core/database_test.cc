#include "core/database.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tests/testing/db_fixture.h"
#include "util/random.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;

class DatabaseTest : public DatabaseFixture {
 protected:
  void SetUp() override {
    DatabaseFixture::SetUp();
    SetUpRawType();
  }
};

TEST_F(DatabaseTest, PnewCreatesObjectWithInitialVersion) {
  VersionId vid = MustPnew("first payload");
  EXPECT_TRUE(vid.valid());
  EXPECT_EQ(vid.vnum, kFirstVersion);
  EXPECT_EQ(MustRead(vid), "first payload");
  EXPECT_EQ(MustReadLatest(vid.oid), "first payload");
}

TEST_F(DatabaseTest, PnewAssignsDistinctOids) {
  VersionId a = MustPnew("a");
  VersionId b = MustPnew("b");
  EXPECT_NE(a.oid, b.oid);
}

TEST_F(DatabaseTest, HeaderReflectsInitialState) {
  VersionId vid = MustPnew("x");
  auto header = db_->Header(vid.oid);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->type_id, type_id_);
  EXPECT_EQ(header->latest, kFirstVersion);
  EXPECT_EQ(header->version_count, 1u);
}

TEST_F(DatabaseTest, NewVersionCopiesState) {
  VersionId v0 = MustPnew("original");
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->vnum, v0.vnum + 1);
  EXPECT_EQ(MustRead(*v1), "original");
  EXPECT_EQ(MustRead(v0), "original");
}

TEST_F(DatabaseTest, NewVersionBecomesLatest) {
  VersionId v0 = MustPnew("original");
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  auto latest = db_->Latest(v0.oid);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, *v1);
}

TEST_F(DatabaseTest, UpdateLatestModifiesOnlyLatest) {
  VersionId v0 = MustPnew("original");
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  ASSERT_OK(db_->UpdateLatest(v0.oid, Slice("changed")));
  EXPECT_EQ(MustRead(v0), "original");
  EXPECT_EQ(MustRead(*v1), "changed");
  EXPECT_EQ(MustReadLatest(v0.oid), "changed");
}

TEST_F(DatabaseTest, UpdateSpecificVersion) {
  VersionId v0 = MustPnew("original");
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  ASSERT_OK(db_->UpdateVersion(v0, Slice("old changed")));
  EXPECT_EQ(MustRead(v0), "old changed");
  EXPECT_EQ(MustRead(*v1), "original");
}

TEST_F(DatabaseTest, VersionOrthogonality) {
  // Any object can grow versions at any time — no declaration, no
  // transformation step (the paper's key property).  Simulate a long-lived
  // unversioned object that suddenly becomes versioned.
  VersionId v0 = MustPnew("plain object");
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(db_->UpdateLatest(v0.oid, Slice("state " + std::to_string(i))));
  }
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok()) << "versioning must not require preparation";
  EXPECT_EQ(MustRead(*v1), "state 9");
}

TEST_F(DatabaseTest, NewVersionFromSpecificCreatesAlternative) {
  VersionId v0 = MustPnew("base");
  auto v1 = db_->NewVersionFrom(v0);
  auto v2 = db_->NewVersionFrom(v0);
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());
  ASSERT_OK(db_->UpdateVersion(*v1, Slice("alternative 1")));
  ASSERT_OK(db_->UpdateVersion(*v2, Slice("alternative 2")));
  EXPECT_EQ(MustRead(v0), "base");
  EXPECT_EQ(MustRead(*v1), "alternative 1");
  EXPECT_EQ(MustRead(*v2), "alternative 2");
  // v2 was created last, so it is the latest.
  auto latest = db_->Latest(v0.oid);
  EXPECT_EQ(*latest, *v2);
}

TEST_F(DatabaseTest, PdeleteObjectRemovesEverything) {
  VersionId v0 = MustPnew("x");
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  ASSERT_OK(db_->PdeleteObject(v0.oid));
  auto exists = db_->ObjectExists(v0.oid);
  ASSERT_TRUE(exists.ok());
  EXPECT_FALSE(*exists);
  EXPECT_TRUE(db_->ReadVersion(v0).status().IsNotFound());
  EXPECT_TRUE(db_->ReadVersion(*v1).status().IsNotFound());
  EXPECT_TRUE(db_->ReadLatest(v0.oid).status().IsNotFound());
}

TEST_F(DatabaseTest, PdeleteVersionRemovesJustThatVersion) {
  VersionId v0 = MustPnew("v0");
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  ASSERT_OK(db_->UpdateVersion(*v1, Slice("v1")));
  ASSERT_OK(db_->PdeleteVersion(v0));
  EXPECT_TRUE(db_->ReadVersion(v0).status().IsNotFound());
  EXPECT_EQ(MustRead(*v1), "v1");
  auto header = db_->Header(v0.oid);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->version_count, 1u);
}

TEST_F(DatabaseTest, DeletingLatestPromotesTemporalPredecessor) {
  VersionId v0 = MustPnew("v0");
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  ASSERT_OK(db_->UpdateVersion(*v1, Slice("v1")));
  ASSERT_OK(db_->PdeleteVersion(*v1));
  auto latest = db_->Latest(v0.oid);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, v0);
  EXPECT_EQ(MustReadLatest(v0.oid), "v0");
}

TEST_F(DatabaseTest, DeletingLastVersionDeletesObject) {
  VersionId v0 = MustPnew("only");
  ASSERT_OK(db_->PdeleteVersion(v0));
  auto exists = db_->ObjectExists(v0.oid);
  ASSERT_TRUE(exists.ok());
  EXPECT_FALSE(*exists);
}

TEST_F(DatabaseTest, OperationsOnMissingObjectsFail) {
  const ObjectId ghost{999999};
  const VersionId ghost_vid{ghost, 1};
  EXPECT_TRUE(db_->ReadLatest(ghost).status().IsNotFound());
  EXPECT_TRUE(db_->ReadVersion(ghost_vid).status().IsNotFound());
  EXPECT_TRUE(db_->NewVersionOf(ghost).status().IsNotFound());
  EXPECT_TRUE(db_->NewVersionFrom(ghost_vid).status().IsNotFound());
  EXPECT_TRUE(db_->UpdateLatest(ghost, Slice("x")).IsNotFound());
  EXPECT_TRUE(db_->UpdateVersion(ghost_vid, Slice("x")).IsNotFound());
  EXPECT_TRUE(db_->PdeleteObject(ghost).IsNotFound());
  EXPECT_TRUE(db_->PdeleteVersion(ghost_vid).IsNotFound());
}

TEST_F(DatabaseTest, NewVersionFromDeletedVersionFails) {
  VersionId v0 = MustPnew("v0");
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  ASSERT_OK(db_->PdeleteVersion(v0));
  EXPECT_TRUE(db_->NewVersionFrom(v0).status().IsNotFound());
}

TEST_F(DatabaseTest, VersionNumbersNeverReused) {
  VersionId v0 = MustPnew("x");
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  ASSERT_OK(db_->PdeleteVersion(*v1));
  auto v2 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v2.ok());
  EXPECT_GT(v2->vnum, v1->vnum);
}

TEST_F(DatabaseTest, TimestampsFollowCreationOrder) {
  VersionId a0 = MustPnew("a");
  VersionId b0 = MustPnew("b");
  auto a1 = db_->NewVersionOf(a0.oid);
  ASSERT_TRUE(a1.ok());
  auto ma0 = db_->Meta(a0);
  auto mb0 = db_->Meta(b0);
  auto ma1 = db_->Meta(*a1);
  ASSERT_TRUE(ma0.ok());
  ASSERT_TRUE(mb0.ok());
  ASSERT_TRUE(ma1.ok());
  EXPECT_LT(ma0->created_ts, mb0->created_ts);
  EXPECT_LT(mb0->created_ts, ma1->created_ts);
}

TEST_F(DatabaseTest, EmptyPayloadSupported) {
  VersionId vid = MustPnew("");
  EXPECT_EQ(MustRead(vid), "");
  auto v1 = db_->NewVersionOf(vid.oid);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(MustRead(*v1), "");
}

TEST_F(DatabaseTest, LargePayloadSupported) {
  Random rng(1);
  const std::string big = rng.NextBytes(200000);
  VersionId vid = MustPnew(big);
  EXPECT_EQ(MustRead(vid), big);
  auto v1 = db_->NewVersionOf(vid.oid);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(MustRead(*v1), big);
}

TEST_F(DatabaseTest, GroupedTransactionCommit) {
  // Database::Open commits bootstrap transactions of its own, so the
  // storage-level counters are asserted as deltas.
  const VersionStats before = db_->stats();
  ASSERT_OK(db_->Begin());
  VersionId a = MustPnew("a");
  VersionId b = MustPnew("b");
  ASSERT_OK(db_->Commit());
  EXPECT_EQ(MustRead(a), "a");
  EXPECT_EQ(MustRead(b), "b");
  const VersionStats after = db_->stats();
  // One explicit commit, no aborts; the group's mutations hit the WAL and
  // its commit forced (at least) one fsync.
  EXPECT_EQ(after.txn_commits, before.txn_commits + 1);
  EXPECT_EQ(after.txn_aborts, before.txn_aborts);
  EXPECT_GT(after.wal_appends, before.wal_appends);
  EXPECT_GE(after.wal_fsyncs, before.wal_fsyncs + 1);
}

TEST_F(DatabaseTest, GroupedTransactionAbortRollsBackAll) {
  VersionId keep = MustPnew("keep");
  const VersionStats before = db_->stats();
  ASSERT_OK(db_->Begin());
  VersionId a = MustPnew("a");
  ASSERT_OK(db_->UpdateLatest(keep.oid, Slice("modified")));
  ASSERT_OK(db_->Abort());
  auto exists = db_->ObjectExists(a.oid);
  ASSERT_TRUE(exists.ok());
  EXPECT_FALSE(*exists);
  EXPECT_EQ(MustReadLatest(keep.oid), "keep");
  const VersionStats after = db_->stats();
  EXPECT_EQ(after.txn_aborts, before.txn_aborts + 1);
  EXPECT_EQ(after.txn_commits, before.txn_commits);
}

TEST_F(DatabaseTest, StatsTrackOperations) {
  VersionId v0 = MustPnew("x");
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  ASSERT_OK(db_->UpdateLatest(v0.oid, Slice("y")));
  ASSERT_OK(db_->PdeleteVersion(v0));
  ASSERT_OK(db_->PdeleteObject(v0.oid));
  const VersionStats& stats = db_->stats();
  EXPECT_EQ(stats.pnew_count, 1u);
  EXPECT_EQ(stats.newversion_count, 1u);
  EXPECT_EQ(stats.update_count, 1u);
  EXPECT_GE(stats.delete_version_count, 2u);
  EXPECT_EQ(stats.delete_object_count, 1u);
  // The storage-level view: every autocommitted operation above ran its own
  // transaction, and nothing here aborted.
  EXPECT_GE(stats.txn_commits, 5u);
  EXPECT_EQ(stats.txn_aborts, 0u);
  EXPECT_GT(stats.wal_appends, 0u);
  EXPECT_GT(stats.wal_fsyncs, 0u);
}

TEST_F(DatabaseTest, StatsExposeGroupCommitCounters) {
  const VersionStats before = db_->stats();
  constexpr int kCommits = 8;
  VersionId vid = MustPnew("gc");
  for (int i = 1; i < kCommits; ++i) {
    ASSERT_OK(db_->UpdateLatest(vid.oid, Slice("gc" + std::to_string(i))));
  }
  const VersionStats after = db_->stats();
  // Every autocommit above went through the group-commit queue: one commit
  // per call, each in its own batch (a solo writer never lingers), all
  // durable by the time the call returned.
  EXPECT_EQ(after.group_commit_commits - before.group_commit_commits,
            static_cast<uint64_t>(kCommits));
  EXPECT_EQ(after.group_commit_batches - before.group_commit_batches,
            static_cast<uint64_t>(kCommits));
  EXPECT_GE(after.group_commit_fsyncs, before.group_commit_fsyncs + kCommits);
  EXPECT_EQ(after.async_pending, 0u);
  // The fence is a no-op when everything is already durable.
  ASSERT_OK(db_->WaitForDurable());
}

class AsyncCommitDatabaseTest : public DatabaseFixture {
 protected:
  void SetUp() override {
    DatabaseFixture::SetUp();
    SetUpRawType();
  }
  DatabaseOptions MakeOptions() override {
    DatabaseOptions options = DatabaseFixture::MakeOptions();
    options.storage.commit_mode = CommitMode::kAsync;
    return options;
  }
};

TEST_F(AsyncCommitDatabaseTest, AsyncCommitsAckEarlyAndFenceDrains) {
  const VersionStats before = db_->stats();
  constexpr int kCommits = 50;
  VersionId vid = MustPnew("async");
  for (int i = 1; i < kCommits; ++i) {
    ASSERT_OK(db_->UpdateLatest(vid.oid, Slice("async" + std::to_string(i))));
  }
  // Async commits ack at append time, so far fewer fsyncs than commits have
  // happened (only open/bootstrap syncs and background catch-up ticks).
  const VersionStats acked = db_->stats();
  EXPECT_EQ(acked.group_commit_commits - before.group_commit_commits,
            static_cast<uint64_t>(kCommits));
  EXPECT_LT(acked.group_commit_fsyncs - before.group_commit_fsyncs,
            static_cast<uint64_t>(kCommits));
  // The durability fence flushes the tail; afterwards nothing is pending
  // and the data is still there.
  ASSERT_OK(db_->WaitForDurable());
  EXPECT_EQ(db_->stats().async_pending, 0u);
  EXPECT_EQ(MustReadLatest(vid.oid), "async" + std::to_string(kCommits - 1));
}

// A pool far smaller than the data forces evictions once pages are clean
// again; read caches are off so reads actually touch pages.
class SmallPoolDatabaseTest : public DatabaseFixture {
 protected:
  void SetUp() override {
    DatabaseFixture::SetUp();
    SetUpRawType();
  }
  DatabaseOptions MakeOptions() override {
    DatabaseOptions options = DatabaseFixture::MakeOptions();
    options.storage.buffer_pool_pages = 8;
    options.payload_cache_bytes = 0;
    options.latest_cache_entries = 0;
    options.metrics_sample_every = 1;  // Time every dereference.
    return options;
  }
};

TEST_F(SmallPoolDatabaseTest, StatsExposeBufferPoolEvictions) {
  std::vector<ObjectId> oids;
  for (int i = 0; i < 64; ++i) {
    oids.push_back(MustPnew(std::string(1024, 'a' + (i % 26))).oid);
  }
  // A fresh pool, then a scan over ~16 heap pages through 8 frames: the
  // misses past capacity must evict.
  ReopenDb();
  for (ObjectId oid : oids) MustReadLatest(oid);
  const VersionStats stats = db_->stats();
  EXPECT_GT(stats.buffer_pool_evictions, 0u);
}

TEST_F(SmallPoolDatabaseTest, MetricsSnapshotCoversTheStack) {
  const ObjectId oid = MustPnew("payload").oid;
  for (int i = 0; i < 10; ++i) MustReadLatest(oid);
  const MetricsRegistry::Snapshot snap = db_->MetricsSnapshot();

  auto counter = [&](const std::string& name) -> uint64_t {
    for (const auto& [n, v] : snap.counters) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "counter not in snapshot: " << name;
    return 0;
  };
  EXPECT_EQ(counter("core.pnew"), 1u);
  EXPECT_GT(counter("txn.commits"), 0u);
  EXPECT_GT(counter("wal.appends"), 0u);
  EXPECT_GT(counter("bufferpool.misses"), 0u);

  // With metrics_sample_every = 1 every ReadLatest lands in the histogram.
  bool found = false;
  for (const auto& [name, h] : snap.histograms) {
    if (name == "core.deref_latest_ns") {
      found = true;
      EXPECT_GE(h.count, 10u);
      EXPECT_GT(h.max, 0u);
      EXPECT_LE(h.p50, static_cast<double>(h.max));
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(DatabaseTest, TypeRegistrationIsIdempotent) {
  auto a = db_->RegisterType("Widget");
  auto b = db_->RegisterType("Widget");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  auto c = db_->RegisterType("Gadget");
  ASSERT_TRUE(c.ok());
  EXPECT_NE(*a, *c);
}

TEST_F(DatabaseTest, LookupTypeDoesNotCreate) {
  auto missing = db_->LookupType("NeverRegistered");
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing->has_value());
  ASSERT_TRUE(db_->RegisterType("Exists").ok());
  auto found = db_->LookupType("Exists");
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(found->has_value());
}

}  // namespace
}  // namespace ode
