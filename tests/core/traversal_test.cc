#include <gtest/gtest.h>

#include "core/database.h"
#include "tests/testing/db_fixture.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;

/// Tests of the automatically maintained temporal and derived-from
/// relationships (§3, §4.3 of the paper), including the graph states of the
/// paper's running example: v0; v1 derived from v0 (revision); v2 derived
/// from v0 (alternative); v3 derived from v1 (version history v0-v1-v3).
class TraversalTest : public DatabaseFixture {
 protected:
  void SetUp() override {
    DatabaseFixture::SetUp();
    SetUpRawType();
  }

  /// Builds the paper's example graph and stores the four version ids.
  void BuildPaperGraph() {
    v0_ = MustPnew("v0");
    auto v1 = db_->NewVersionFrom(v0_);
    ASSERT_TRUE(v1.ok());
    v1_ = *v1;
    auto v2 = db_->NewVersionFrom(v0_);
    ASSERT_TRUE(v2.ok());
    v2_ = *v2;
    auto v3 = db_->NewVersionFrom(v1_);
    ASSERT_TRUE(v3.ok());
    v3_ = *v3;
  }

  VersionId v0_, v1_, v2_, v3_;
};

TEST_F(TraversalTest, RootVersionHasNoDprevious) {
  VersionId v0 = MustPnew("x");
  auto prev = db_->Dprevious(v0);
  ASSERT_TRUE(prev.ok());
  EXPECT_FALSE(prev->has_value());
}

TEST_F(TraversalTest, DpreviousPointsToDerivationParent) {
  BuildPaperGraph();
  auto p1 = db_->Dprevious(v1_);
  auto p2 = db_->Dprevious(v2_);
  auto p3 = db_->Dprevious(v3_);
  ASSERT_TRUE(p1.ok() && p2.ok() && p3.ok());
  EXPECT_EQ(p1->value(), v0_);
  EXPECT_EQ(p2->value(), v0_);  // Alternative: also derived from v0.
  EXPECT_EQ(p3->value(), v1_);
}

TEST_F(TraversalTest, DnextListsAlternatives) {
  BuildPaperGraph();
  auto children = db_->Dnext(v0_);
  ASSERT_TRUE(children.ok());
  ASSERT_EQ(children->size(), 2u);
  EXPECT_EQ((*children)[0], v1_);
  EXPECT_EQ((*children)[1], v2_);
  auto v1_children = db_->Dnext(v1_);
  ASSERT_TRUE(v1_children.ok());
  ASSERT_EQ(v1_children->size(), 1u);
  EXPECT_EQ((*v1_children)[0], v3_);
  auto leaf_children = db_->Dnext(v3_);
  ASSERT_TRUE(leaf_children.ok());
  EXPECT_TRUE(leaf_children->empty());
}

TEST_F(TraversalTest, TemporalChainFollowsCreationOrder) {
  BuildPaperGraph();
  // Temporal chain: v0 -> v1 -> v2 -> v3 (creation order), regardless of
  // the derivation tree shape.
  auto t1 = db_->Tprevious(v1_);
  auto t2 = db_->Tprevious(v2_);
  auto t3 = db_->Tprevious(v3_);
  ASSERT_TRUE(t1.ok() && t2.ok() && t3.ok());
  EXPECT_EQ(t1->value(), v0_);
  EXPECT_EQ(t2->value(), v1_);
  EXPECT_EQ(t3->value(), v2_);
  auto t0 = db_->Tprevious(v0_);
  ASSERT_TRUE(t0.ok());
  EXPECT_FALSE(t0->has_value());
}

TEST_F(TraversalTest, TnextMirrorsTprevious) {
  BuildPaperGraph();
  auto n0 = db_->Tnext(v0_);
  auto n1 = db_->Tnext(v1_);
  auto n3 = db_->Tnext(v3_);
  ASSERT_TRUE(n0.ok() && n1.ok() && n3.ok());
  EXPECT_EQ(n0->value(), v1_);
  EXPECT_EQ(n1->value(), v2_);
  EXPECT_FALSE(n3->has_value());
}

TEST_F(TraversalTest, VersionsOfListsTemporalOrder) {
  BuildPaperGraph();
  auto versions = db_->VersionsOf(v0_.oid);
  ASSERT_TRUE(versions.ok());
  ASSERT_EQ(versions->size(), 4u);
  EXPECT_EQ((*versions)[0], v0_);
  EXPECT_EQ((*versions)[1], v1_);
  EXPECT_EQ((*versions)[2], v2_);
  EXPECT_EQ((*versions)[3], v3_);
}

TEST_F(TraversalTest, DeleteSplicesDerivedFromTree) {
  // §4.4: deleting v1 re-parents its child v3 to v0.
  BuildPaperGraph();
  ASSERT_OK(db_->PdeleteVersion(v1_));
  auto p3 = db_->Dprevious(v3_);
  ASSERT_TRUE(p3.ok());
  EXPECT_EQ(p3->value(), v0_);
  auto children = db_->Dnext(v0_);
  ASSERT_TRUE(children.ok());
  ASSERT_EQ(children->size(), 2u);
  EXPECT_EQ((*children)[0], v2_);
  EXPECT_EQ((*children)[1], v3_);
}

TEST_F(TraversalTest, DeleteSplicesTemporalChain) {
  BuildPaperGraph();
  ASSERT_OK(db_->PdeleteVersion(v2_));
  auto t3 = db_->Tprevious(v3_);
  ASSERT_TRUE(t3.ok());
  EXPECT_EQ(t3->value(), v1_);
  auto n1 = db_->Tnext(v1_);
  ASSERT_TRUE(n1.ok());
  EXPECT_EQ(n1->value(), v3_);
}

TEST_F(TraversalTest, DeleteRootPromotesChildrenToRoots) {
  BuildPaperGraph();
  ASSERT_OK(db_->PdeleteVersion(v0_));
  auto p1 = db_->Dprevious(v1_);
  auto p2 = db_->Dprevious(v2_);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_FALSE(p1->has_value());
  EXPECT_FALSE(p2->has_value());
}

TEST_F(TraversalTest, TraversalFromDeletedVersionFails) {
  BuildPaperGraph();
  ASSERT_OK(db_->PdeleteVersion(v1_));
  EXPECT_TRUE(db_->Tprevious(v1_).status().IsNotFound());
  EXPECT_TRUE(db_->Tnext(v1_).status().IsNotFound());
  EXPECT_TRUE(db_->Dprevious(v1_).status().IsNotFound());
  EXPECT_TRUE(db_->Dnext(v1_).status().IsNotFound());
}

TEST_F(TraversalTest, LongLinearHistory) {
  VersionId current = MustPnew("start");
  const VersionId root = current;
  constexpr int kDepth = 100;
  for (int i = 0; i < kDepth; ++i) {
    auto next = db_->NewVersionFrom(current);
    ASSERT_TRUE(next.ok());
    current = *next;
  }
  // Walk back along Dprevious to the root.
  int steps = 0;
  VersionId walk = current;
  while (true) {
    auto prev = db_->Dprevious(walk);
    ASSERT_TRUE(prev.ok());
    if (!prev->has_value()) break;
    walk = prev->value();
    ++steps;
  }
  EXPECT_EQ(steps, kDepth);
  EXPECT_EQ(walk, root);
}

TEST_F(TraversalTest, WideAlternativeFanOut) {
  VersionId root = MustPnew("root");
  constexpr int kWidth = 50;
  for (int i = 0; i < kWidth; ++i) {
    ASSERT_TRUE(db_->NewVersionFrom(root).ok());
  }
  auto children = db_->Dnext(root);
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(children->size(), static_cast<size_t>(kWidth));
}

TEST_F(TraversalTest, TraversalsDoNotCrossObjects) {
  // Two objects with adjacent oids: temporal traversal must stay within one
  // object's history.
  VersionId a = MustPnew("a");
  VersionId b = MustPnew("b");
  ASSERT_EQ(b.oid.value, a.oid.value + 1);
  auto ta = db_->Tnext(a);
  ASSERT_TRUE(ta.ok());
  EXPECT_FALSE(ta->has_value());
  auto tb = db_->Tprevious(b);
  ASSERT_TRUE(tb.ok());
  EXPECT_FALSE(tb->has_value());
}

}  // namespace
}  // namespace ode
