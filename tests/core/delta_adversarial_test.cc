// Adversarial delta::Apply inputs: every rejection path gets a hand-built
// delta pinning the exact typed error.  Each shape here also exists as a
// seed under tests/fuzz/corpus/delta_apply/ (see make_seed_corpus.cc), so
// the same hostile bytes run through the fuzz registry under sanitizers.

#include "core/delta.h"

#include <gtest/gtest.h>

#include <string>

#include "util/coding.h"
#include "util/slice.h"

namespace ode {
namespace delta {
namespace {

const std::string kBase =
    "the quick brown fox jumps over the lazy dog 0123456789 the quick "
    "brown fox jumps over the lazy dog";

void ExpectCorruption(const std::string& delta, const std::string& message) {
  auto result = Apply(Slice(kBase), Slice(delta));
  ASSERT_FALSE(result.ok()) << "expected: " << message;
  EXPECT_TRUE(result.status().IsCorruption()) << result.status().ToString();
  EXPECT_EQ(result.status().message(), message);
}

TEST(DeltaAdversarialTest, EmptyDeltaMissesTargetLength) {
  ExpectCorruption("", "delta missing target length");
}

TEST(DeltaAdversarialTest, UnterminatedLengthVarint) {
  ExpectCorruption(std::string(10, '\xff'), "delta missing target length");
}

TEST(DeltaAdversarialTest, CopyOutOfBaseRange) {
  std::string d;
  PutVarint64(&d, 10);
  d.push_back(0);  // COPY
  PutVarint64(&d, 1000);  // offset far past the base
  PutVarint64(&d, 10);
  ExpectCorruption(d, "COPY out of base range");
}

TEST(DeltaAdversarialTest, CopyLengthOverhangsBase) {
  std::string d;
  PutVarint64(&d, 50);
  d.push_back(0);
  PutVarint64(&d, kBase.size() - 5);  // valid offset...
  PutVarint64(&d, 50);                // ...but the run exits the base
  ExpectCorruption(d, "COPY out of base range");
}

TEST(DeltaAdversarialTest, CopyOffsetPlusLengthCannotWrap) {
  // Offset and length each near 2^64: a naive `offset + length` check
  // wraps and passes; the subtraction form must still reject.
  std::string d;
  PutVarint64(&d, 10);
  d.push_back(0);
  PutVarint64(&d, 0xffffffffffffff00ull);
  PutVarint64(&d, 0x200ull);
  ExpectCorruption(d, "COPY out of base range");
}

TEST(DeltaAdversarialTest, OversizedAddClaim) {
  std::string d;
  PutVarint64(&d, 100);
  d.push_back(1);  // ADD
  PutVarint64(&d, 0xffffffffu);  // claims 4 GiB...
  d += "short";                  // ...carries 5 bytes
  ExpectCorruption(d, "truncated ADD op");
}

TEST(DeltaAdversarialTest, OutputExceedsDeclaredLength) {
  std::string d;
  PutVarint64(&d, 3);  // declares 3 bytes
  d.push_back(1);
  PutVarint64(&d, 8);
  d += "toolong!";
  ExpectCorruption(d, "delta output exceeds declared length");
}

TEST(DeltaAdversarialTest, ZeroLengthOpsThenTruncation) {
  // Zero-length COPY is legal (produces nothing) but cannot mask a
  // truncated op behind it.
  std::string d;
  PutVarint64(&d, 5);
  d.push_back(0);
  PutVarint64(&d, 0);
  PutVarint64(&d, 0);
  d.push_back(0);  // COPY tag with no operands
  ExpectCorruption(d, "truncated COPY op");
}

TEST(DeltaAdversarialTest, ZeroLengthOpsAloneFailTheLengthCheck) {
  // All-zero ops terminate (no infinite loop) and fail the final length
  // equation instead of "succeeding" with a short result.
  std::string d;
  PutVarint64(&d, 5);
  for (int i = 0; i < 16; ++i) {
    d.push_back(0);
    PutVarint64(&d, 0);
    PutVarint64(&d, 0);
  }
  ExpectCorruption(d, "delta produced wrong length");
}

TEST(DeltaAdversarialTest, UnknownOpTag) {
  std::string d;
  PutVarint64(&d, 4);
  d.push_back(9);
  ExpectCorruption(d, "unknown delta op tag");
}

TEST(DeltaAdversarialTest, OpsEndBeforeDeclaredLength) {
  std::string d;
  PutVarint64(&d, 64);
  d.push_back(1);
  PutVarint64(&d, 4);
  d += "four";
  ExpectCorruption(d, "delta produced wrong length");
}

TEST(DeltaAdversarialTest, ValidDeltaStillApplies) {
  const std::string target =
      "the quick brown cat jumps over the lazy dog 0123456789 extra tail";
  auto result = Apply(Slice(kBase), Slice(Encode(Slice(kBase), Slice(target))));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, target);
}

}  // namespace
}  // namespace delta
}  // namespace ode
