#include <gtest/gtest.h>

#include "core/database.h"
#include "storage/fault_env.h"
#include "core/version_ptr.h"
#include "tests/testing/db_fixture.h"
#include "util/random.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;
using testing_internal::Doc;

/// "Persistent objects ... continue to exist after the program that created
/// them has terminated" — reopen tests.
class PersistenceTest : public DatabaseFixture {};

TEST_F(PersistenceTest, ObjectsSurviveReopen) {
  auto ref = pnew(*db_, Doc{"persistent", 3});
  ASSERT_TRUE(ref.ok());
  const ObjectId oid = ref->oid();
  ReopenDb();
  Ref<Doc> again(db_.get(), oid);
  auto doc = again.Load();
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->text, "persistent");
  EXPECT_EQ(doc->revision, 3);
}

TEST_F(PersistenceTest, VersionGraphSurvivesReopen) {
  SetUpRawType();
  VersionId v0 = MustPnew("v0");
  auto v1 = db_->NewVersionFrom(v0);
  auto v2 = db_->NewVersionFrom(v0);
  ASSERT_TRUE(v1.ok() && v2.ok());
  ASSERT_OK(db_->UpdateVersion(*v1, Slice("v1 content")));
  ReopenDb();
  // Values, latest, and both relationships intact.
  EXPECT_EQ(MustRead(*v1), "v1 content");
  EXPECT_EQ(MustRead(v0), "v0");
  auto latest = db_->Latest(v0.oid);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, *v2);
  auto children = db_->Dnext(v0);
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(children->size(), 2u);
  auto tprev = db_->Tprevious(*v2);
  ASSERT_TRUE(tprev.ok());
  EXPECT_EQ(tprev->value(), *v1);
}

TEST_F(PersistenceTest, OidAllocationContinuesAfterReopen) {
  SetUpRawType();
  VersionId before = MustPnew("a");
  ReopenDb();
  SetUpRawType();
  VersionId after = MustPnew("b");
  EXPECT_GT(after.oid.value, before.oid.value);
}

TEST_F(PersistenceTest, TypeRegistryPersists) {
  auto id1 = db_->RegisterType("Persistent Type");
  ASSERT_TRUE(id1.ok());
  ReopenDb();
  auto id2 = db_->RegisterType("Persistent Type");
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(*id1, *id2);
}

TEST_F(PersistenceTest, ClustersPersist) {
  auto type = db_->RegisterType("Durable");
  ASSERT_TRUE(type.ok());
  auto vid = db_->PnewRaw(*type, Slice("x"));
  ASSERT_TRUE(vid.ok());
  ReopenDb();
  auto size = db_->ClusterSize(*type);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 1u);
}

TEST_F(PersistenceTest, DeltaChainsSurviveReopen) {
  db_.reset();
  DatabaseOptions options = MakeOptions();
  options.payload_strategy = PayloadKind::kDelta;
  options.delta_keyframe_interval = 8;
  {
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
  }
  SetUpRawType();
  Random rng(5);
  std::string content = rng.NextBytes(4000);
  VersionId v0 = MustPnew(content);
  VersionId current = v0;
  std::vector<std::string> states = {content};
  for (int i = 0; i < 6; ++i) {
    auto next = db_->NewVersionFrom(current);
    ASSERT_TRUE(next.ok());
    content[rng.Uniform(content.size())] ^= 3;
    ASSERT_OK(db_->UpdateVersion(*next, Slice(content)));
    states.push_back(content);
    current = *next;
  }
  db_.reset();
  {
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
  }
  for (size_t i = 0; i < states.size(); ++i) {
    auto bytes =
        db_->ReadVersion(VersionId{v0.oid, static_cast<VersionNum>(i + 1)});
    ASSERT_TRUE(bytes.ok()) << bytes.status();
    EXPECT_EQ(*bytes, states[i]) << "version " << i + 1;
  }
}

/// Crash tests at the Database level: the versioning catalog must stay
/// consistent across a crash (WAL recovery underneath).
class DatabaseCrashTest : public ::testing::Test {
 protected:
  DatabaseCrashTest() : fault_env_(nullptr) {}

  void Open() {
    DatabaseOptions options;
    options.storage.env = &fault_env_;
    options.storage.path = "/db";
    options.clock = &clock_;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = std::move(*db);
    auto type = db_->RegisterType("raw");
    ASSERT_TRUE(type.ok());
    type_id_ = *type;
  }

  void Crash() {
    fault_env_.CrashAndLoseUnsynced();
    db_.reset();
  }

  FaultInjectionEnv fault_env_;
  LogicalClock clock_;
  std::unique_ptr<Database> db_;
  uint32_t type_id_ = 0;
};

TEST_F(DatabaseCrashTest, CommittedVersionsSurviveCrash) {
  Open();
  auto v0 = db_->PnewRaw(type_id_, Slice("survives"));
  ASSERT_TRUE(v0.ok());
  auto v1 = db_->NewVersionOf(v0->oid);
  ASSERT_TRUE(v1.ok());
  ASSERT_OK(db_->UpdateVersion(*v1, Slice("also survives")));
  Crash();
  Open();
  auto b0 = db_->ReadVersion(*v0);
  auto b1 = db_->ReadVersion(*v1);
  ASSERT_TRUE(b0.ok()) << b0.status();
  ASSERT_TRUE(b1.ok()) << b1.status();
  EXPECT_EQ(*b0, "survives");
  EXPECT_EQ(*b1, "also survives");
}

TEST_F(DatabaseCrashTest, OpenTransactionVanishesOnCrash) {
  Open();
  auto keep = db_->PnewRaw(type_id_, Slice("keep"));
  ASSERT_TRUE(keep.ok());
  ASSERT_OK(db_->Begin());
  auto doomed = db_->PnewRaw(type_id_, Slice("doomed"));
  ASSERT_TRUE(doomed.ok());
  ASSERT_OK(db_->UpdateLatest(keep->oid, Slice("modified")));
  Crash();  // Before Commit().
  Open();
  auto kept = db_->ReadLatest(keep->oid);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(*kept, "keep");
  auto exists = db_->ObjectExists(doomed->oid);
  ASSERT_TRUE(exists.ok());
  EXPECT_FALSE(*exists);
}

TEST_F(DatabaseCrashTest, GraphInvariantsHoldAfterCrash) {
  Open();
  auto v0 = db_->PnewRaw(type_id_, Slice("v0"));
  ASSERT_TRUE(v0.ok());
  auto v1 = db_->NewVersionFrom(*v0);
  auto v2 = db_->NewVersionFrom(*v0);
  ASSERT_TRUE(v1.ok() && v2.ok());
  Crash();
  Open();
  auto header = db_->Header(v0->oid);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->version_count, 3u);
  EXPECT_EQ(header->latest, v2->vnum);
  auto children = db_->Dnext(*v0);
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(children->size(), 2u);
}

}  // namespace
}  // namespace ode
