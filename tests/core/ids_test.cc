#include "core/ids.h"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

namespace ode {
namespace {

TEST(IdsTest, DefaultIdsAreInvalid) {
  EXPECT_FALSE(ObjectId{}.valid());
  EXPECT_FALSE(VersionId{}.valid());
  EXPECT_FALSE((VersionId{ObjectId{1}, kNoVersion}).valid());
  EXPECT_FALSE((VersionId{ObjectId{}, 1}).valid());
  EXPECT_TRUE((VersionId{ObjectId{1}, 1}).valid());
}

TEST(IdsTest, ObjectIdOrderingAndEquality) {
  EXPECT_EQ(ObjectId{5}, ObjectId{5});
  EXPECT_NE(ObjectId{5}, ObjectId{6});
  EXPECT_LT(ObjectId{5}, ObjectId{6});
}

TEST(IdsTest, VersionIdOrdersByOidThenVnum) {
  const VersionId a{ObjectId{1}, 9};
  const VersionId b{ObjectId{2}, 1};
  const VersionId c{ObjectId{2}, 2};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(b, (VersionId{ObjectId{2}, 1}));
}

TEST(IdsTest, StreamFormat) {
  std::ostringstream oid_stream;
  oid_stream << ObjectId{42};
  EXPECT_EQ(oid_stream.str(), "oid:42");
  std::ostringstream vid_stream;
  vid_stream << VersionId{ObjectId{42}, 7};
  EXPECT_EQ(vid_stream.str(), "vid:42.7");
}

TEST(IdsTest, HashableInUnorderedContainers) {
  std::unordered_set<ObjectId> oids;
  oids.insert(ObjectId{1});
  oids.insert(ObjectId{1});
  oids.insert(ObjectId{2});
  EXPECT_EQ(oids.size(), 2u);

  std::unordered_set<VersionId> vids;
  vids.insert(VersionId{ObjectId{1}, 1});
  vids.insert(VersionId{ObjectId{1}, 2});
  vids.insert(VersionId{ObjectId{1}, 1});
  EXPECT_EQ(vids.size(), 2u);
}

TEST(IdsTest, SentinelConstants) {
  EXPECT_EQ(kNoVersion, 0u);
  EXPECT_EQ(kFirstVersion, 1u);
  EXPECT_GT(kFirstVersion, kNoVersion);
}

}  // namespace
}  // namespace ode
