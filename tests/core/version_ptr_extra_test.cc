#include <gtest/gtest.h>

#include "core/version_ptr.h"
#include "opp/runtime.h"
#include "tests/testing/db_fixture.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;
using testing_internal::Doc;

/// Additional reference-semantics coverage: cache behaviour, equality,
/// cross-reference updates, and the opp runtime on empty clusters.
class VersionPtrExtraTest : public DatabaseFixture {};

TEST_F(VersionPtrExtraTest, RefreshForcesReload) {
  auto ref = pnew(*db_, Doc{"v1", 1});
  ASSERT_TRUE(ref.ok());
  auto vp = ref->Pin();
  ASSERT_TRUE(vp.ok());
  EXPECT_EQ((*vp)->text, "v1");  // Cache populated.
  // Mutate the version BEHIND the pointer's cache (direct database call).
  ASSERT_OK(db_->Put(vp->vid(), Doc{"mutated behind cache", 2}));
  // The cache is stale by design (versions are normally immutable once
  // superseded); Refresh() resynchronizes.
  EXPECT_EQ((*vp)->text, "v1");
  vp->Refresh();
  EXPECT_EQ((*vp)->text, "mutated behind cache");
}

TEST_F(VersionPtrExtraTest, EqualityIsByIdentityNotContent) {
  auto a = pnew(*db_, Doc{"same", 1});
  auto b = pnew(*db_, Doc{"same", 1});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(*a, *b);  // Different objects, same content.
  Ref<Doc> a_again(db_.get(), a->oid());
  EXPECT_EQ(*a, a_again);
  auto va = a->Pin();
  auto vb = b->Pin();
  ASSERT_TRUE(va.ok() && vb.ok());
  EXPECT_NE(*va, *vb);
  VersionPtr<Doc> va_again(db_.get(), va->vid());
  EXPECT_EQ(*va, va_again);
}

TEST_F(VersionPtrExtraTest, TwoRefsToOneObjectSeeEachOthersWrites) {
  auto first = pnew(*db_, Doc{"initial", 1});
  ASSERT_TRUE(first.ok());
  Ref<Doc> second(db_.get(), first->oid());
  ASSERT_OK(first->Store(Doc{"written via first", 2}));
  EXPECT_EQ(second->text, "written via first");
  ASSERT_OK(second.Store(Doc{"written via second", 3}));
  EXPECT_EQ((*first)->text, "written via second");
}

TEST_F(VersionPtrExtraTest, PinAfterManyVersionsGetsLatest) {
  auto ref = pnew(*db_, Doc{"v1", 1});
  ASSERT_TRUE(ref.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(newversion(*ref).ok());
  }
  auto pinned = ref->Pin();
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(pinned->vid().vnum, 6u);
}

TEST_F(VersionPtrExtraTest, EmptyClusterRangeIsEmpty) {
  int visits = 0;
  for (Ref<Doc> doc : opp::ClusterRange<Doc>(*db_)) {
    (void)doc;
    ++visits;
  }
  EXPECT_EQ(visits, 0);
  EXPECT_EQ(opp::ClusterRange<Doc>(*db_).size(), 0u);
}

TEST_F(VersionPtrExtraTest, LoadReturnsIndependentCopies) {
  auto ref = pnew(*db_, Doc{"original", 1});
  ASSERT_TRUE(ref.ok());
  auto copy1 = ref->Load();
  ASSERT_TRUE(copy1.ok());
  copy1->text = "locally mutated";  // Must not affect the store.
  auto copy2 = ref->Load();
  ASSERT_TRUE(copy2.ok());
  EXPECT_EQ(copy2->text, "original");
}

}  // namespace
}  // namespace ode
