#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/check.h"
#include "core/database.h"
#include "storage/payload_store.h"
#include "storage/storage_engine.h"
#include "tests/testing/crash_harness.h"
#include "tests/testing/db_fixture.h"
#include "util/random.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;

/// Sum of physical payload bytes held by the content-addressed store.
uint64_t StoredBlobBytes(Database& db) {
  uint64_t bytes = 0;
  Status s = db.storage().WithReadTxn([&](ReadTxn& txn) -> Status {
    return db.storage().payload_store().ForEach(
        &txn, [&](const Hash128&, const PayloadStoreEntry& entry) {
          bytes += entry.size;
          return true;
        });
  });
  EXPECT_TRUE(s.ok()) << s;
  return bytes;
}

class DedupeTest : public DatabaseFixture {};

TEST_F(DedupeTest, DuplicateHeavyWorkloadSharesOneBlob) {
  SetUpRawType();
  Random rng(7);
  const std::string shared = rng.NextBytes(4096);
  constexpr int kObjects = 50;
  std::vector<ObjectId> oids;
  for (int i = 0; i < kObjects; ++i) {
    oids.push_back(MustPnew(shared).oid);
  }
  const VersionStats stats = db_->stats();
  EXPECT_EQ(stats.payload_blobs_created, 1u);
  EXPECT_EQ(stats.payload_dedupe_hits, static_cast<uint64_t>(kObjects - 1));
  EXPECT_EQ(stats.payload_dedupe_bytes_saved,
            static_cast<uint64_t>(kObjects - 1) * shared.size());
  // The acceptance bar: >= 2x stored-bytes reduction on duplicate-heavy
  // writes.  Here the logical write volume is kObjects payloads against ONE
  // stored copy.
  const uint64_t logical = static_cast<uint64_t>(kObjects) * shared.size();
  const uint64_t physical = StoredBlobBytes(*db_);
  EXPECT_EQ(physical, shared.size());
  EXPECT_GE(logical, 2 * physical);
  for (ObjectId oid : oids) {
    EXPECT_EQ(MustReadLatest(oid), shared);
  }
  auto report = CheckDatabase(*db_);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << report->errors.front();
  EXPECT_EQ(report->payload_blobs_checked, 1u);
  EXPECT_EQ(report->payload_refs_checked, static_cast<uint64_t>(kObjects));
}

TEST_F(DedupeTest, DeletingSharersFreesBlobOnlyAtLastReference) {
  SetUpRawType();
  const std::string shared(2000, 's');
  std::vector<ObjectId> oids;
  for (int i = 0; i < 5; ++i) oids.push_back(MustPnew(shared).oid);
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK(db_->PdeleteObject(oids[i]));
    EXPECT_EQ(db_->stats().payload_blobs_freed, 0u) << "after delete " << i;
    EXPECT_EQ(MustReadLatest(oids.back()), shared);
  }
  ASSERT_OK(db_->PdeleteObject(oids.back()));
  EXPECT_EQ(db_->stats().payload_blobs_freed, 1u);
  EXPECT_EQ(StoredBlobBytes(*db_), 0u);
  auto report = CheckDatabase(*db_);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << report->errors.front();
}

TEST_F(DedupeTest, UpdateToSameContentKeepsSingleBlob) {
  SetUpRawType();
  const std::string content(1500, 'c');
  VersionId a = MustPnew(content);
  VersionId b = MustPnew("something else entirely");
  // Rewriting b with a's bytes must land on the shared blob, and the
  // update path must insert-before-release so the refcount never dips
  // through zero when content is unchanged.
  ASSERT_OK(db_->UpdateVersion(b, Slice(content)));
  ASSERT_OK(db_->UpdateVersion(a, Slice(content)));  // Same-content rewrite.
  EXPECT_EQ(MustRead(a), content);
  EXPECT_EQ(MustRead(b), content);
  const VersionStats stats = db_->stats();
  EXPECT_EQ(stats.payload_blobs_created, 2u);  // content + "something else".
  EXPECT_EQ(stats.payload_blobs_freed, 1u);    // "something else".
  auto report = CheckDatabase(*db_);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << report->errors.front();
}

TEST_F(DedupeTest, DedupeSurvivesReopen) {
  SetUpRawType();
  const std::string shared(3000, 'r');
  ObjectId keep = MustPnew(shared).oid;
  ObjectId drop = MustPnew(shared).oid;
  ReopenDb();
  ASSERT_OK(db_->PdeleteObject(drop));
  EXPECT_EQ(MustReadLatest(keep), shared);
  EXPECT_EQ(StoredBlobBytes(*db_), shared.size());
  auto report = CheckDatabase(*db_);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << report->errors.front();
}

/// Twin run: the same randomized operation sequence against a
/// content-addressed database and a plain one must produce byte-identical
/// logical state — dedupe is a physical optimization only.
struct Twin {
  MemEnv env;
  std::unique_ptr<Database> db;
  uint32_t type_id = 0;

  void Open(bool content_addressed, PayloadKind strategy) {
    DatabaseOptions options;
    options.storage.env = &env;
    options.storage.path = "/db";
    options.content_addressed_payloads = content_addressed;
    options.payload_strategy = strategy;
    options.delta_keyframe_interval = 4;
    auto opened = Database::Open(options);
    ASSERT_TRUE(opened.ok()) << opened.status();
    db = std::move(*opened);
    auto id = db->RegisterType("raw");
    ASSERT_TRUE(id.ok()) << id.status();
    type_id = *id;
  }
};

class DedupeTwinTest : public ::testing::TestWithParam<PayloadKind> {};

TEST_P(DedupeTwinTest, LogicalStateMatchesPlainStorage) {
  Twin ca, plain;
  ca.Open(/*content_addressed=*/true, GetParam());
  plain.Open(/*content_addressed=*/false, GetParam());

  Random rng(2026);
  // A small pool of payloads so duplicates are common.
  std::vector<std::string> pool;
  for (int i = 0; i < 8; ++i) pool.push_back(rng.NextBytes(500 + 100 * i));
  auto pick = [&]() -> const std::string& {
    return pool[rng.Uniform(pool.size())];
  };

  std::vector<ObjectId> live;
  for (int step = 0; step < 400; ++step) {
    const uint32_t op = rng.Uniform(10);
    if (op < 3 || live.empty()) {
      const std::string& payload = pick();
      auto v1 = ca.db->PnewRaw(ca.type_id, Slice(payload));
      auto v2 = plain.db->PnewRaw(plain.type_id, Slice(payload));
      ASSERT_TRUE(v1.ok()) << v1.status();
      ASSERT_TRUE(v2.ok()) << v2.status();
      ASSERT_EQ(v1->oid.value, v2->oid.value);
      live.push_back(v1->oid);
    } else {
      const ObjectId oid = live[rng.Uniform(live.size())];
      if (op < 6) {
        ASSERT_OK(ca.db->NewVersionOf(oid).status());
        ASSERT_OK(plain.db->NewVersionOf(oid).status());
      } else if (op < 8) {
        const std::string& payload = pick();
        ASSERT_OK(ca.db->UpdateLatest(oid, Slice(payload)));
        ASSERT_OK(plain.db->UpdateLatest(oid, Slice(payload)));
      } else if (op == 8) {
        auto latest = ca.db->Latest(oid);
        ASSERT_TRUE(latest.ok()) << latest.status();
        Status s1 = ca.db->PdeleteVersion(*latest);
        Status s2 = plain.db->PdeleteVersion(*latest);
        ASSERT_EQ(s1.ok(), s2.ok()) << s1 << " vs " << s2;
        auto exists = ca.db->ObjectExists(oid);
        ASSERT_TRUE(exists.ok());
        if (!*exists) {
          live.erase(std::find_if(live.begin(), live.end(),
                                  [&](ObjectId o) { return o == oid; }));
        }
      } else {
        ASSERT_OK(ca.db->PdeleteObject(oid));
        ASSERT_OK(plain.db->PdeleteObject(oid));
        live.erase(std::find_if(live.begin(), live.end(),
                                [&](ObjectId o) { return o == oid; }));
      }
    }
  }

  EXPECT_EQ(ode::testing::DumpState(*ca.db), ode::testing::DumpState(*plain.db));
  for (Database* db : {ca.db.get(), plain.db.get()}) {
    auto report = CheckDatabase(*db);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_TRUE(report->ok()) << report->errors.front();
  }
  // The content-addressed twin must have actually deduplicated something on
  // this duplicate-heavy sequence.
  EXPECT_GT(ca.db->stats().payload_dedupe_hits, 0u);
  EXPECT_EQ(plain.db->stats().payload_dedupe_hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Strategies, DedupeTwinTest,
                         ::testing::Values(PayloadKind::kFull,
                                           PayloadKind::kDelta));

}  // namespace
}  // namespace ode
