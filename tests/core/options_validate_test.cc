#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "core/database.h"
#include "storage/env.h"
#include "tests/testing/util.h"

namespace ode {
namespace {

// Every knob's documented legal range, checked by DatabaseOptions::Validate
// and enforced at Database::Open (InvalidArgument naming the field, instead
// of clamping or surprise behavior deep in the stack).

DatabaseOptions BaseOptions(MemEnv* env) {
  DatabaseOptions options;
  options.storage.env = env;
  options.storage.path = "/db";
  return options;
}

void ExpectInvalid(const DatabaseOptions& options, const std::string& field) {
  Status s = options.Validate();
  ASSERT_FALSE(s.ok()) << "expected a violation for " << field;
  EXPECT_TRUE(s.IsInvalidArgument()) << s;
  EXPECT_NE(s.ToString().find(field), std::string::npos)
      << "violation should name '" << field << "': " << s;
}

TEST(OptionsValidateTest, DefaultsAreValid) {
  MemEnv env;
  EXPECT_OK(BaseOptions(&env).Validate());
}

TEST(OptionsValidateTest, BufferPoolPagesMustBePositive) {
  MemEnv env;
  DatabaseOptions options = BaseOptions(&env);
  options.storage.buffer_pool_pages = 0;
  ExpectInvalid(options, "buffer_pool_pages");
}

TEST(OptionsValidateTest, ShardCountsMustBeZeroOrPowerOfTwo) {
  MemEnv env;
  DatabaseOptions options = BaseOptions(&env);
  options.storage.buffer_pool_shards = 3;
  ExpectInvalid(options, "buffer_pool_shards");

  options = BaseOptions(&env);
  options.payload_cache_shards = 6;
  ExpectInvalid(options, "payload_cache_shards");

  options = BaseOptions(&env);
  options.latest_cache_shards = 5;
  ExpectInvalid(options, "latest_cache_shards");

  // 0 (auto) and powers of two are all legal.
  options = BaseOptions(&env);
  options.storage.buffer_pool_shards = 8;
  options.payload_cache_shards = 1;
  options.latest_cache_shards = 16;
  EXPECT_OK(options.Validate());
}

TEST(OptionsValidateTest, KeyframeIntervalMustBePositive) {
  MemEnv env;
  DatabaseOptions options = BaseOptions(&env);
  options.delta_keyframe_interval = 0;
  ExpectInvalid(options, "delta_keyframe_interval");
}

TEST(OptionsValidateTest, DeltaRatioMustBeInUnitInterval) {
  MemEnv env;
  DatabaseOptions options = BaseOptions(&env);

  options.delta_max_ratio = 0.0;
  ExpectInvalid(options, "delta_max_ratio");

  options.delta_max_ratio = -0.5;
  ExpectInvalid(options, "delta_max_ratio");

  options.delta_max_ratio = 1.5;
  ExpectInvalid(options, "delta_max_ratio");

  options.delta_max_ratio = std::numeric_limits<double>::quiet_NaN();
  ExpectInvalid(options, "delta_max_ratio");

  options.delta_max_ratio = 1.0;  // Inclusive upper bound.
  EXPECT_OK(options.Validate());
}

TEST(OptionsValidateTest, SamplingKnobsMustBeZeroOrPowerOfTwo) {
  MemEnv env;
  DatabaseOptions options = BaseOptions(&env);
  options.metrics_sample_every = 3;
  ExpectInvalid(options, "metrics_sample_every");

  options = BaseOptions(&env);
  options.trace_sample_every = 12;
  ExpectInvalid(options, "trace_sample_every");

  options = BaseOptions(&env);
  options.metrics_sample_every = 0;
  options.trace_sample_every = 1;
  EXPECT_OK(options.Validate());
}

TEST(OptionsValidateTest, WriteLatchStripesMustBePowerOfTwo) {
  MemEnv env;
  DatabaseOptions options = BaseOptions(&env);
  options.storage.write_latch_stripes = 0;
  ExpectInvalid(options, "write_latch_stripes");

  options.storage.write_latch_stripes = 3;
  ExpectInvalid(options, "write_latch_stripes");

  // 1 (a single global write latch) and any power of two are legal.
  options.storage.write_latch_stripes = 1;
  EXPECT_OK(options.Validate());
  options.storage.write_latch_stripes = 256;
  EXPECT_OK(options.Validate());
}

TEST(OptionsValidateTest, GroupCommitKnobsHaveDocumentedRanges) {
  MemEnv env;
  DatabaseOptions options = BaseOptions(&env);
  options.storage.group_commit_max_batch = 0;
  ExpectInvalid(options, "group_commit_max_batch");

  options = BaseOptions(&env);
  options.storage.group_commit_max_wait_us = 2'000'000;  // > one second.
  ExpectInvalid(options, "group_commit_max_wait_us");

  // Zero linger (pure opportunistic batching) is legal, as is a second.
  options = BaseOptions(&env);
  options.storage.group_commit_max_wait_us = 0;
  EXPECT_OK(options.Validate());
  options.storage.group_commit_max_wait_us = 1'000'000;
  options.storage.group_commit_max_batch = 1;
  options.storage.commit_mode = CommitMode::kAsync;
  EXPECT_OK(options.Validate());
}

TEST(OptionsValidateTest, TraceBufferMustHoldAtLeastOneEvent) {
  MemEnv env;
  DatabaseOptions options = BaseOptions(&env);
  options.trace_buffer_events = 0;
  ExpectInvalid(options, "trace_buffer_events");
}

TEST(OptionsValidateTest, OpenRefusesInvalidOptionsBeforeTouchingStorage) {
  MemEnv env;
  DatabaseOptions options = BaseOptions(&env);
  options.delta_keyframe_interval = 0;
  auto db = Database::Open(options);
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsInvalidArgument()) << db.status();
  // Validation fires before storage is created: nothing was written.
  EXPECT_FALSE(env.FileExists("/db/data.odb"));
}

}  // namespace
}  // namespace ode
