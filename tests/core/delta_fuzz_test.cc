#include <gtest/gtest.h>

#include "core/delta.h"
#include "tests/testing/util.h"
#include "util/random.h"

namespace ode {
namespace {

/// Robustness of delta::Apply against arbitrary and mutated inputs: clean
/// Status errors only, never crashes or out-of-bounds reads.
class DeltaFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaFuzzTest, RandomBytesNeverCrashApply) {
  Random rng(GetParam());
  const std::string base = rng.NextBytes(500);
  for (int round = 0; round < 500; ++round) {
    const std::string garbage = rng.NextBytes(rng.Range(0, 200));
    auto applied = delta::Apply(Slice(base), Slice(garbage));
    if (applied.ok()) {
      // Exceedingly unlikely but legal: garbage that happens to be a valid
      // delta must still produce a length-consistent result.
      SUCCEED();
    } else {
      EXPECT_TRUE(applied.status().IsCorruption());
    }
  }
}

TEST_P(DeltaFuzzTest, MutatedValidDeltasFailCleanlyOrApply) {
  Random rng(GetParam() + 7);
  const std::string base = rng.NextBytes(2000);
  std::string target = base;
  target.insert(900, "mutation payload");
  const std::string valid = delta::Encode(Slice(base), Slice(target));
  for (int round = 0; round < 300; ++round) {
    std::string mutant = valid;
    const int flips = static_cast<int>(rng.Range(1, 5));
    for (int f = 0; f < flips; ++f) {
      mutant[rng.Uniform(mutant.size())] ^=
          static_cast<char>(1 << rng.Uniform(8));
    }
    auto applied = delta::Apply(Slice(base), Slice(mutant));
    // Either a clean corruption error or a successful apply (a flip inside
    // ADD literal bytes is undetectable at this layer; the heap/WAL CRCs
    // above this layer catch storage corruption).
    if (!applied.ok()) {
      EXPECT_TRUE(applied.status().IsCorruption());
    }
  }
}

TEST_P(DeltaFuzzTest, TruncatedValidDeltasAlwaysFail) {
  Random rng(GetParam() + 77);
  const std::string base = rng.NextBytes(1000);
  std::string target = base;
  target.replace(200, 50, rng.NextBytes(80));
  const std::string valid = delta::Encode(Slice(base), Slice(target));
  for (size_t cut = 0; cut < valid.size(); cut += 3) {
    auto applied = delta::Apply(Slice(base), Slice(valid.data(), cut));
    EXPECT_FALSE(applied.ok()) << "cut=" << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaFuzzTest, ::testing::Values(81, 82));

}  // namespace
}  // namespace ode
