#include "core/index.h"

#include <gtest/gtest.h>

#include "tests/testing/db_fixture.h"
#include "util/random.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;
using testing_internal::Doc;

class IndexTest : public DatabaseFixture {
 protected:
  /// An index over Doc.text.
  std::unique_ptr<SecondaryIndex<Doc>> OpenTextIndex() {
    auto index = SecondaryIndex<Doc>::Open(
        *db_, "doc-by-text",
        [](const Doc& doc) { return std::optional<std::string>(doc.text); });
    EXPECT_TRUE(index.ok()) << index.status();
    return index.ok() ? std::move(*index) : nullptr;
  }
};

TEST_F(IndexTest, LookupFindsByKey) {
  auto index = OpenTextIndex();
  ASSERT_NE(index, nullptr);
  auto a = pnew(*db_, Doc{"alpha", 1});
  auto b = pnew(*db_, Doc{"beta", 2});
  auto c = pnew(*db_, Doc{"alpha", 3});
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());

  auto hits = index->Lookup(Slice("alpha"));
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 2u);
  EXPECT_EQ((*hits)[0].oid(), a->oid());
  EXPECT_EQ((*hits)[1].oid(), c->oid());
  auto beta = index->Lookup(Slice("beta"));
  ASSERT_TRUE(beta.ok());
  EXPECT_EQ(beta->size(), 1u);
  auto none = index->Lookup(Slice("gamma"));
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST_F(IndexTest, PrefixKeysDoNotCollide) {
  auto index = OpenTextIndex();
  ASSERT_NE(index, nullptr);
  ASSERT_TRUE(pnew(*db_, Doc{"ab", 1}).ok());
  ASSERT_TRUE(pnew(*db_, Doc{"abc", 2}).ok());
  auto ab = index->Lookup(Slice("ab"));
  ASSERT_TRUE(ab.ok());
  EXPECT_EQ(ab->size(), 1u);
  EXPECT_EQ((*ab)[0]->revision, 1);
}

TEST_F(IndexTest, UpdateMovesEntry) {
  auto index = OpenTextIndex();
  ASSERT_NE(index, nullptr);
  auto doc = pnew(*db_, Doc{"old-key", 1});
  ASSERT_TRUE(doc.ok());
  ASSERT_OK(doc->Store(Doc{"new-key", 1}));
  auto old_hits = index->Lookup(Slice("old-key"));
  auto new_hits = index->Lookup(Slice("new-key"));
  ASSERT_TRUE(old_hits.ok() && new_hits.ok());
  EXPECT_TRUE(old_hits->empty());
  EXPECT_EQ(new_hits->size(), 1u);
}

TEST_F(IndexTest, IndexTracksLatestVersionOnly) {
  auto index = OpenTextIndex();
  ASSERT_NE(index, nullptr);
  auto doc = pnew(*db_, Doc{"v1-key", 1});
  ASSERT_TRUE(doc.ok());
  auto v2 = newversion(*doc);
  ASSERT_TRUE(v2.ok());
  ASSERT_OK(v2->Store(Doc{"v2-key", 2}));
  // Only the latest key is indexed.
  auto v1_hits = index->Lookup(Slice("v1-key"));
  auto v2_hits = index->Lookup(Slice("v2-key"));
  ASSERT_TRUE(v1_hits.ok() && v2_hits.ok());
  EXPECT_TRUE(v1_hits->empty());
  EXPECT_EQ(v2_hits->size(), 1u);
  // Deleting the latest re-points the index at the promoted version.
  ASSERT_OK(pdelete(*v2));
  v1_hits = index->Lookup(Slice("v1-key"));
  v2_hits = index->Lookup(Slice("v2-key"));
  ASSERT_TRUE(v1_hits.ok() && v2_hits.ok());
  EXPECT_EQ(v1_hits->size(), 1u);
  EXPECT_TRUE(v2_hits->empty());
}

TEST_F(IndexTest, DeleteRemovesEntry) {
  auto index = OpenTextIndex();
  ASSERT_NE(index, nullptr);
  auto doc = pnew(*db_, Doc{"doomed", 1});
  ASSERT_TRUE(doc.ok());
  ASSERT_OK(pdelete(*doc));
  auto hits = index->Lookup(Slice("doomed"));
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
  auto count = index->Count();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
}

TEST_F(IndexTest, RangeQueryOverNumericKeys) {
  auto index = SecondaryIndex<Doc>::Open(
      *db_, "doc-by-revision", [](const Doc& doc) {
        return std::optional<std::string>(OrderedKeyFromInt(doc.revision));
      });
  ASSERT_TRUE(index.ok());
  for (int64_t revision : {5, -3, 12, 0, 7, -8}) {
    ASSERT_TRUE(pnew(*db_, Doc{"d", revision}).ok());
  }
  auto in_range = (*index)->Range(Slice(OrderedKeyFromInt(-3)),
                                  Slice(OrderedKeyFromInt(7)));
  ASSERT_TRUE(in_range.ok());
  std::vector<int64_t> revisions;
  for (const Ref<Doc>& ref : *in_range) {
    revisions.push_back(ref->revision);
  }
  EXPECT_EQ(revisions, (std::vector<int64_t>{-3, 0, 5, 7}));
}

TEST_F(IndexTest, BackfillIndexesPreexistingObjects) {
  // Objects created BEFORE the index opens are picked up by reconciliation.
  auto a = pnew(*db_, Doc{"preexisting", 1});
  ASSERT_TRUE(a.ok());
  auto index = OpenTextIndex();
  ASSERT_NE(index, nullptr);
  auto hits = index->Lookup(Slice("preexisting"));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
}

TEST_F(IndexTest, ReconcilesAfterOfflineChanges) {
  ObjectId oid;
  {
    auto index = OpenTextIndex();
    ASSERT_NE(index, nullptr);
    auto doc = pnew(*db_, Doc{"before", 1});
    ASSERT_TRUE(doc.ok());
    oid = doc->oid();
  }
  // Index instance gone: changes happen unindexed.
  ASSERT_OK(db_->PutLatest(oid, Doc{"after", 1}));
  // Re-opening reconciles stored entries with reality.
  auto index = OpenTextIndex();
  ASSERT_NE(index, nullptr);
  auto before = index->Lookup(Slice("before"));
  auto after = index->Lookup(Slice("after"));
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_TRUE(before->empty());
  EXPECT_EQ(after->size(), 1u);
}

TEST_F(IndexTest, EntriesPersistAcrossReopen) {
  auto doc_oid = ObjectId{};
  {
    auto index = OpenTextIndex();
    ASSERT_NE(index, nullptr);
    auto doc = pnew(*db_, Doc{"durable", 1});
    ASSERT_TRUE(doc.ok());
    doc_oid = doc->oid();
  }
  ReopenDb();
  auto index = OpenTextIndex();
  ASSERT_NE(index, nullptr);
  auto hits = index->Lookup(Slice("durable"));
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].oid(), doc_oid);
}

TEST_F(IndexTest, SelectiveExtractorSkipsObjects) {
  auto index = SecondaryIndex<Doc>::Open(
      *db_, "only-positive", [](const Doc& doc) -> std::optional<std::string> {
        if (doc.revision <= 0) return std::nullopt;
        return doc.text;
      });
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(pnew(*db_, Doc{"yes", 5}).ok());
  ASSERT_TRUE(pnew(*db_, Doc{"no", -5}).ok());
  auto count = (*index)->Count();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
}

TEST_F(IndexTest, TwoIndexesOverOneTypeAreIndependent) {
  auto by_text = OpenTextIndex();
  auto by_revision = SecondaryIndex<Doc>::Open(
      *db_, "doc-by-revision", [](const Doc& doc) {
        return std::optional<std::string>(OrderedKeyFromInt(doc.revision));
      });
  ASSERT_NE(by_text, nullptr);
  ASSERT_TRUE(by_revision.ok());
  ASSERT_TRUE(pnew(*db_, Doc{"k", 9}).ok());
  auto text_hits = by_text->Lookup(Slice("k"));
  auto revision_hits = (*by_revision)->Lookup(Slice(OrderedKeyFromInt(9)));
  ASSERT_TRUE(text_hits.ok() && revision_hits.ok());
  EXPECT_EQ(text_hits->size(), 1u);
  EXPECT_EQ(revision_hits->size(), 1u);
  EXPECT_TRUE(by_text->health().ok());
  EXPECT_TRUE((*by_revision)->health().ok());
}

TEST_F(IndexTest, OtherTypesDoNotTouchTheIndex) {
  auto index = OpenTextIndex();
  ASSERT_NE(index, nullptr);
  auto other_type = db_->RegisterType("unrelated");
  ASSERT_TRUE(other_type.ok());
  ASSERT_TRUE(db_->PnewRaw(*other_type, Slice("raw bytes")).ok());
  auto count = index->Count();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
}

TEST_F(IndexTest, RandomizedAgainstModel) {
  auto index = OpenTextIndex();
  ASSERT_NE(index, nullptr);
  Random rng(2024);
  std::map<uint64_t, std::string> model;  // oid -> current key.
  std::vector<Ref<Doc>> refs;
  const std::vector<std::string> keys = {"red", "green", "blue", "cyan"};
  for (int op = 0; op < 300; ++op) {
    const int action = static_cast<int>(rng.Uniform(10));
    if (refs.empty() || action < 3) {
      const std::string& key = keys[rng.Uniform(keys.size())];
      auto ref = pnew(*db_, Doc{key, 0});
      ASSERT_TRUE(ref.ok());
      refs.push_back(*ref);
      model[ref->oid().value] = key;
    } else if (action < 7) {
      Ref<Doc>& target = refs[rng.Uniform(refs.size())];
      if (model.count(target.oid().value) == 0) continue;
      const std::string& key = keys[rng.Uniform(keys.size())];
      ASSERT_OK(target.Store(Doc{key, 0}));
      model[target.oid().value] = key;
    } else if (action < 9) {
      Ref<Doc>& target = refs[rng.Uniform(refs.size())];
      if (model.count(target.oid().value) == 0) continue;
      ASSERT_TRUE(newversion(target).ok());  // Key unchanged (copy).
    } else {
      const size_t pick = rng.Uniform(refs.size());
      if (model.count(refs[pick].oid().value) == 0) continue;
      ASSERT_OK(pdelete(refs[pick]));
      model.erase(refs[pick].oid().value);
    }
  }
  ASSERT_TRUE(index->health().ok()) << index->health();
  for (const std::string& key : keys) {
    std::vector<ObjectId> expected;
    for (const auto& [oid, current] : model) {
      if (current == key) expected.push_back(ObjectId{oid});
    }
    auto hits = index->raw().Lookup(Slice(key));
    ASSERT_TRUE(hits.ok());
    EXPECT_EQ(*hits, expected) << "key=" << key;
  }
}

}  // namespace
}  // namespace ode
