#include "core/cursor.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/database.h"
#include "tests/testing/db_fixture.h"
#include "tests/testing/util.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;

class CursorTest : public DatabaseFixture {
 protected:
  void SetUp() override {
    DatabaseFixture::SetUp();
    SetUpRawType();
  }
};

TEST_F(CursorTest, EmptyDatabaseIsImmediatelyInvalid) {
  ObjectCursor objs(*db_);
  EXPECT_FALSE(objs.Valid());
  EXPECT_OK(objs.status());

  VersionCursor vers(*db_, ObjectId{42});
  EXPECT_FALSE(vers.Valid());
  EXPECT_OK(vers.status());

  ClusterCursor cluster(*db_, /*type_id=*/9999);
  EXPECT_FALSE(cluster.Valid());
  EXPECT_OK(cluster.status());
}

TEST_F(CursorTest, ObjectCursorSeesEveryObjectInOidOrder) {
  std::vector<ObjectId> created;
  for (int i = 0; i < 7; ++i) {
    created.push_back(MustPnew("payload " + std::to_string(i)).oid);
  }

  std::vector<std::pair<ObjectId, uint32_t>> via_cursor;
  ObjectCursor c(*db_);
  for (; c.Valid(); c.Next()) {
    via_cursor.emplace_back(c.oid(), c.header().version_count);
  }
  ASSERT_OK(c.status());

  ASSERT_EQ(via_cursor.size(), created.size());
  for (size_t i = 0; i < created.size(); ++i) {
    EXPECT_EQ(via_cursor[i].first, created[i]);  // Ascending oid order.
    EXPECT_EQ(via_cursor[i].second, 1u);         // One version each.
  }
}

TEST_F(CursorTest, SmallBatchesResumeWithoutSkippingOrRepeating) {
  for (int i = 0; i < 9; ++i) MustPnew("p" + std::to_string(i));

  // batch_size 2 forces five refills; each entry must appear exactly once.
  std::vector<uint64_t> seen;
  for (ObjectCursor c(*db_, /*batch_size=*/2); c.Valid(); c.Next()) {
    seen.push_back(c.oid().value);
  }
  ASSERT_EQ(seen.size(), 9u);
  for (size_t i = 1; i < seen.size(); ++i) EXPECT_LT(seen[i - 1], seen[i]);
}

TEST_F(CursorTest, VersionCursorWalksTemporalOrderWithMeta) {
  VersionId v1 = MustPnew("base");
  ASSERT_OK_AND_ASSIGN(VersionId v2, db_->NewVersionOf(v1.oid));
  ASSERT_OK(db_->UpdateVersion(v2, Slice("second")));
  ASSERT_OK_AND_ASSIGN(VersionId v3, db_->NewVersionFrom(v1));

  std::vector<VersionNum> order;
  VersionCursor c(*db_, v1.oid, /*batch_size=*/1);
  for (; c.Valid(); c.Next()) {
    EXPECT_EQ(c.vid().oid, v1.oid);
    EXPECT_EQ(c.vid().vnum, c.meta().vnum);
    order.push_back(c.vid().vnum);
  }
  ASSERT_OK(c.status());
  EXPECT_EQ(order, (std::vector<VersionNum>{v1.vnum, v2.vnum, v3.vnum}));

  // The cursor is scoped to one object: a neighbor's versions never leak in.
  VersionId other = MustPnew("other object");
  VersionCursor scoped(*db_, v1.oid);
  size_t count = 0;
  for (; scoped.Valid(); scoped.Next()) {
    EXPECT_NE(scoped.vid().oid, other.oid);
    ++count;
  }
  ASSERT_OK(scoped.status());
  EXPECT_EQ(count, 3u);
}

TEST_F(CursorTest, TypeCursorListsEveryRegisteredType) {
  ASSERT_OK_AND_ASSIGN(uint32_t doc_id, db_->RegisterType("doc"));
  ASSERT_OK_AND_ASSIGN(uint32_t img_id, db_->RegisterType("image"));

  std::vector<std::pair<std::string, uint32_t>> types;
  TypeCursor c(*db_, /*batch_size=*/1);
  for (; c.Valid(); c.Next()) types.emplace_back(c.name(), c.id());
  ASSERT_OK(c.status());

  // Name order: doc < image < raw (registered by the fixture).
  ASSERT_EQ(types.size(), 3u);
  EXPECT_EQ(types[0], (std::pair<std::string, uint32_t>{"doc", doc_id}));
  EXPECT_EQ(types[1], (std::pair<std::string, uint32_t>{"image", img_id}));
  EXPECT_EQ(types[2], (std::pair<std::string, uint32_t>{"raw", type_id_}));
}

TEST_F(CursorTest, ClusterCursorIsScopedToOneType) {
  ASSERT_OK_AND_ASSIGN(uint32_t doc_id, db_->RegisterType("doc"));
  VersionId raw1 = MustPnew("raw one");
  ASSERT_OK_AND_ASSIGN(VersionId doc1, db_->PnewRaw(doc_id, Slice("doc one")));
  VersionId raw2 = MustPnew("raw two");

  std::vector<ObjectId> raws;
  ClusterCursor c(*db_, type_id_, /*batch_size=*/1);
  for (; c.Valid(); c.Next()) raws.push_back(c.oid());
  ASSERT_OK(c.status());
  EXPECT_EQ(raws, (std::vector<ObjectId>{raw1.oid, raw2.oid}));

  std::vector<ObjectId> docs;
  for (ClusterCursor d(*db_, doc_id); d.Valid(); d.Next()) {
    docs.push_back(d.oid());
  }
  EXPECT_EQ(docs, (std::vector<ObjectId>{doc1.oid}));
}

TEST_F(CursorTest, MutationBetweenBatchesIsSafe) {
  std::vector<ObjectId> oids;
  for (int i = 0; i < 6; ++i) {
    oids.push_back(MustPnew("m" + std::to_string(i)).oid);
  }

  // With batch_size 1 every Next() refills; deleting an upcoming object
  // mid-scan must neither crash nor return it.
  std::vector<uint64_t> seen;
  ObjectCursor c(*db_, /*batch_size=*/1);
  for (; c.Valid(); c.Next()) {
    seen.push_back(c.oid().value);
    if (seen.size() == 2) ASSERT_OK(db_->PdeleteObject(oids[3]));
  }
  ASSERT_OK(c.status());
  std::vector<uint64_t> expected;
  for (const ObjectId& oid : oids) {
    if (oid != oids[3]) expected.push_back(oid.value);
  }
  EXPECT_EQ(seen, expected);
}

TEST_F(CursorTest, AbandoningACursorMidScanIsClean) {
  for (int i = 0; i < 5; ++i) MustPnew("e" + std::to_string(i));
  int visits = 0;
  {
    ObjectCursor c(*db_);
    for (; c.Valid(); c.Next()) {
      if (++visits == 2) break;  // Destructor runs with entries pending.
    }
    ASSERT_OK(c.status());
  }
  EXPECT_EQ(visits, 2);
  // The database is fully usable after the abandoned scan.
  MustPnew("after");
  int total = 0;
  ObjectCursor again(*db_);
  for (; again.Valid(); again.Next()) ++total;
  ASSERT_OK(again.status());
  EXPECT_EQ(total, 6);
}

}  // namespace
}  // namespace ode
