// Coherence suite for the read-path caches (core/payload_cache.h).
//
// Three layers:
//  1. Unit tests of the LRU/epoch mechanics in isolation.
//  2. Directed coherence scenarios on a Database with the cache enabled,
//     asserting byte-identical reads against a cache-disabled twin across
//     update / delete / abort / keyframe-rematerialization sequences.
//  3. A randomized differential test mirroring model_property_test.cc: the
//     same operation stream (including transactions that randomly abort)
//     runs against a cached and an uncached database, with full-state
//     comparison after every segment.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/database.h"
#include "core/payload_cache.h"
#include "tests/testing/db_fixture.h"
#include "util/random.h"

namespace ode {
namespace {

// ---------------------------------------------------------------------------
// 1. LRU/epoch unit tests
// ---------------------------------------------------------------------------

VersionId Vid(uint64_t oid, VersionNum vnum) {
  return VersionId{ObjectId{oid}, vnum};
}

TEST(VersionPayloadCacheTest, LookupMissThenHit) {
  VersionPayloadCache cache(1 << 20);
  std::string out;
  EXPECT_FALSE(cache.Lookup(Vid(1, 1), &out));
  cache.Insert(Vid(1, 1), "hello");
  ASSERT_TRUE(cache.Lookup(Vid(1, 1), &out));
  EXPECT_EQ(out, "hello");
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(VersionPayloadCacheTest, ZeroBudgetDisables) {
  VersionPayloadCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.Insert(Vid(1, 1), "x");
  std::string out;
  EXPECT_FALSE(cache.Lookup(Vid(1, 1), &out));
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(VersionPayloadCacheTest, ByteBudgetEvictsLeastRecentlyUsed) {
  // Budget for ~3 entries of 100 payload bytes (+64 overhead each).
  VersionPayloadCache cache(3 * (100 + VersionPayloadCache::kEntryOverhead));
  const std::string payload(100, 'p');
  cache.Insert(Vid(1, 1), payload);
  cache.Insert(Vid(1, 2), payload);
  cache.Insert(Vid(1, 3), payload);
  std::string out;
  ASSERT_TRUE(cache.Lookup(Vid(1, 1), &out));  // 1 becomes MRU.
  cache.Insert(Vid(1, 4), payload);            // Evicts 2 (LRU).
  EXPECT_FALSE(cache.Lookup(Vid(1, 2), &out));
  EXPECT_TRUE(cache.Lookup(Vid(1, 1), &out));
  EXPECT_TRUE(cache.Lookup(Vid(1, 3), &out));
  EXPECT_TRUE(cache.Lookup(Vid(1, 4), &out));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.bytes_in_use(), cache.byte_budget());
}

TEST(VersionPayloadCacheTest, OversizedEntryNotAdmitted) {
  VersionPayloadCache cache(128);
  cache.Insert(Vid(1, 1), std::string(4096, 'x'));
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(VersionPayloadCacheTest, EraseObjectDropsAllVersions) {
  VersionPayloadCache cache(1 << 20);
  cache.Insert(Vid(7, 1), "a");
  cache.Insert(Vid(7, 2), "b");
  cache.Insert(Vid(8, 1), "c");
  cache.EraseObject(ObjectId{7});
  std::string out;
  EXPECT_FALSE(cache.Lookup(Vid(7, 1), &out));
  EXPECT_FALSE(cache.Lookup(Vid(7, 2), &out));
  EXPECT_TRUE(cache.Lookup(Vid(8, 1), &out));
  EXPECT_EQ(cache.stats().invalidations, 2u);
}

TEST(VersionPayloadCacheTest, AbortEpochDiscardsOnlyEpochInstalls) {
  VersionPayloadCache cache(1 << 20);
  cache.Insert(Vid(1, 1), "committed");
  cache.BeginEpoch();
  cache.Insert(Vid(1, 2), "uncommitted");
  cache.AbortEpoch();
  std::string out;
  EXPECT_TRUE(cache.Lookup(Vid(1, 1), &out));
  EXPECT_FALSE(cache.Lookup(Vid(1, 2), &out));
  EXPECT_EQ(cache.stats().epoch_discards, 1u);
}

TEST(VersionPayloadCacheTest, CommitEpochPromotesInstalls) {
  VersionPayloadCache cache(1 << 20);
  cache.BeginEpoch();
  cache.Insert(Vid(1, 1), "v");
  cache.CommitEpoch();
  // A later abort of a different epoch must not touch the promoted entry.
  cache.BeginEpoch();
  cache.AbortEpoch();
  std::string out;
  EXPECT_TRUE(cache.Lookup(Vid(1, 1), &out));
}

TEST(VersionPayloadCacheTest, EpochOverwriteOfCommittedEntryIsDiscardable) {
  VersionPayloadCache cache(1 << 20);
  cache.Insert(Vid(1, 1), "old");
  cache.BeginEpoch();
  cache.Insert(Vid(1, 1), "new-uncommitted");
  cache.AbortEpoch();
  // The conservative choice: the overwritten entry is dropped entirely
  // rather than restored (a miss is always safe).
  std::string out;
  EXPECT_FALSE(cache.Lookup(Vid(1, 1), &out));
}

TEST(LatestVersionCacheTest, InsertLookupEraseAndEviction) {
  LatestVersionCache cache(2);
  cache.Insert(ObjectId{1}, 5);
  cache.Insert(ObjectId{2}, 7);
  VersionNum out = kNoVersion;
  ASSERT_TRUE(cache.Lookup(ObjectId{1}, &out));  // 1 becomes MRU.
  EXPECT_EQ(out, 5u);
  cache.Insert(ObjectId{3}, 9);  // Evicts 2.
  EXPECT_FALSE(cache.Lookup(ObjectId{2}, &out));
  EXPECT_TRUE(cache.Lookup(ObjectId{3}, &out));
  cache.Erase(ObjectId{1});
  EXPECT_FALSE(cache.Lookup(ObjectId{1}, &out));
}

TEST(LatestVersionCacheTest, AbortEpochDiscardsInstalls) {
  LatestVersionCache cache(16);
  cache.Insert(ObjectId{1}, 1);
  cache.BeginEpoch();
  cache.Insert(ObjectId{1}, 2);  // In-txn newversion.
  cache.Insert(ObjectId{2}, 1);  // In-txn pnew.
  cache.AbortEpoch();
  VersionNum out = kNoVersion;
  EXPECT_FALSE(cache.Lookup(ObjectId{1}, &out));  // Conservatively dropped.
  EXPECT_FALSE(cache.Lookup(ObjectId{2}, &out));
}

// ---------------------------------------------------------------------------
// 2. Directed database coherence scenarios
// ---------------------------------------------------------------------------

struct CacheParam {
  PayloadKind strategy;
  uint32_t keyframe;
  bool cache_enabled;
  bool chain_intermediates;
};

class CacheCoherenceTest : public ::testing::TestWithParam<CacheParam> {
 protected:
  void SetUp() override {
    const CacheParam& p = GetParam();
    DatabaseOptions options;
    options.storage.env = &env_;
    options.storage.path = "/db";
    options.clock = &clock_;
    options.payload_strategy = p.strategy;
    options.delta_keyframe_interval = p.keyframe;
    options.payload_cache_bytes = p.cache_enabled ? (8u << 20) : 0;
    options.latest_cache_entries = p.cache_enabled ? 1024 : 0;
    options.cache_chain_intermediates = p.chain_intermediates;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = std::move(*db);
    auto type = db_->RegisterType("raw");
    ASSERT_TRUE(type.ok());
    type_ = *type;
  }

  std::string Read(VersionId vid) {
    auto bytes = db_->ReadVersion(vid);
    EXPECT_TRUE(bytes.ok()) << bytes.status();
    return bytes.ok() ? *bytes : std::string();
  }

  MemEnv env_;
  LogicalClock clock_;
  std::unique_ptr<Database> db_;
  uint32_t type_ = 0;
};

TEST_P(CacheCoherenceTest, RepeatedReadsAreStable) {
  auto vid = db_->PnewRaw(type_, Slice("alpha"));
  ASSERT_TRUE(vid.ok());
  EXPECT_EQ(Read(*vid), "alpha");
  EXPECT_EQ(Read(*vid), "alpha");  // Second read served from cache if on.
  auto latest = db_->ReadLatest(vid->oid);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, "alpha");
}

TEST_P(CacheCoherenceTest, UpdateInvalidatesCachedPayload) {
  auto vid = db_->PnewRaw(type_, Slice("before"));
  ASSERT_TRUE(vid.ok());
  EXPECT_EQ(Read(*vid), "before");  // Warm the cache.
  ASSERT_TRUE(db_->UpdateVersion(*vid, Slice("after")).ok());
  EXPECT_EQ(Read(*vid), "after");
  EXPECT_EQ(*db_->ReadLatest(vid->oid), "after");
}

TEST_P(CacheCoherenceTest, NewVersionMovesLatestPointer) {
  auto v1 = db_->PnewRaw(type_, Slice("one"));
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*db_->ReadLatest(v1->oid), "one");  // Warm latest cache.
  auto v2 = db_->NewVersionOf(v1->oid);
  ASSERT_TRUE(v2.ok());
  ASSERT_TRUE(db_->UpdateVersion(*v2, Slice("two")).ok());
  VersionId resolved;
  auto latest = db_->ReadLatest(v1->oid, &resolved);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, "two");
  EXPECT_EQ(resolved, *v2);
  EXPECT_EQ(Read(*v1), "one");  // Old version untouched.
}

TEST_P(CacheCoherenceTest, DeleteVersionInvalidatesAndRetargetsLatest) {
  auto v1 = db_->PnewRaw(type_, Slice("one"));
  ASSERT_TRUE(v1.ok());
  auto v2 = db_->NewVersionOf(v1->oid);
  ASSERT_TRUE(v2.ok());
  ASSERT_TRUE(db_->UpdateVersion(*v2, Slice("two")).ok());
  EXPECT_EQ(*db_->ReadLatest(v1->oid), "two");  // Warm both caches.
  EXPECT_EQ(Read(*v2), "two");
  ASSERT_TRUE(db_->PdeleteVersion(*v2).ok());
  VersionId resolved;
  auto latest = db_->ReadLatest(v1->oid, &resolved);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, "one");
  EXPECT_EQ(resolved, *v1);
  EXPECT_FALSE(db_->ReadVersion(*v2).ok());  // Gone, not served stale.
}

TEST_P(CacheCoherenceTest, DeleteObjectPurgesEverything) {
  auto v1 = db_->PnewRaw(type_, Slice("one"));
  ASSERT_TRUE(v1.ok());
  auto v2 = db_->NewVersionOf(v1->oid);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(Read(*v1), "one");
  EXPECT_EQ(Read(*v2), "one");
  ASSERT_TRUE(db_->PdeleteObject(v1->oid).ok());
  EXPECT_FALSE(db_->ReadVersion(*v1).ok());
  EXPECT_FALSE(db_->ReadVersion(*v2).ok());
  EXPECT_FALSE(db_->ReadLatest(v1->oid).ok());
}

TEST_P(CacheCoherenceTest, AbortDiscardsUncommittedReads) {
  auto vid = db_->PnewRaw(type_, Slice("committed"));
  ASSERT_TRUE(vid.ok());
  ASSERT_TRUE(db_->Begin().ok());
  ASSERT_TRUE(db_->UpdateVersion(*vid, Slice("uncommitted")).ok());
  // Reading inside the transaction caches the uncommitted payload.
  EXPECT_EQ(Read(*vid), "uncommitted");
  ASSERT_TRUE(db_->Abort().ok());
  // After abort the cached uncommitted bytes must not be served.
  EXPECT_EQ(Read(*vid), "committed");
  EXPECT_EQ(*db_->ReadLatest(vid->oid), "committed");
}

TEST_P(CacheCoherenceTest, AbortDiscardsUncommittedLatestPointer) {
  auto v1 = db_->PnewRaw(type_, Slice("one"));
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*db_->ReadLatest(v1->oid), "one");
  ASSERT_TRUE(db_->Begin().ok());
  auto v2 = db_->NewVersionOf(v1->oid);
  ASSERT_TRUE(v2.ok());
  ASSERT_TRUE(db_->UpdateLatest(v1->oid, Slice("two")).ok());
  EXPECT_EQ(*db_->ReadLatest(v1->oid), "two");
  ASSERT_TRUE(db_->Abort().ok());
  VersionId resolved;
  auto latest = db_->ReadLatest(v1->oid, &resolved);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, "one");
  EXPECT_EQ(resolved, *v1);
}

TEST_P(CacheCoherenceTest, CommitKeepsTransactionalReads) {
  auto vid = db_->PnewRaw(type_, Slice("v1"));
  ASSERT_TRUE(vid.ok());
  ASSERT_TRUE(db_->Begin().ok());
  ASSERT_TRUE(db_->UpdateVersion(*vid, Slice("v2")).ok());
  EXPECT_EQ(Read(*vid), "v2");
  ASSERT_TRUE(db_->Commit().ok());
  EXPECT_EQ(Read(*vid), "v2");
}

TEST_P(CacheCoherenceTest, KeyframeRematerializationKeepsChildrenReadable) {
  // Build a chain, warm the cache along it, then update the chain's base so
  // every delta child is pinned down as a keyframe — all reads must still
  // return exactly what an uncached database returns.
  std::string payload(2048, 'a');
  auto root = db_->PnewRaw(type_, Slice(payload));
  ASSERT_TRUE(root.ok());
  std::vector<VersionId> chain{*root};
  std::vector<std::string> expected{payload};
  Random rng(33);
  for (int i = 0; i < 8; ++i) {
    auto next = db_->NewVersionFrom(chain.back());
    ASSERT_TRUE(next.ok());
    payload[rng.Uniform(payload.size())] ^= 0x3c;
    ASSERT_TRUE(db_->UpdateVersion(*next, Slice(payload)).ok());
    chain.push_back(*next);
    expected.push_back(payload);
  }
  // Warm: read deepest first (populates intermediates when enabled).
  EXPECT_EQ(Read(chain.back()), expected.back());
  // Rewrite the root: all direct delta children must be rematerialized.
  std::string new_root(2048, 'z');
  ASSERT_TRUE(db_->UpdateVersion(*root, Slice(new_root)).ok());
  expected[0] = new_root;
  for (size_t i = 0; i < chain.size(); ++i) {
    EXPECT_EQ(Read(chain[i]), expected[i]) << "version " << chain[i];
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheCoherenceTest,
    ::testing::Values(
        CacheParam{PayloadKind::kFull, 16, true, true},
        CacheParam{PayloadKind::kFull, 16, false, false},
        CacheParam{PayloadKind::kDelta, 4, true, true},
        CacheParam{PayloadKind::kDelta, 4, true, false},
        CacheParam{PayloadKind::kDelta, 4, false, false},
        CacheParam{PayloadKind::kDelta, 1, true, true}),
    [](const auto& info) {
      std::string name =
          info.param.strategy == PayloadKind::kFull ? "full" : "delta";
      name += "_kf" + std::to_string(info.param.keyframe);
      name += info.param.cache_enabled ? "_cache" : "_nocache";
      if (info.param.cache_enabled && info.param.chain_intermediates) {
        name += "_chain";
      }
      return name;
    });

// ---------------------------------------------------------------------------
// 3. Randomized differential test: cached vs uncached twin databases
// ---------------------------------------------------------------------------

struct TwinParam {
  uint64_t seed;
  int ops;
  PayloadKind strategy;
  uint32_t keyframe;
  uint64_t cache_bytes;  // Tiny budgets force constant eviction churn.
};

class CacheTwinPropertyTest : public ::testing::TestWithParam<TwinParam> {};

TEST_P(CacheTwinPropertyTest, CachedReadsMatchUncachedTwin) {
  const TwinParam param = GetParam();

  MemEnv env_a, env_b;
  LogicalClock clock_a, clock_b;
  DatabaseOptions options;
  options.storage.path = "/db";
  options.payload_strategy = param.strategy;
  options.delta_keyframe_interval = param.keyframe;

  options.storage.env = &env_a;
  options.clock = &clock_a;
  options.payload_cache_bytes = param.cache_bytes;
  options.latest_cache_entries = 64;
  auto cached_or = Database::Open(options);
  ASSERT_TRUE(cached_or.ok());
  auto cached = std::move(*cached_or);

  options.storage.env = &env_b;
  options.clock = &clock_b;
  options.payload_cache_bytes = 0;
  options.latest_cache_entries = 0;
  auto plain_or = Database::Open(options);
  ASSERT_TRUE(plain_or.ok());
  auto plain = std::move(*plain_or);

  auto type_a = cached->RegisterType("raw");
  auto type_b = plain->RegisterType("raw");
  ASSERT_TRUE(type_a.ok());
  ASSERT_TRUE(type_b.ok());
  ASSERT_EQ(*type_a, *type_b);

  Random rng(param.seed);
  std::vector<VersionId> live;      // Same ids in both databases.
  std::vector<ObjectId> live_oids;  // Deduplicated object ids.

  auto refresh_oids = [&]() {
    live_oids.clear();
    for (const VersionId& vid : live) {
      if (live_oids.empty() || !(live_oids.back() == vid.oid)) {
        live_oids.push_back(vid.oid);
      }
    }
  };
  auto remove_vid = [&](VersionId vid) {
    for (auto it = live.begin(); it != live.end(); ++it) {
      if (*it == vid) {
        live.erase(it);
        break;
      }
    }
    refresh_oids();
  };
  auto remove_oid = [&](ObjectId oid) {
    for (auto it = live.begin(); it != live.end();) {
      it = (it->oid == oid) ? live.erase(it) : std::next(it);
    }
    refresh_oids();
  };

  bool in_txn = false;
  std::vector<VersionId> txn_live_snapshot;

  for (int op = 0; op < param.ops; ++op) {
    const int action = static_cast<int>(rng.Uniform(100));
    if (live.empty() || action < 15) {
      const std::string payload = rng.NextBytes(rng.Range(0, 400));
      auto va = cached->PnewRaw(*type_a, Slice(payload));
      auto vb = plain->PnewRaw(*type_b, Slice(payload));
      ASSERT_TRUE(va.ok());
      ASSERT_TRUE(vb.ok());
      ASSERT_EQ(*va, *vb);
      live.push_back(*va);
      refresh_oids();
    } else if (action < 35) {
      const VersionId base = live[rng.Uniform(live.size())];
      auto va = cached->NewVersionFrom(base);
      auto vb = plain->NewVersionFrom(base);
      ASSERT_TRUE(va.ok());
      ASSERT_TRUE(vb.ok());
      ASSERT_EQ(*va, *vb);
      live.push_back(*va);
      refresh_oids();
    } else if (action < 55) {
      const VersionId target = live[rng.Uniform(live.size())];
      const std::string payload = rng.NextBytes(rng.Range(0, 400));
      ASSERT_OK(cached->UpdateVersion(target, Slice(payload)));
      ASSERT_OK(plain->UpdateVersion(target, Slice(payload)));
    } else if (action < 63) {
      const VersionId target = live[rng.Uniform(live.size())];
      ASSERT_OK(cached->PdeleteVersion(target));
      ASSERT_OK(plain->PdeleteVersion(target));
      remove_vid(target);
    } else if (action < 68) {
      const ObjectId oid = live[rng.Uniform(live.size())].oid;
      ASSERT_OK(cached->PdeleteObject(oid));
      ASSERT_OK(plain->PdeleteObject(oid));
      remove_oid(oid);
    } else if (action < 85) {
      const VersionId target = live[rng.Uniform(live.size())];
      auto ba = cached->ReadVersion(target);
      auto bb = plain->ReadVersion(target);
      ASSERT_TRUE(ba.ok()) << ba.status();
      ASSERT_TRUE(bb.ok()) << bb.status();
      ASSERT_EQ(*ba, *bb) << "divergence at " << target;
    } else if (action < 95) {
      const ObjectId oid = live_oids[rng.Uniform(live_oids.size())];
      VersionId ra, rb;
      auto ba = cached->ReadLatest(oid, &ra);
      auto bb = plain->ReadLatest(oid, &rb);
      ASSERT_TRUE(ba.ok()) << ba.status();
      ASSERT_TRUE(bb.ok()) << bb.status();
      ASSERT_EQ(ra, rb);
      ASSERT_EQ(*ba, *bb) << "latest divergence at " << oid;
    } else if (!in_txn) {
      // Open a transaction on BOTH databases; a later action resolves it.
      ASSERT_OK(cached->Begin());
      ASSERT_OK(plain->Begin());
      in_txn = true;
      txn_live_snapshot = live;
    } else {
      // Resolve the open transaction, randomly aborting (which must roll
      // the cached database's caches back too).
      if (rng.OneIn(2)) {
        ASSERT_OK(cached->Commit());
        ASSERT_OK(plain->Commit());
      } else {
        ASSERT_OK(cached->Abort());
        ASSERT_OK(plain->Abort());
        live = txn_live_snapshot;
        refresh_oids();
      }
      in_txn = false;
    }
  }
  if (in_txn) {
    ASSERT_OK(cached->Commit());
    ASSERT_OK(plain->Commit());
  }

  // Full sweep: every surviving version must read byte-identically, and
  // every latest pointer must agree.
  for (const VersionId& vid : live) {
    auto ba = cached->ReadVersion(vid);
    auto bb = plain->ReadVersion(vid);
    ASSERT_TRUE(ba.ok()) << vid << ": " << ba.status();
    ASSERT_TRUE(bb.ok()) << vid << ": " << bb.status();
    EXPECT_EQ(*ba, *bb) << vid;
  }
  for (const ObjectId& oid : live_oids) {
    VersionId ra, rb;
    auto ba = cached->ReadLatest(oid, &ra);
    auto bb = plain->ReadLatest(oid, &rb);
    ASSERT_TRUE(ba.ok());
    ASSERT_TRUE(bb.ok());
    EXPECT_EQ(ra, rb) << oid;
    EXPECT_EQ(*ba, *bb) << oid;
  }
  // The cached run must actually have exercised the cache.
  EXPECT_GT(cached->stats().payload_cache_hits +
                cached->stats().payload_cache_misses,
            0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheTwinPropertyTest,
    ::testing::Values(
        TwinParam{201, 800, PayloadKind::kFull, 16, 8 << 20},
        TwinParam{202, 800, PayloadKind::kDelta, 16, 8 << 20},
        TwinParam{203, 800, PayloadKind::kDelta, 4, 8 << 20},
        // Tiny budget: constant eviction; exercises re-materialization.
        TwinParam{204, 600, PayloadKind::kDelta, 4, 4096},
        TwinParam{205, 600, PayloadKind::kFull, 16, 4096}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_" +
             (info.param.strategy == PayloadKind::kFull ? "full" : "delta") +
             "_kf" + std::to_string(info.param.keyframe) + "_budget" +
             std::to_string(info.param.cache_bytes);
    });

}  // namespace
}  // namespace ode
