#include <gtest/gtest.h>

#include "core/query.h"
#include "core/version_ptr.h"
#include "tests/testing/db_fixture.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;

// §6 of the paper: "C++ supports inheritance, including multiple
// inheritance, which is used for object specialization.  The specialized
// object types inherit the properties of the 'base' object type ...  We use
// the inheritance property in the implementation of versions."  These tests
// show that C++ inheritance composes with the Persistable contract: derived
// types extend base serialization and get their own clusters and version
// graphs.

struct Person {
  static constexpr char kTypeName[] = "inh.Person";
  std::string name;
  void Serialize(BufferWriter& w) const { w.WriteString(Slice(name)); }
  static StatusOr<Person> Deserialize(BufferReader& r) {
    Person p;
    ODE_RETURN_IF_ERROR(r.ReadString(&p.name));
    return p;
  }
};

// Specialization: an Employee is a Person plus a salary.  The derived type
// reuses the base's field serialization and provides its own type name, so
// Employees live in their own cluster (Ode clusters are per-type).
struct Employee : Person {
  static constexpr char kTypeName[] = "inh.Employee";
  int64_t salary = 0;
  void Serialize(BufferWriter& w) const {
    Person::Serialize(w);
    w.WriteI64(salary);
  }
  static StatusOr<Employee> Deserialize(BufferReader& r) {
    Employee e;
    auto base = Person::Deserialize(r);
    if (!base.ok()) return base.status();
    static_cast<Person&>(e) = *base;
    ODE_RETURN_IF_ERROR(r.ReadI64(&e.salary));
    return e;
  }
};

class InheritanceTest : public DatabaseFixture {};

TEST_F(InheritanceTest, DerivedTypeRoundTrips) {
  Employee e;
  e.name = "ada";
  e.salary = 90000;
  auto ref = pnew(*db_, e);
  ASSERT_TRUE(ref.ok());
  auto loaded = ref->Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->name, "ada");
  EXPECT_EQ(loaded->salary, 90000);
}

TEST_F(InheritanceTest, BaseAndDerivedHaveSeparateClusters) {
  Person p;
  p.name = "plain";
  ASSERT_TRUE(pnew(*db_, p).ok());
  Employee e;
  e.name = "worker";
  ASSERT_TRUE(pnew(*db_, e).ok());

  auto people = Select<Person>(*db_, [](const Person&) { return true; });
  auto employees = Select<Employee>(*db_, [](const Employee&) { return true; });
  ASSERT_TRUE(people.ok() && employees.ok());
  EXPECT_EQ(people->size(), 1u);
  EXPECT_EQ(employees->size(), 1u);
}

TEST_F(InheritanceTest, DerivedTypeVersionsIndependently) {
  Employee e;
  e.name = "bob";
  e.salary = 100;
  auto ref = pnew(*db_, e);
  ASSERT_TRUE(ref.ok());
  auto raise = newversion(*ref);
  ASSERT_TRUE(raise.ok());
  e.salary = 200;
  ASSERT_OK(raise->Store(e));
  // Base fields and derived fields both travel through the history.
  auto original = raise->Tprevious();
  ASSERT_TRUE(original.ok());
  EXPECT_EQ(original->value()->salary, 100);
  EXPECT_EQ(original->value()->name, "bob");
  EXPECT_EQ((*ref)->salary, 200);
}

}  // namespace
}  // namespace ode
