#include "core/version_ptr.h"

#include <gtest/gtest.h>

#include "tests/testing/db_fixture.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;
using testing_internal::Doc;

/// Tests of the paper-facing smart pointers: generic Ref<T> (late binding)
/// and specific VersionPtr<T> (early binding), plus the pnew / newversion /
/// pdelete free functions under their O++ names.
class VersionPtrTest : public DatabaseFixture {};

TEST_F(VersionPtrTest, PnewReturnsWorkingRef) {
  auto ref = pnew(*db_, Doc{"hello", 1});
  ASSERT_TRUE(ref.ok()) << ref.status();
  auto doc = ref->Load();
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->text, "hello");
  EXPECT_EQ(doc->revision, 1);
}

TEST_F(VersionPtrTest, ArrowOperatorReadsThrough) {
  auto ref = pnew(*db_, Doc{"arrow", 7});
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ((*ref)->text, "arrow");
  EXPECT_EQ((**ref).revision, 7);
}

TEST_F(VersionPtrTest, GenericRefTracksLatest) {
  // The paper's address-book property: a generic reference always sees the
  // latest version.
  auto ref = pnew(*db_, Doc{"address v1", 1});
  ASSERT_TRUE(ref.ok());
  auto vp = newversion(*ref);
  ASSERT_TRUE(vp.ok());
  ASSERT_OK(vp->Store(Doc{"address v2", 2}));
  EXPECT_EQ((*ref)->text, "address v2");
}

TEST_F(VersionPtrTest, VersionPtrStaysPinned) {
  auto ref = pnew(*db_, Doc{"original", 1});
  ASSERT_TRUE(ref.ok());
  auto pinned = ref->Pin();
  ASSERT_TRUE(pinned.ok());
  auto vp = newversion(*ref);
  ASSERT_TRUE(vp.ok());
  ASSERT_OK(vp->Store(Doc{"changed", 2}));
  // The pinned pointer still reads the old version.
  EXPECT_EQ((*pinned)->text, "original");
  EXPECT_EQ((*vp)->text, "changed");
}

TEST_F(VersionPtrTest, NewVersionFromSpecificPointer) {
  auto ref = pnew(*db_, Doc{"base", 0});
  ASSERT_TRUE(ref.ok());
  auto v0 = ref->Pin();
  ASSERT_TRUE(v0.ok());
  auto v1 = newversion(*v0);
  auto v2 = newversion(*v0);  // Alternative from the same base.
  ASSERT_TRUE(v1.ok() && v2.ok());
  EXPECT_NE(v1->vid(), v2->vid());
  auto p1 = v1->Dprevious();
  auto p2 = v2->Dprevious();
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(p1->value().vid(), v0->vid());
  EXPECT_EQ(p2->value().vid(), v0->vid());
}

TEST_F(VersionPtrTest, TraversalWrappersMatchDatabase) {
  auto ref = pnew(*db_, Doc{"t0", 0});
  ASSERT_TRUE(ref.ok());
  auto v0 = ref->Pin();
  ASSERT_TRUE(v0.ok());
  auto v1 = newversion(*v0);
  ASSERT_TRUE(v1.ok());
  auto tprev = v1->Tprevious();
  ASSERT_TRUE(tprev.ok());
  EXPECT_EQ(tprev->value().vid(), v0->vid());
  auto tnext = v0->Tnext();
  ASSERT_TRUE(tnext.ok());
  EXPECT_EQ(tnext->value().vid(), v1->vid());
  auto children = v0->Dnext();
  ASSERT_TRUE(children.ok());
  ASSERT_EQ(children->size(), 1u);
  EXPECT_EQ((*children)[0].vid(), v1->vid());
}

TEST_F(VersionPtrTest, StoreThroughRefUpdatesLatestOnly) {
  auto ref = pnew(*db_, Doc{"v1", 1});
  ASSERT_TRUE(ref.ok());
  auto pinned = ref->Pin();
  ASSERT_TRUE(pinned.ok());
  auto vp = newversion(*ref);
  ASSERT_TRUE(vp.ok());
  ASSERT_OK(ref->Store(Doc{"latest updated", 2}));
  EXPECT_EQ((*pinned)->text, "v1");
  EXPECT_EQ((*ref)->text, "latest updated");
}

TEST_F(VersionPtrTest, VersionPtrCacheInvalidatedByStore) {
  auto ref = pnew(*db_, Doc{"a", 1});
  ASSERT_TRUE(ref.ok());
  auto vp = ref->Pin();
  ASSERT_TRUE(vp.ok());
  EXPECT_EQ((*vp)->text, "a");  // Populates the cache.
  ASSERT_OK(vp->Store(Doc{"b", 2}));
  EXPECT_EQ((*vp)->text, "b");  // Cache refreshed.
}

TEST_F(VersionPtrTest, PdeleteObjectThroughRef) {
  auto ref = pnew(*db_, Doc{"bye", 0});
  ASSERT_TRUE(ref.ok());
  ASSERT_OK(pdelete(*ref));
  EXPECT_TRUE(ref->Load().status().IsNotFound());
}

TEST_F(VersionPtrTest, PdeleteVersionThroughVersionPtr) {
  auto ref = pnew(*db_, Doc{"v0", 0});
  ASSERT_TRUE(ref.ok());
  auto v0 = ref->Pin();
  ASSERT_TRUE(v0.ok());
  auto v1 = newversion(*ref);
  ASSERT_TRUE(v1.ok());
  ASSERT_OK(pdelete(*v0));
  EXPECT_TRUE(v0->Load().status().IsNotFound());
  EXPECT_TRUE(v1->Load().ok());
}

TEST_F(VersionPtrTest, NullPointersFailGracefully) {
  Ref<Doc> null_ref;
  VersionPtr<Doc> null_vp;
  EXPECT_FALSE(null_ref.valid());
  EXPECT_FALSE(null_vp.valid());
  EXPECT_TRUE(null_ref.Load().status().IsInvalidArgument());
  EXPECT_TRUE(null_vp.Load().status().IsInvalidArgument());
  EXPECT_TRUE(newversion(null_ref).status().IsInvalidArgument());
  EXPECT_TRUE(newversion(null_vp).status().IsInvalidArgument());
  EXPECT_TRUE(pdelete(null_ref).IsInvalidArgument());
  EXPECT_TRUE(pdelete(null_vp).IsInvalidArgument());
}

TEST_F(VersionPtrTest, GenericSpecificConversionRoundTrip) {
  auto ref = pnew(*db_, Doc{"x", 0});
  ASSERT_TRUE(ref.ok());
  auto vp = ref->Pin();
  ASSERT_TRUE(vp.ok());
  Ref<Doc> back = vp->Generic();
  EXPECT_EQ(back.oid(), ref->oid());
  EXPECT_EQ(back, *ref);
}

// A "Team" object holds a generic reference to its lead Doc — the stored
// form is the object id, so the reference stays late-bound on reload.
struct Team {
  static constexpr char kTypeName[] = "Team";
  std::string name;
  ObjectId lead;
  void Serialize(BufferWriter& w) const {
    w.WriteString(Slice(name));
    WriteObjectId(w, lead);
  }
  static StatusOr<Team> Deserialize(BufferReader& r) {
    Team t;
    ODE_RETURN_IF_ERROR(r.ReadString(&t.name));
    ODE_RETURN_IF_ERROR(ReadObjectId(r, &t.lead));
    return t;
  }
};

TEST_F(VersionPtrTest, RefsSerializeIntoPayloads) {
  auto lead = pnew(*db_, Doc{"lead v1", 1});
  ASSERT_TRUE(lead.ok());
  auto team = pnew(*db_, Team{"core", lead->oid()});
  ASSERT_TRUE(team.ok());
  // Update the lead; the team's stored reference must see the new state.
  ASSERT_OK(lead->Store(Doc{"lead v2", 2}));
  auto loaded = team->Load();
  ASSERT_TRUE(loaded.ok());
  Ref<Doc> rebound(db_.get(), loaded->lead);
  EXPECT_EQ(rebound->text, "lead v2");
}

}  // namespace
}  // namespace ode
