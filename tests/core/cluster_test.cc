#include <gtest/gtest.h>

#include "core/cursor.h"
#include "core/database.h"
#include "tests/testing/db_fixture.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;

/// Tests of clusters — Ode's per-type extents, the substrate for
/// "for x in Cluster" iteration.
class ClusterTest : public DatabaseFixture {};

TEST_F(ClusterTest, NewObjectsJoinTheirTypeCluster) {
  auto widgets = db_->RegisterType("Widget");
  auto gadgets = db_->RegisterType("Gadget");
  ASSERT_TRUE(widgets.ok() && gadgets.ok());

  std::vector<ObjectId> widget_oids;
  for (int i = 0; i < 5; ++i) {
    auto vid = db_->PnewRaw(*widgets, Slice("w" + std::to_string(i)));
    ASSERT_TRUE(vid.ok());
    widget_oids.push_back(vid->oid);
  }
  auto gadget = db_->PnewRaw(*gadgets, Slice("g"));
  ASSERT_TRUE(gadget.ok());

  auto scan = db_->ClusterScan(*widgets);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(*scan, widget_oids);
  auto size = db_->ClusterSize(*gadgets);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 1u);
}

TEST_F(ClusterTest, EmptyClusterScansEmpty) {
  auto type = db_->RegisterType("Lonely");
  ASSERT_TRUE(type.ok());
  auto scan = db_->ClusterScan(*type);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->empty());
}

TEST_F(ClusterTest, DeletedObjectsLeaveTheCluster) {
  auto type = db_->RegisterType("T");
  ASSERT_TRUE(type.ok());
  auto a = db_->PnewRaw(*type, Slice("a"));
  auto b = db_->PnewRaw(*type, Slice("b"));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_OK(db_->PdeleteObject(a->oid));
  auto scan = db_->ClusterScan(*type);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->size(), 1u);
  EXPECT_EQ((*scan)[0], b->oid);
}

TEST_F(ClusterTest, DeletingLastVersionLeavesCluster) {
  auto type = db_->RegisterType("T");
  ASSERT_TRUE(type.ok());
  auto a = db_->PnewRaw(*type, Slice("a"));
  ASSERT_TRUE(a.ok());
  ASSERT_OK(db_->PdeleteVersion(*a));  // Only version -> object gone.
  auto size = db_->ClusterSize(*type);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 0u);
}

TEST_F(ClusterTest, VersioningDoesNotDuplicateClusterEntries) {
  auto type = db_->RegisterType("T");
  ASSERT_TRUE(type.ok());
  auto a = db_->PnewRaw(*type, Slice("a"));
  ASSERT_TRUE(a.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(db_->NewVersionOf(a->oid).ok());
  }
  auto size = db_->ClusterSize(*type);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 1u);
}

TEST_F(ClusterTest, CursorEarlyStop) {
  auto type = db_->RegisterType("T");
  ASSERT_TRUE(type.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db_->PnewRaw(*type, Slice("x")).ok());
  }
  int visited = 0;
  ClusterCursor cluster(*db_, *type);
  for (; cluster.Valid(); cluster.Next()) {
    if (++visited == 4) break;
  }
  ASSERT_OK(cluster.status());
  EXPECT_EQ(visited, 4);
}

TEST_F(ClusterTest, AdjacentTypeIdsDoNotBleed) {
  auto t1 = db_->RegisterType("T1");
  auto t2 = db_->RegisterType("T2");
  ASSERT_TRUE(t1.ok() && t2.ok());
  ASSERT_EQ(*t2, *t1 + 1);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(db_->PnewRaw(*t1, Slice("1")).ok());
    ASSERT_TRUE(db_->PnewRaw(*t2, Slice("2")).ok());
  }
  auto s1 = db_->ClusterSize(*t1);
  auto s2 = db_->ClusterSize(*t2);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_EQ(*s1, 3u);
  EXPECT_EQ(*s2, 3u);
}

TEST_F(ClusterTest, LargeClusterScan) {
  auto type = db_->RegisterType("Bulk");
  ASSERT_TRUE(type.ok());
  constexpr int kN = 1000;
  ASSERT_OK(db_->Begin());
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(db_->PnewRaw(*type, Slice("x")).ok());
  }
  ASSERT_OK(db_->Commit());
  auto size = db_->ClusterSize(*type);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, static_cast<uint64_t>(kN));
  // Scan yields ascending oids (allocation order).
  auto scan = db_->ClusterScan(*type);
  ASSERT_TRUE(scan.ok());
  for (size_t i = 1; i < scan->size(); ++i) {
    EXPECT_LT((*scan)[i - 1].value, (*scan)[i].value);
  }
}

}  // namespace
}  // namespace ode
