#include <gtest/gtest.h>

#include <vector>

#include "core/database.h"
#include "tests/testing/db_fixture.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;

/// Tests of the trigger primitive the paper points at for building change
/// notification and other policies.
class TriggerTest : public DatabaseFixture {
 protected:
  void SetUp() override {
    DatabaseFixture::SetUp();
    SetUpRawType();
  }
};

TEST_F(TriggerTest, PnewTriggerFires) {
  std::vector<TriggerInfo> events;
  db_->RegisterTrigger(TriggerEvent::kPnew,
                       [&](Database&, const TriggerInfo& info) {
                         events.push_back(info);
                       });
  VersionId vid = MustPnew("x");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].event, TriggerEvent::kPnew);
  EXPECT_EQ(events[0].vid, vid);
  EXPECT_EQ(events[0].type_id, type_id_);
}

TEST_F(TriggerTest, NewVersionTriggerReportsDerivation) {
  std::vector<TriggerInfo> events;
  db_->RegisterTrigger(TriggerEvent::kNewVersion,
                       [&](Database&, const TriggerInfo& info) {
                         events.push_back(info);
                       });
  VersionId v0 = MustPnew("x");
  auto v1 = db_->NewVersionFrom(v0);
  ASSERT_TRUE(v1.ok());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].vid, *v1);
  EXPECT_EQ(events[0].derived_from, v0);
}

TEST_F(TriggerTest, UpdateAndDeleteTriggersFire) {
  int updates = 0, version_deletes = 0, object_deletes = 0;
  db_->RegisterTrigger(TriggerEvent::kUpdate,
                       [&](Database&, const TriggerInfo&) { ++updates; });
  db_->RegisterTrigger(TriggerEvent::kDeleteVersion,
                       [&](Database&, const TriggerInfo&) { ++version_deletes; });
  db_->RegisterTrigger(TriggerEvent::kDeleteObject,
                       [&](Database&, const TriggerInfo&) { ++object_deletes; });
  VersionId v0 = MustPnew("x");
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  ASSERT_OK(db_->UpdateLatest(v0.oid, Slice("y")));
  ASSERT_OK(db_->PdeleteVersion(v0));
  ASSERT_OK(db_->PdeleteObject(v0.oid));
  EXPECT_EQ(updates, 1);
  EXPECT_EQ(version_deletes, 1);
  EXPECT_EQ(object_deletes, 1);
}

TEST_F(TriggerTest, DeletingLastVersionFiresBothDeleteEvents) {
  int version_deletes = 0, object_deletes = 0;
  db_->RegisterTrigger(TriggerEvent::kDeleteVersion,
                       [&](Database&, const TriggerInfo&) { ++version_deletes; });
  db_->RegisterTrigger(TriggerEvent::kDeleteObject,
                       [&](Database&, const TriggerInfo&) { ++object_deletes; });
  VersionId v0 = MustPnew("only");
  ASSERT_OK(db_->PdeleteVersion(v0));
  EXPECT_EQ(version_deletes, 1);
  EXPECT_EQ(object_deletes, 1);
}

TEST_F(TriggerTest, UnregisterStopsDelivery) {
  int calls = 0;
  uint64_t handle = db_->RegisterTrigger(
      TriggerEvent::kPnew, [&](Database&, const TriggerInfo&) { ++calls; });
  MustPnew("a");
  db_->UnregisterTrigger(handle);
  MustPnew("b");
  EXPECT_EQ(calls, 1);
}

TEST_F(TriggerTest, TriggersOnlyFireForTheirEvent) {
  int pnew_calls = 0;
  db_->RegisterTrigger(TriggerEvent::kPnew,
                       [&](Database&, const TriggerInfo&) { ++pnew_calls; });
  VersionId v0 = MustPnew("x");
  ASSERT_TRUE(db_->NewVersionOf(v0.oid).ok());
  ASSERT_OK(db_->UpdateLatest(v0.oid, Slice("y")));
  EXPECT_EQ(pnew_calls, 1);
}

TEST_F(TriggerTest, TriggerMayMutateDatabase) {
  // A trigger performing follow-on writes joins the same transaction — this
  // is how the policy layer implements percolation and notification logs.
  ObjectId log_oid;
  {
    auto log = db_->PnewRaw(type_id_, Slice("log:"));
    ASSERT_TRUE(log.ok());
    log_oid = log->oid;
  }
  db_->RegisterTrigger(
      TriggerEvent::kNewVersion, [&](Database& db, const TriggerInfo& info) {
        auto current = db.ReadLatest(log_oid);
        ASSERT_TRUE(current.ok());
        std::string appended =
            *current + " v" + std::to_string(info.vid.vnum);
        ASSERT_TRUE(db.UpdateLatest(log_oid, Slice(appended)).ok());
      });
  VersionId target = MustPnew("target");
  ASSERT_TRUE(db_->NewVersionOf(target.oid).ok());
  ASSERT_TRUE(db_->NewVersionOf(target.oid).ok());
  EXPECT_EQ(MustReadLatest(log_oid), "log: v2 v3");
}

TEST_F(TriggerTest, TriggerEffectsRollBackWithTransaction) {
  int fired = 0;
  db_->RegisterTrigger(TriggerEvent::kPnew,
                       [&](Database&, const TriggerInfo&) { ++fired; });
  ASSERT_OK(db_->Begin());
  VersionId vid = MustPnew("doomed");
  ASSERT_OK(db_->Abort());
  EXPECT_EQ(fired, 1);  // The trigger ran...
  auto exists = db_->ObjectExists(vid.oid);
  ASSERT_TRUE(exists.ok());
  EXPECT_FALSE(*exists);  // ...but the transaction (and its effects) rolled back.
}

TEST_F(TriggerTest, MultipleTriggersAllFire) {
  int a = 0, b = 0;
  db_->RegisterTrigger(TriggerEvent::kPnew,
                       [&](Database&, const TriggerInfo&) { ++a; });
  db_->RegisterTrigger(TriggerEvent::kPnew,
                       [&](Database&, const TriggerInfo&) { ++b; });
  MustPnew("x");
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

}  // namespace
}  // namespace ode
