// Unit tests for the ode_lint rules library: one fire and one no-fire case
// (at minimum) per rule, plus the comment/string stripper the rules sit on.

#include "tools/lint/lint_rules.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace ode {
namespace lint {
namespace {

std::vector<Issue> RunRule(const std::string& path, const std::string& content,
                           const std::string& rule) {
  std::vector<Issue> out;
  for (Issue& issue : LintSource(path, content)) {
    if (issue.rule == rule) out.push_back(std::move(issue));
  }
  return out;
}

// ---------------------------------------------------------------------------
// StripCommentsAndStrings
// ---------------------------------------------------------------------------

TEST(StripTest, RemovesLineAndBlockComments) {
  const std::string in = "int a; // fsync(fd)\nint b; /* open(p) */ int c;\n";
  const std::string out = StripCommentsAndStrings(in);
  EXPECT_EQ(out.find("fsync"), std::string::npos);
  EXPECT_EQ(out.find("open"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int c;"), std::string::npos);
}

TEST(StripTest, PreservesLineStructure) {
  const std::string in = "a /* one\ntwo\nthree */ b\n";
  const std::string out = StripCommentsAndStrings(in);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(StripTest, EmptiesStringLiteralsButKeepsQuotes) {
  const std::string in = "call(\"fsync( inside \\\" quoted\");\n";
  const std::string out = StripCommentsAndStrings(in);
  EXPECT_EQ(out.find("fsync"), std::string::npos);
  EXPECT_NE(out.find("call(\"\")"), std::string::npos);
}

TEST(StripTest, HandlesRawStrings) {
  const std::string in = "auto s = R\"x(fsync(fd) \" // not a comment)x\"; f();\n";
  const std::string out = StripCommentsAndStrings(in);
  EXPECT_EQ(out.find("fsync"), std::string::npos);
  EXPECT_NE(out.find("f();"), std::string::npos);
}

TEST(StripTest, CharLiteralQuoteDoesNotOpenString) {
  const std::string in = "char c = '\"'; fsync(fd);\n";
  const std::string out = StripCommentsAndStrings(in);
  EXPECT_NE(out.find("fsync"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ShouldScan
// ---------------------------------------------------------------------------

TEST(ShouldScanTest, Basics) {
  EXPECT_TRUE(ShouldScan("src/core/database.cc"));
  EXPECT_TRUE(ShouldScan("tools/odedump.cc"));
  EXPECT_TRUE(ShouldScan("tests/core/database_test.cc"));
  EXPECT_TRUE(ShouldScan("bench/bench_common.h"));
  EXPECT_FALSE(ShouldScan("tests/static/compile_fail/discarded_status.cc"));
  EXPECT_FALSE(ShouldScan("src/core/notes.md"));
  EXPECT_FALSE(ShouldScan("build/foo.cc"));
}

// ---------------------------------------------------------------------------
// raw-io
// ---------------------------------------------------------------------------

TEST(RawIoTest, FiresOnRawFsyncInSrc) {
  auto issues = RunRule("src/core/foo.cc", "void F(int fd) { fsync(fd); }\n",
                        "raw-io");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].line, 1);
  EXPECT_NE(issues[0].message.find("fsync"), std::string::npos);
}

TEST(RawIoTest, FiresOnRenameAndOpen) {
  const std::string code =
      "void F() {\n  rename(\"a\", \"b\");\n  int fd = open(\"p\", 0);\n}\n";
  auto issues = RunRule("tools/mytool.cc", code, "raw-io");
  ASSERT_EQ(issues.size(), 2u);
  EXPECT_EQ(issues[0].line, 2);
  EXPECT_EQ(issues[1].line, 3);
}

TEST(RawIoTest, AllowedInEnvImplementation) {
  EXPECT_TRUE(RunRule("src/storage/env.cc",
                      "void F(int fd) { fsync(fd); }\n", "raw-io")
                  .empty());
  EXPECT_TRUE(RunRule("src/storage/fault_env.cc",
                      "void F(int fd) { fdatasync(fd); }\n", "raw-io")
                  .empty());
}

TEST(RawIoTest, TestsMayDoRawIo) {
  EXPECT_TRUE(RunRule("tests/storage/env_test.cc",
                      "void F(int fd) { fsync(fd); }\n", "raw-io")
                  .empty());
}

TEST(RawIoTest, IgnoresSuffixMatchesCommentsAndStrings) {
  const std::string code =
      "void F(Env* env) {\n"
      "  env->MyOpen();        // open( in comment\n"
      "  reopen(env);\n"
      "  Log(\"fsync(fd)\");\n"
      "}\n";
  EXPECT_TRUE(RunRule("src/core/foo.cc", code, "raw-io").empty());
}

// ---------------------------------------------------------------------------
// raw-clock
// ---------------------------------------------------------------------------

TEST(RawClockTest, FiresOnSystemClockOutsideUtil) {
  const std::string code =
      "uint64_t Now() {\n"
      "  return std::chrono::system_clock::now().time_since_epoch().count();\n"
      "}\n";
  auto issues = RunRule("src/core/database.cc", code, "raw-clock");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].line, 2);
  EXPECT_NE(issues[0].message.find("ode::Clock"), std::string::npos);

  EXPECT_EQ(RunRule("tools/mytool.cc", code, "raw-clock").size(), 1u);
  EXPECT_EQ(RunRule("tests/core/foo_test.cc", code, "raw-clock").size(), 1u);
}

TEST(RawClockTest, UtilClockImplementationsAreExempt) {
  const std::string code = "auto t = std::chrono::system_clock::now();\n";
  EXPECT_TRUE(RunRule("src/util/clock.cc", code, "raw-clock").empty());
  EXPECT_TRUE(RunRule("src/util/event_log.cc", code, "raw-clock").empty());
}

TEST(RawClockTest, IgnoresCommentsStringsAndSteadyClock) {
  const std::string code =
      "// system_clock would break determinism\n"
      "Log(\"system_clock\");\n"
      "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(RunRule("src/core/foo.cc", code, "raw-clock").empty());
}

TEST(RawClockTest, AllowMarkerSilences) {
  const std::string code =
      "auto t = std::chrono::system_clock::now();"
      "  // ode_lint: allow(raw-clock): wall time for log banner\n";
  EXPECT_TRUE(RunRule("src/core/foo.cc", code, "raw-clock").empty());
}

// ---------------------------------------------------------------------------
// todo-date
// ---------------------------------------------------------------------------

TEST(TodoDateTest, FiresOnBareTodo) {
  auto issues =
      RunRule("src/core/foo.cc", "// TODO: make this faster\n", "todo-date");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].line, 1);
}

TEST(TodoDateTest, AcceptsDatedForms) {
  EXPECT_TRUE(RunRule("src/core/foo.cc",
                      "// TODO(2026-08-07: make this faster)\n", "todo-date")
                  .empty());
  EXPECT_TRUE(RunRule("src/core/foo.cc",
                      "// TODO(alice, 2026-08-07: revisit)\n", "todo-date")
                  .empty());
}

TEST(TodoDateTest, FiresOnUsernameOnlyTodo) {
  auto issues = RunRule("src/core/foo.cc", "// TODO(alice): revisit\n",
                        "todo-date");
  EXPECT_EQ(issues.size(), 1u);
}

TEST(TodoDateTest, IgnoresWordsContainingTodo) {
  EXPECT_TRUE(
      RunRule("src/core/foo.cc", "int mastodon_count;\n", "todo-date").empty());
}

TEST(TodoDateTest, IgnoresTodoInsideStringLiteral) {
  EXPECT_TRUE(RunRule("src/core/foo.cc",
                      "const char* kMsg = \"TODO: not an intention\";\n",
                      "todo-date")
                  .empty());
}

// ---------------------------------------------------------------------------
// Suppression marker
// ---------------------------------------------------------------------------

TEST(SuppressionTest, AllowMarkerOnPrecedingLineSilencesIssue) {
  const std::string code =
      "class Engine {\n"
      "  // ode_lint: allow(mutex-guard): lock lifetime spans functions.\n"
      "  ode::SharedMutex rw_mutex_;\n"
      "};\n";
  EXPECT_TRUE(RunRule("src/storage/e.h", code, "mutex-guard").empty());
}

TEST(SuppressionTest, AllowMarkerOnSameLineSilencesIssue) {
  const std::string code =
      "void F(int fd) { fsync(fd); }  // ode_lint: allow(raw-io): test rig\n";
  EXPECT_TRUE(RunRule("src/core/foo.cc", code, "raw-io").empty());
}

TEST(SuppressionTest, MarkerForOtherRuleDoesNotSilence) {
  const std::string code =
      "void F(int fd) { fsync(fd); }  // ode_lint: allow(todo-date)\n";
  EXPECT_EQ(RunRule("src/core/foo.cc", code, "raw-io").size(), 1u);
}

// ---------------------------------------------------------------------------
// mutex-guard / raw-mutex
// ---------------------------------------------------------------------------

TEST(MutexGuardTest, FiresOnUnguardedMutexClass) {
  const std::string code =
      "class Cache {\n"
      " private:\n"
      "  ode::Mutex mu_;\n"
      "  int count_ = 0;\n"
      "};\n";
  auto issues = RunRule("src/core/cache.h", code, "mutex-guard");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].line, 3);
}

TEST(MutexGuardTest, SatisfiedByGuardedBy) {
  const std::string code =
      "class Cache {\n"
      " private:\n"
      "  ode::Mutex mu_;\n"
      "  int count_ ODE_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  EXPECT_TRUE(RunRule("src/core/cache.h", code, "mutex-guard").empty());
}

TEST(MutexGuardTest, SatisfiedByPtGuardedBy) {
  const std::string code =
      "class Cache {\n"
      "  Mutex mu_;\n"
      "  int* p_ ODE_PT_GUARDED_BY(mu_);\n"
      "};\n";
  EXPECT_TRUE(RunRule("src/core/cache.h", code, "mutex-guard").empty());
}

TEST(MutexGuardTest, NestedStructNeedsItsOwnGuard) {
  // The outer class's guarded field must not satisfy the inner struct.
  const std::string code =
      "class Pool {\n"
      "  struct Shard {\n"
      "    Mutex mu;\n"
      "    int frames;\n"
      "  };\n"
      "  Mutex big_mu_;\n"
      "  int total_ ODE_GUARDED_BY(big_mu_);\n"
      "};\n";
  auto issues = RunRule("src/core/pool.h", code, "mutex-guard");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].line, 3);
}

TEST(MutexGuardTest, IgnoresLocalsAndParamsAndReferences) {
  const std::string code =
      "void F() {\n"
      "  ode::Mutex mu;\n"  // Local, not a class member.
      "}\n"
      "class Wrapper {\n"
      "  ode::Mutex& mu_;\n"  // Reference to someone else's lock.
      "  int x_;\n"
      "};\n";
  EXPECT_TRUE(RunRule("src/core/w.h", code, "mutex-guard").empty());
}

TEST(RawMutexTest, FlagsStdMutexMemberInSrc) {
  const std::string code =
      "class C {\n"
      "  std::mutex mu_;\n"
      "  int x_ ODE_GUARDED_BY(mu_);\n"
      "};\n";
  auto issues = RunRule("src/core/c.h", code, "raw-mutex");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].line, 2);
}

TEST(RawMutexTest, OdeMutexInSrcAndStdMutexInTestsAreFine) {
  EXPECT_TRUE(RunRule("src/core/c.h",
                      "class C {\n  ode::Mutex mu_;\n  int x_ "
                      "ODE_GUARDED_BY(mu_);\n};\n",
                      "raw-mutex")
                  .empty());
  EXPECT_TRUE(RunRule("tests/core/c_test.cc",
                      "class C {\n  std::mutex mu_;\n  int x_ "
                      "ODE_GUARDED_BY(mu_);\n};\n",
                      "raw-mutex")
                  .empty());
}

// ---------------------------------------------------------------------------
// foreach-caller
// ---------------------------------------------------------------------------

TEST(ForEachTest, FiresOnNewCaller) {
  auto issues = RunRule("src/core/newfile.cc",
                        "void F(Database* db) { db->ForEachObject(cb); }\n",
                        "foreach-caller");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].message.find("cursor"), std::string::npos);
}

TEST(ForEachTest, NoFileIsExemptAnymore) {
  // The wrappers are gone (PR 9); even the files that used to be
  // grandfathered trip the rule now.
  const std::string code = "void F(Database* db) { db->ForEachVersion(cb); }\n";
  EXPECT_EQ(RunRule("src/core/database.h", code, "foreach-caller").size(), 1u);
  EXPECT_EQ(RunRule("src/core/check.cc", code, "foreach-caller").size(), 1u);
  EXPECT_EQ(
      RunRule("tests/core/cursor_test.cc", code, "foreach-caller").size(), 1u);
}

TEST(ForEachTest, IgnoresUnrelatedForEachNames) {
  EXPECT_TRUE(RunRule("src/core/newfile.cc",
                      "void F() { ForEachShard(cb); }\n", "foreach-caller")
                  .empty());
}

// ---------------------------------------------------------------------------
// unchecked-cast
// ---------------------------------------------------------------------------

TEST(UncheckedCastTest, FiresOnReinterpretCastInSrc) {
  auto issues = RunRule(
      "src/core/decoder.cc",
      "void F(const char* p) { auto* h = reinterpret_cast<const H*>(p); }\n",
      "unchecked-cast");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].line, 1);
  EXPECT_NE(issues[0].message.find("reinterpret_cast"), std::string::npos);
}

TEST(UncheckedCastTest, FiresOnRawMemcpyInSrcAndTools) {
  const std::string code = "void F(char* d, const char* s, size_t n) {\n"
                           "  std::memcpy(d, s, n);\n"
                           "}\n";
  auto issues = RunRule("src/storage/thing.cc", code, "unchecked-cast");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].line, 2);
  EXPECT_EQ(RunRule("tools/mytool.cc", "void F() { memcpy(a, b, n); }\n",
                    "unchecked-cast")
                .size(),
            1u);
}

TEST(UncheckedCastTest, TestsAndFuzzHarnessesAreExempt) {
  const std::string code = "void F() { memcpy(a, reinterpret_cast<char*>(b), "
                           "n); }\n";
  EXPECT_TRUE(RunRule("tests/core/foo_test.cc", code, "unchecked-cast").empty());
  EXPECT_TRUE(RunRule("bench/micro.cc", code, "unchecked-cast").empty());
  EXPECT_TRUE(
      RunRule("src/fuzz/targets_core.cc", code, "unchecked-cast").empty());
}

TEST(UncheckedCastTest, AllowlistedHelpersAreExempt) {
  const std::string code = "void F() { std::memcpy(dst, src, sizeof(v)); }\n";
  EXPECT_TRUE(RunRule("src/util/coding.h", code, "unchecked-cast").empty());
  EXPECT_TRUE(
      RunRule("src/storage/disk_manager.cc", code, "unchecked-cast").empty());
  EXPECT_TRUE(
      RunRule("src/storage/buffer_pool.cc", code, "unchecked-cast").empty());
}

TEST(UncheckedCastTest, AllowMarkerSilences) {
  const std::string code =
      "// ode_lint: allow(unchecked-cast) length checked two lines up.\n"
      "std::memcpy(dst, src, n);\n";
  EXPECT_TRUE(RunRule("src/core/foo.cc", code, "unchecked-cast").empty());
  const std::string cast_code =
      "Txn* s = reinterpret_cast<Txn*>(1);  "
      "// ode_lint: allow(unchecked-cast) sentinel\n";
  EXPECT_TRUE(RunRule("src/core/foo.cc", cast_code, "unchecked-cast").empty());
}

TEST(UncheckedCastTest, IgnoresNamesContainingMemcpy) {
  const std::string code =
      "void F() { safe_memcpy(d, s, n); MemcpyStats(); wal::memcpy_count++; }\n";
  EXPECT_TRUE(RunRule("src/core/foo.cc", code, "unchecked-cast").empty());
}

TEST(UncheckedCastTest, IgnoresCommentsAndStrings) {
  const std::string code =
      "// reinterpret_cast is banned here\n"
      "const char* kMsg = \"use memcpy( carefully\";\n";
  EXPECT_TRUE(RunRule("src/core/foo.cc", code, "unchecked-cast").empty());
}

// ---------------------------------------------------------------------------
// include-guard
// ---------------------------------------------------------------------------

TEST(IncludeGuardTest, AcceptsCanonicalGuard) {
  const std::string code =
      "#ifndef ODE_CORE_FOO_H_\n"
      "#define ODE_CORE_FOO_H_\n"
      "#endif  // ODE_CORE_FOO_H_\n";
  EXPECT_TRUE(RunRule("src/core/foo.h", code, "include-guard").empty());
}

TEST(IncludeGuardTest, SrcPrefixIsStrippedButTestsPrefixIsNot) {
  EXPECT_TRUE(RunRule("tests/testing/db_fixture.h",
                      "#ifndef ODE_TESTS_TESTING_DB_FIXTURE_H_\n"
                      "#define ODE_TESTS_TESTING_DB_FIXTURE_H_\n"
                      "#endif\n",
                      "include-guard")
                  .empty());
}

TEST(IncludeGuardTest, FiresOnWrongGuard) {
  auto issues = RunRule("src/core/foo.h",
                        "#ifndef FOO_H\n#define FOO_H\n#endif\n",
                        "include-guard");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].message.find("ODE_CORE_FOO_H_"), std::string::npos);
}

TEST(IncludeGuardTest, FiresOnPragmaOnce) {
  auto issues =
      RunRule("src/core/foo.h", "#pragma once\n", "include-guard");
  ASSERT_EQ(issues.size(), 1u);
}

TEST(IncludeGuardTest, FiresOnMissingDefine) {
  auto issues = RunRule("src/core/foo.h",
                        "#ifndef ODE_CORE_FOO_H_\nint x;\n#endif\n",
                        "include-guard");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].line, 2);
}

TEST(IncludeGuardTest, FiresOnMissingGuardEntirely) {
  auto issues = RunRule("src/core/foo.h", "int x;\n", "include-guard");
  ASSERT_EQ(issues.size(), 1u);
}

TEST(IncludeGuardTest, DoesNotApplyToSourceFiles) {
  EXPECT_TRUE(RunRule("src/core/foo.cc", "int x;\n", "include-guard").empty());
}

// ---------------------------------------------------------------------------
// Output formatting
// ---------------------------------------------------------------------------

TEST(FormatTest, FileLineRuleMessage) {
  Issue issue{"src/a.cc", 12, "raw-io", "boom"};
  EXPECT_EQ(FormatIssue(issue), "src/a.cc:12: [raw-io] boom");
}

}  // namespace
}  // namespace lint
}  // namespace ode
