// Seed-corpus generator: writes the checked-in corpus under
// tests/fuzz/corpus/<target>/.  Valid inputs come from the REAL encoders
// (wire frames, WAL records, engine-built database pages), adversarial
// inputs are hand-crafted regressions for decoder bugs fixed in this tree
// — so the replay leg re-proves every fix forever.
//
// Usage: make_seed_corpus <corpus-root-dir>
//
// Regeneration is deterministic; corpus files are committed, so this only
// needs re-running when a target's input format changes.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/delta.h"
#include "core/meta.h"
#include "net/wire.h"
#include "storage/btree.h"
#include "storage/env.h"
#include "storage/heap_file.h"
#include "storage/page.h"
#include "storage/payload_store.h"
#include "storage/slotted_page.h"
#include "storage/storage_engine.h"
#include "storage/superblock.h"
#include "storage/wal.h"
#include "util/coding.h"
#include "util/event_log.h"
#include "util/slice.h"

namespace {

std::filesystem::path g_root;

void WriteSeed(const std::string& target, const std::string& name,
               const std::string& bytes) {
  const std::filesystem::path dir = g_root / target;
  std::filesystem::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "failed to write %s/%s\n", target.c_str(),
                 name.c_str());
    std::exit(1);
  }
}

// -- Wire protocol ----------------------------------------------------------

std::string RequestFrame(const ode::net::Request& req) {
  std::string frame;
  ode::net::EncodeRequestFrame(req, &frame);
  return frame;
}

/// Frame payload only (what DecodeRequest sees: length prefix stripped).
std::string RequestPayload(const ode::net::Request& req) {
  return RequestFrame(req).substr(ode::net::kFrameLenBytes);
}

std::string ResponsePayload(const ode::net::Response& resp) {
  std::string frame;
  ode::net::EncodeResponseFrame(resp, &frame);
  return frame.substr(ode::net::kFrameLenBytes);
}

void WireSeeds() {
  ode::net::Request ping;
  ping.op = ode::net::OpCode::kPing;
  ping.request_id = 1;

  ode::net::Request pnew;
  pnew.op = ode::net::OpCode::kPnew;
  pnew.request_id = 2;
  pnew.type_id = 7;
  pnew.payload = "hello version";

  ode::net::Request batch;
  batch.op = ode::net::OpCode::kDerefBatch;
  batch.request_id = 3;
  batch.batch = {{1, 2}, {3, 0}, {5, 6}};

  ode::net::Request cursor;
  cursor.op = ode::net::OpCode::kCursorOpen;
  cursor.request_id = 4;
  cursor.cursor_kind = 1;
  cursor.cursor_arg = 42;

  // Stream target: whole frames (several in a row, then a torn one).
  std::string stream = RequestFrame(ping) + RequestFrame(pnew);
  WriteSeed("wire_extract_frame", "two-frames", stream);
  WriteSeed("wire_extract_frame", "torn-frame",
            RequestFrame(batch).substr(0, 9));
  {
    // Hostile length prefix: 0xffffffff.
    std::string hostile;
    ode::PutFixed32(&hostile, 0xffffffffu);
    hostile += "junk";
    WriteSeed("wire_extract_frame", "hostile-length", hostile);
  }
  {
    // Undersized length (below kFrameMinPayload).
    std::string runt;
    ode::PutFixed32(&runt, 3);
    runt += "abc";
    WriteSeed("wire_extract_frame", "runt-length", runt);
  }

  WriteSeed("wire_decode_request", "ping", RequestPayload(ping));
  WriteSeed("wire_decode_request", "pnew", RequestPayload(pnew));
  WriteSeed("wire_decode_request", "deref-batch", RequestPayload(batch));
  WriteSeed("wire_decode_request", "cursor-open", RequestPayload(cursor));
  {
    // Hostile batch count: claims kMaxBatchItems+1 items, carries none.
    std::string p = RequestPayload(batch);
    // payload = ver, op, req-id(8), varint count, items...
    std::string hostile(p.substr(0, 10));
    ode::PutVarint64(&hostile, ode::net::kMaxBatchItems + 1);
    WriteSeed("wire_decode_request", "oversized-batch-count", hostile);
  }

  ode::net::Response ok = ode::net::ResponseFor(pnew);
  ok.oid = 99;
  ok.vnum = 1;
  WriteSeed("wire_decode_response", "pnew-ok", ResponsePayload(ok));
  ode::net::Response err = ode::net::ErrorResponseFor(
      batch, ode::net::WireStatus::kProtocolError, "bad frame");
  WriteSeed("wire_decode_response", "protocol-error", ResponsePayload(err));
  ode::net::Response deref = ode::net::ResponseFor(batch);
  deref.batch.resize(2);
  deref.batch[0].status = ode::net::WireStatus::kOk;
  deref.batch[0].oid = 1;
  deref.batch[0].vnum = 2;
  deref.batch[0].payload = "payload-bytes";
  deref.batch[1].status = ode::net::WireStatus::kNotFound;
  WriteSeed("wire_decode_response", "deref-batch", ResponsePayload(deref));
}

// -- WAL --------------------------------------------------------------------

void WalSeeds() {
  std::string log;
  ode::Wal::EncodeBegin(1, &log);
  std::string image(ode::kPageSize, '\0');
  image[0] = static_cast<char>(ode::PageType::kHeap);
  image[100] = 'x';
  ode::Wal::EncodePageImage(1, 2, image.data(), &log);
  ode::Wal::EncodeCommit(1, &log);
  WriteSeed("wal_replay", "one-committed-txn", log);
  WriteSeed("wal_replay", "torn-tail", log.substr(0, log.size() - 5));
  {
    // Begun but never committed (crash victim).
    std::string crash;
    ode::Wal::EncodeBegin(7, &crash);
    ode::Wal::EncodePageImage(7, 3, image.data(), &crash);
    WriteSeed("wal_replay", "uncommitted-txn", crash);
  }
}

// -- Pages ------------------------------------------------------------------

void SlottedSeeds() {
  char page[ode::kPageSize];
  ode::SlottedPage view(page);
  view.Init();
  (void)view.Insert(ode::Slice("alpha"));
  (void)view.Insert(ode::Slice("beta-record"));
  (void)view.Insert(ode::Slice(std::string(100, 'c')));
  (void)view.Delete(1);
  WriteSeed("page_slotted", "valid-page", std::string(page, sizeof(page)));

  // Regression: slot count far past the directory's physical capacity.
  std::string hostile(page, sizeof(page));
  hostile[8] = static_cast<char>(0xff);
  hostile[9] = static_cast<char>(0xff);
  WriteSeed("page_slotted", "slot-count-overflow", hostile);

  // Regression: directory entry pointing outside the page.
  std::string oob(page, sizeof(page));
  oob[14] = static_cast<char>(0xf0);  // slot 0 cell offset = 0xfff0
  oob[15] = static_cast<char>(0xff);
  oob[16] = static_cast<char>(0x80);  // slot 0 length = 0x80
  WriteSeed("page_slotted", "cell-offset-oob", oob);

  // Regression: offset+length sum wrapping past the page end.
  std::string wrap(page, sizeof(page));
  wrap[14] = static_cast<char>(0x00);  // offset 0x0f00 (in page)
  wrap[15] = static_cast<char>(0x0f);
  wrap[16] = static_cast<char>(0xff);  // length 0xffff
  wrap[17] = static_cast<char>(0xff);
  WriteSeed("page_slotted", "cell-length-wrap", wrap);
}

void SuperblockSeeds() {
  char page[ode::kPageSize];
  ode::SuperblockView view(page);
  view.Init();
  view.set_page_count(4);
  view.set_root(0, 2);
  view.set_counter(0, 17);
  WriteSeed("superblock", "valid", std::string(page, sizeof(page)));

  view.set_page_count(0xffffffffu);
  view.set_free_list_head(0xfffffff0u);
  WriteSeed("superblock", "hostile-counts", std::string(page, sizeof(page)));

  std::string garbage(ode::kPageSize, '\x5a');
  WriteSeed("superblock", "garbage-page", garbage);
}

// -- Engine-built database + corruption directives --------------------------

/// One CorruptImage directive (see src/fuzz/targets_storage.cc): 3-byte LE
/// offset relative to the end of page 0, then the byte to write there.
void AppendPoke(std::string* out, uint32_t file_offset, uint8_t value) {
  const uint32_t raw = file_offset - ode::kPageSize;
  out->push_back(static_cast<char>(raw & 0xff));
  out->push_back(static_cast<char>((raw >> 8) & 0xff));
  out->push_back(static_cast<char>((raw >> 16) & 0xff));
  out->push_back(static_cast<char>(value));
}

/// Rebuilds the same baseline database the harness builds (see
/// targets_storage.cc) so directive seeds can aim at real page structures.
std::string BuildBaselineImage() {
  ode::MemEnv env;
  ode::StorageOptions opts;
  opts.env = &env;
  opts.path = "/db";
  opts.buffer_pool_pages = 128;
  auto engine = ode::StorageEngine::Open(opts);
  if (!engine.ok()) return {};
  const ode::Status s = (*engine)->WithTxn([&](ode::Txn& txn) -> ode::Status {
    auto tree = ode::BTree::Open(&txn, 0);
    if (!tree.ok()) return tree.status();
    for (int i = 0; i < 64; ++i) {
      char key[16];
      std::snprintf(key, sizeof(key), "key%03d", i);
      const std::string value(static_cast<size_t>(i) * 7 + 1,
                              static_cast<char>('a' + i % 26));
      ODE_RETURN_IF_ERROR(tree->Put(ode::Slice(key), ode::Slice(value)));
    }
    ode::HeapFile& heap = (*engine)->heap();
    for (int i = 0; i < 8; ++i) {
      const std::string payload(static_cast<size_t>(i) * 97 + 5, 'h');
      auto rid = heap.Insert(&txn, ode::Slice(payload));
      if (!rid.ok()) return rid.status();
    }
    auto rid =
        heap.Insert(&txn, ode::Slice(std::string(3 * ode::kPageSize, 'O')));
    if (!rid.ok()) return rid.status();
    return ode::Status::OK();
  });
  if (!s.ok()) return {};
  if (!(*engine)->Checkpoint().ok()) return {};
  (*engine)->Shutdown();
  engine->reset();
  auto file = env.OpenFile("/db/data.odb");
  if (!file.ok()) return {};
  auto size = (*file)->Size();
  if (!size.ok()) return {};
  std::string scratch;
  ode::Slice out;
  if (!(*file)->Read(0, *size, &scratch, &out).ok()) return {};
  return out.ToString();
}

ode::PageType PageTypeAt(const std::string& image, uint32_t page) {
  return static_cast<ode::PageType>(
      static_cast<uint8_t>(image[page * ode::kPageSize]));
}

void DirectiveSeeds() {
  const std::string image = BuildBaselineImage();
  if (image.empty()) {
    std::fprintf(stderr, "baseline build failed\n");
    std::exit(1);
  }
  const uint32_t pages =
      static_cast<uint32_t>(image.size() / ode::kPageSize);

  uint32_t leaf = 0;
  uint32_t internal = 0;
  uint32_t heap_page = 0;
  uint32_t overflow = 0;
  for (uint32_t p = 1; p < pages; ++p) {
    switch (PageTypeAt(image, p)) {
      case ode::PageType::kBTreeLeaf:
        if (leaf == 0) leaf = p;
        break;
      case ode::PageType::kBTreeInternal:
        if (internal == 0) internal = p;
        break;
      case ode::PageType::kHeap:
        if (heap_page == 0) heap_page = p;
        break;
      case ode::PageType::kOverflow:
        if (overflow == 0) overflow = p;
        break;
      default:
        break;
    }
  }

  // page_btree: no corruption (sanity replay of the pristine database).
  WriteSeed("page_btree", "pristine", "");
  if (leaf != 0) {
    const uint32_t base = leaf * ode::kPageSize;
    // Regression: entry count past the directory capacity (CheckedCell).
    std::string count_overflow;
    AppendPoke(&count_overflow, base + 8, 0xff);
    AppendPoke(&count_overflow, base + 9, 0x7f);
    WriteSeed("page_btree", "leaf-count-overflow", count_overflow);
    // Regression: directory offset/length escaping the page.
    std::string dir_oob;
    AppendPoke(&dir_oob, base + 18, 0xf0);
    AppendPoke(&dir_oob, base + 19, 0xff);
    AppendPoke(&dir_oob, base + 20, 0xff);
    AppendPoke(&dir_oob, base + 21, 0x7f);
    WriteSeed("page_btree", "leaf-dir-oob", dir_oob);
    // Sibling link pointing at itself (iterator cycle guard).
    std::string self_link;
    AppendPoke(&self_link, base + 4, static_cast<uint8_t>(leaf & 0xff));
    AppendPoke(&self_link, base + 5, static_cast<uint8_t>((leaf >> 8) & 0xff));
    AppendPoke(&self_link, base + 6, 0x00);
    AppendPoke(&self_link, base + 7, 0x00);
    WriteSeed("page_btree", "leaf-self-link", self_link);
    // Page type flip: leaf masquerading as an internal node.
    std::string type_flip;
    AppendPoke(&type_flip, base + 0,
               static_cast<uint8_t>(ode::PageType::kBTreeInternal));
    WriteSeed("page_btree", "leaf-type-flip", type_flip);
  }
  if (internal != 0) {
    // Null leftmost-child pointer in an internal node (bytes 4..7).
    std::string null_child;
    const uint32_t base = internal * ode::kPageSize;
    AppendPoke(&null_child, base + 4, 0x00);
    AppendPoke(&null_child, base + 5, 0x00);
    AppendPoke(&null_child, base + 6, 0x00);
    AppendPoke(&null_child, base + 7, 0x00);
    WriteSeed("page_btree", "internal-null-child", null_child);
  }

  // heap_record directives.
  WriteSeed("heap_record", "pristine", "");
  if (heap_page != 0) {
    const uint32_t base = heap_page * ode::kPageSize;
    // Slot directory pointing outside the page.
    std::string slot_oob;
    AppendPoke(&slot_oob, base + 14, 0xf0);
    AppendPoke(&slot_oob, base + 15, 0xff);
    WriteSeed("heap_record", "slot-offset-oob", slot_oob);
    // Cell tag corrupted to an unknown value.
    std::string bad_tag;
    AppendPoke(&bad_tag, base + ode::kPageSize - 1, 0x77);
    WriteSeed("heap_record", "bad-cell-tag", bad_tag);
  }
  if (overflow != 0) {
    const uint32_t base = overflow * ode::kPageSize;
    // Regression: overflow chain cycling back to itself — before the chain
    // bound in HeapFile::Read this looped forever / allocated unboundedly.
    std::string cycle;
    AppendPoke(&cycle, base + 4, static_cast<uint8_t>(overflow & 0xff));
    AppendPoke(&cycle, base + 5,
               static_cast<uint8_t>((overflow >> 8) & 0xff));
    AppendPoke(&cycle, base + 6, 0x00);
    AppendPoke(&cycle, base + 7, 0x00);
    WriteSeed("heap_record", "overflow-cycle", cycle);
    // Chunk length beyond the page's capacity.
    std::string fat_chunk;
    AppendPoke(&fat_chunk, base + 8, 0xff);
    AppendPoke(&fat_chunk, base + 9, 0xff);
    AppendPoke(&fat_chunk, base + 10, 0x00);
    AppendPoke(&fat_chunk, base + 11, 0x00);
    WriteSeed("heap_record", "overflow-fat-chunk", fat_chunk);
    // Overflow page re-typed mid-chain.
    std::string retyped;
    AppendPoke(&retyped, base + 0, static_cast<uint8_t>(ode::PageType::kFree));
    WriteSeed("heap_record", "overflow-retyped", retyped);
  }
}

// -- Catalog codecs ---------------------------------------------------------

void MetaSeeds() {
  ode::ObjectHeader header;
  header.type_id = 3;
  header.latest = 5;
  header.next_vnum = 6;
  header.version_count = 4;
  header.created_ts = 1111;
  WriteSeed("version_meta", "object-header", header.Encode());

  ode::VersionMeta meta;
  meta.vnum = 5;
  meta.derived_from = 4;
  meta.created_ts = 2222;
  meta.payload = ode::RecordId{2, 1};
  meta.kind = ode::PayloadKind::kDelta;
  meta.delta_base = 4;
  meta.delta_chain_len = 1;
  meta.logical_size = 512;
  meta.delta_pos = 1;
  WriteSeed("version_meta", "version-meta-delta", meta.Encode());
  WriteSeed("version_meta", "version-meta-truncated",
            meta.Encode().substr(0, 7));
  {
    // Regression: hostile payload kind byte (rejected as Corruption).
    std::string bad = meta.Encode();
    // kind is the byte after vnum/derived_from/created_ts/payload — flip
    // every byte position to cover it regardless of layout drift.
    for (size_t i = 0; i < bad.size(); ++i) bad[i] ^= 0x40;
    WriteSeed("version_meta", "version-meta-mangled", bad);
  }
  WriteSeed("version_meta", "version-key",
            ode::VersionKey(ode::VersionId{ode::ObjectId{42}, 7}));
  WriteSeed("version_meta", "cluster-key",
            ode::ClusterKey(9, ode::ObjectId{1000}));
  WriteSeed("version_meta", "type-id", ode::EncodeTypeId(12));
}

// -- Delta ------------------------------------------------------------------

/// Fuzz-input layout for delta_apply: [split byte][base...][delta...].
/// Brute-forces the split byte the target's arithmetic needs.
std::string DeltaInput(const std::string& base, const std::string& delta) {
  const size_t size = 1 + base.size() + delta.size();
  for (int b = 0; b < 256; ++b) {
    const size_t split = 1 + (static_cast<size_t>(b) * (size - 1)) / 256;
    if (split == 1 + base.size()) {
      std::string input;
      input.push_back(static_cast<char>(b));
      input += base;
      input += delta;
      return input;
    }
  }
  std::fprintf(stderr, "no split byte for base=%zu delta=%zu\n", base.size(),
               delta.size());
  std::exit(1);
}

void DeltaSeeds() {
  const std::string base =
      "the quick brown fox jumps over the lazy dog 0123456789 the quick "
      "brown fox jumps over the lazy dog";
  const std::string target =
      "the quick brown cat jumps over the lazy dog 0123456789 extra tail";
  WriteSeed("delta_apply", "valid-roundtrip",
            DeltaInput(base, ode::delta::Encode(ode::Slice(base),
                                                ode::Slice(target))));

  // Adversarial deltas (also pinned by delta_adversarial_test.cc).
  {
    // COPY reaching past the base.
    std::string d;
    ode::PutVarint64(&d, 10);  // target length
    d.push_back(0);            // COPY
    ode::PutVarint64(&d, 1000);  // offset out of range
    ode::PutVarint64(&d, 10);
    WriteSeed("delta_apply", "copy-out-of-range", DeltaInput(base, d));
  }
  {
    // ADD claiming far more bytes than the delta carries.
    std::string d;
    ode::PutVarint64(&d, 100);
    d.push_back(1);  // ADD
    ode::PutVarint64(&d, 0xffffffffu);
    d += "short";
    WriteSeed("delta_apply", "oversized-add-claim", DeltaInput(base, d));
  }
  {
    // Declared length exceeded by the ops.
    std::string d;
    ode::PutVarint64(&d, 3);
    d.push_back(1);  // ADD
    ode::PutVarint64(&d, 8);
    d += "toolong!";
    WriteSeed("delta_apply", "output-exceeds-declared", DeltaInput(base, d));
  }
  {
    // Zero-length ops forever would stall: zero COPY then truncation.
    std::string d;
    ode::PutVarint64(&d, 5);
    d.push_back(0);  // COPY len 0
    ode::PutVarint64(&d, 0);
    ode::PutVarint64(&d, 0);
    d.push_back(0);  // truncated COPY
    WriteSeed("delta_apply", "zero-length-ops", DeltaInput(base, d));
  }
  {
    // Unknown op tag.
    std::string d;
    ode::PutVarint64(&d, 4);
    d.push_back(9);
    WriteSeed("delta_apply", "unknown-op-tag", DeltaInput(base, d));
  }
  {
    // Ops end before the declared length is produced.
    std::string d;
    ode::PutVarint64(&d, 64);
    d.push_back(1);  // ADD 4
    ode::PutVarint64(&d, 4);
    d += "four";
    WriteSeed("delta_apply", "short-output", DeltaInput(base, d));
  }
}

// -- Payload-store entries --------------------------------------------------

void PayloadEntrySeeds() {
  ode::PayloadStoreEntry entry;
  entry.refcount = 3;
  entry.size = 4096;
  entry.rid = ode::RecordId{7, 2};
  const std::string valid = ode::EncodePayloadStoreEntry(entry);
  WriteSeed("payload_entry", "valid", valid);
  WriteSeed("payload_entry", "truncated", valid.substr(0, valid.size() - 3));
  WriteSeed("payload_entry", "trailing-garbage", valid + "x");
  {
    // Unterminated varint.
    std::string v(10, '\xff');
    WriteSeed("payload_entry", "varint-overrun", v);
  }
}

// -- Event journal ----------------------------------------------------------

void EventCodecSeeds() {
  std::vector<ode::EventRecord> events(3);
  for (size_t i = 0; i < events.size(); ++i) {
    events[i].seq = i + 1;
    events[i].ts_micros = 1000 * (i + 1);
    events[i].type = ode::EventType::kTxnCommit;
    events[i].severity = ode::EventSeverity::kInfo;
    events[i].tid = static_cast<uint32_t>(i);
    std::snprintf(events[i].detail, sizeof(events[i].detail), "event-%zu", i);
  }
  std::string valid;
  ode::EventLog::EncodeBinary(events, &valid);
  WriteSeed("event_codec", "valid-three-records", valid);
  WriteSeed("event_codec", "truncated-record",
            valid.substr(0, valid.size() - 10));
  {
    // Regression: count * record-size wraps uint64_t; before the
    // divide-first check this drove a giant reserve() and reads past the
    // buffer.
    std::string overflow("ODEJ");
    ode::PutFixed32(&overflow, 1);
    ode::PutFixed64(&overflow, 0x2000000000000000ull);
    overflow.append(16, '\x00');
    WriteSeed("event_codec", "count-overflow", overflow);
  }
}

// -- JSON -------------------------------------------------------------------

void JsonSeeds() {
  WriteSeed("json", "object",
            R"({"a":1,"b":"two","c":[1,2,3],"d":{"e":null,"f":true}})");
  WriteSeed("json", "number-forms", R"([0,-1,1.5,1e9,-2.5e-3,true,false])");
  WriteSeed("json", "escapes", R"({"a":"A\n\t\\\"","b":"😀"})");
  WriteSeed("json", "truncated-literal", "tru");
  WriteSeed("json", "trailing-bytes", "{} extra");
  {
    // Deep nesting past the checker's depth cap.
    std::string deep(80, '[');
    deep += std::string(80, ']');
    WriteSeed("json", "deep-nesting", deep);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root-dir>\n", argv[0]);
    return 2;
  }
  g_root = argv[1];
  WireSeeds();
  WalSeeds();
  SlottedSeeds();
  SuperblockSeeds();
  DirectiveSeeds();
  MetaSeeds();
  DeltaSeeds();
  PayloadEntrySeeds();
  EventCodecSeeds();
  JsonSeeds();
  std::printf("seed corpus written under %s\n", argv[1]);
  return 0;
}
