// Standalone corpus-replay driver for the fuzz-target registry (src/fuzz/).
//
// Registered as `ctest -L fuzz`: replays every checked-in seed corpus entry
// through its target, then runs deterministic seeded mutation rounds
// (bitflips, truncations, splices, random inputs) on top.  Run under
// ASan/UBSan this is the regression leg of the fuzzing story: every input
// that ever crashed a decoder is committed to the corpus and replayed here
// forever.  Exploratory fuzzing lives in the libFuzzer shim
// (libfuzzer_shim.cc) on the clang CI job.
//
// Usage:
//   fuzz_replay --list
//   fuzz_replay --expect N              # registry completeness check
//   fuzz_replay [--target NAME] [--corpus DIR] [--rounds N] [--quiet]

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/fuzz.h"
#include "util/random.h"

namespace {

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

std::vector<std::filesystem::path> ListCorpus(
    const std::filesystem::path& dir) {
  std::vector<std::filesystem::path> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

void RunOne(const ode::fuzz::FuzzTarget& target, const std::string& input) {
  const int rc = target.entry(
      reinterpret_cast<const uint8_t*>(input.data()), input.size());
  if (rc != 0) {
    std::fprintf(stderr, "target %s returned %d (must be 0)\n",
                 target.name.c_str(), rc);
    std::exit(1);
  }
}

/// One deterministic mutation of `seed` (classic byte-level fuzz moves).
std::string Mutate(const std::string& seed, ode::Random* rng) {
  std::string out = seed;
  switch (rng->Uniform(5)) {
    case 0: {  // Bit flips.
      if (out.empty()) return rng->NextBytes(1 + rng->Uniform(64));
      const uint64_t flips = 1 + rng->Uniform(8);
      for (uint64_t i = 0; i < flips; ++i) {
        out[rng->Uniform(out.size())] ^=
            static_cast<char>(1 + rng->Uniform(255));
      }
      return out;
    }
    case 1:  // Truncation.
      if (out.empty()) return out;
      out.resize(rng->Uniform(out.size() + 1));
      return out;
    case 2: {  // Extension with random bytes.
      out += rng->NextBytes(1 + rng->Uniform(128));
      return out;
    }
    case 3: {  // Splice a random block over a random position.
      if (out.empty()) return rng->NextBytes(1 + rng->Uniform(64));
      const uint64_t pos = rng->Uniform(out.size());
      const std::string block = rng->NextBytes(1 + rng->Uniform(32));
      out.replace(pos, std::min<size_t>(block.size(), out.size() - pos),
                  block);
      return out;
    }
    default:  // Fresh random input.
      return rng->NextBytes(rng->Uniform(1024));
  }
}

uint64_t NameSeed(const std::string& name) {
  uint64_t h = 0x6f64652d66757a7aull;  // "ode-fuzz"
  for (const char c : name) h = h * 1099511628211ull + static_cast<uint8_t>(c);
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  ode::fuzz::RegisterAllFuzzTargets();

  std::string target_name;
  std::string corpus_root;
  int expect = -1;
  uint64_t rounds = 32;
  bool list = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--list") {
      list = true;
    } else if (arg == "--target") {
      target_name = next();
    } else if (arg == "--corpus") {
      corpus_root = next();
    } else if (arg == "--expect") {
      expect = std::atoi(next());
    } else if (arg == "--rounds") {
      rounds = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  const auto& targets = ode::fuzz::AllFuzzTargets();
  if (list) {
    for (const auto& t : targets) {
      std::printf("%-20s %s\n", t.name.c_str(), t.description.c_str());
    }
  }
  if (expect >= 0) {
    if (static_cast<int>(targets.size()) < expect) {
      std::fprintf(stderr,
                   "registry has %zu targets, expected at least %d\n",
                   targets.size(), expect);
      return 1;
    }
    std::printf("registry complete: %zu targets (>= %d)\n", targets.size(),
                expect);
  }
  if (list || (expect >= 0 && target_name.empty())) return 0;

  std::vector<const ode::fuzz::FuzzTarget*> selected;
  if (!target_name.empty()) {
    const auto* t = ode::fuzz::FindFuzzTarget(target_name);
    if (t == nullptr) {
      std::fprintf(stderr, "unknown fuzz target: %s\n", target_name.c_str());
      return 2;
    }
    selected.push_back(t);
  } else {
    for (const auto& t : targets) selected.push_back(&t);
  }

  for (const auto* t : selected) {
    std::vector<std::string> seeds;
    if (!corpus_root.empty()) {
      for (const auto& path :
           ListCorpus(std::filesystem::path(corpus_root) / t->name)) {
        seeds.push_back(ReadFile(path));
        RunOne(*t, seeds.back());
      }
    }
    // Deterministic mutation rounds on top of the corpus (and from
    // scratch when a target has no corpus yet).
    ode::Random rng(NameSeed(t->name));
    if (seeds.empty()) seeds.push_back(std::string());
    for (const std::string& seed : seeds) {
      for (uint64_t r = 0; r < rounds; ++r) {
        RunOne(*t, Mutate(seed, &rng));
      }
    }
    for (uint64_t r = 0; r < rounds; ++r) {
      RunOne(*t, rng.NextBytes(rng.Uniform(2048)));
    }
    if (!quiet) {
      std::printf("%-20s corpus=%zu mutations=%llu ok\n", t->name.c_str(),
                  seeds.size(),
                  static_cast<unsigned long long>(seeds.size() * rounds +
                                                  rounds));
    }
  }
  return 0;
}
