// libFuzzer entry point for one registry target (clang CI fuzz job only;
// built when -DODE_LIBFUZZER=ON).  Each fuzz_<name> binary is this file
// compiled with -DODE_FUZZ_TARGET_NAME="<name>" and linked with
// -fsanitize=fuzzer, so libFuzzer's mutation engine drives the same entry
// point the ctest corpus-replay leg replays.  Crashers found here get
// committed into tests/fuzz/corpus/<name>/ as permanent regressions.

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "fuzz/fuzz.h"

#ifndef ODE_FUZZ_TARGET_NAME
#error "compile with -DODE_FUZZ_TARGET_NAME=\"<registered target name>\""
#endif

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  static const ode::fuzz::FuzzTarget* target = [] {
    ode::fuzz::RegisterAllFuzzTargets();
    const auto* t = ode::fuzz::FindFuzzTarget(ODE_FUZZ_TARGET_NAME);
    if (t == nullptr) {
      std::fprintf(stderr, "unknown fuzz target: %s\n", ODE_FUZZ_TARGET_NAME);
      std::abort();
    }
    return t;
  }();
  return target->entry(data, size);
}
