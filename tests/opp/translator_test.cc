#include "opp/translator.h"

#include <gtest/gtest.h>

namespace ode {
namespace opp {
namespace {

TranslateOptions NoInclude() {
  TranslateOptions options;
  options.add_include = false;
  return options;
}

std::string MustTranslate(std::string_view source,
                          TranslateStats* stats = nullptr) {
  auto result = Translate(source, NoInclude(), stats);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? *result : std::string();
}

TEST(TranslatorTest, PersistentPointerDeclaration) {
  EXPECT_EQ(MustTranslate("persistent Part* p;"), "ode::Ref<Part> p;");
  EXPECT_EQ(MustTranslate("persistent Part *p;"), "ode::Ref<Part> p;");
  EXPECT_EQ(MustTranslate("persistent Part  *  p ;"), "ode::Ref<Part>  p ;");
}

TEST(TranslatorTest, PersistentMultiDeclarator) {
  EXPECT_EQ(MustTranslate("persistent Part *a, *b;"),
            "ode::Ref<Part> a, b;");
  EXPECT_EQ(MustTranslate("persistent Part* a, *b, *c;"),
            "ode::Ref<Part> a, b, c;");
}

TEST(TranslatorTest, MultiDeclaratorWithInitializer) {
  EXPECT_EQ(
      MustTranslate("persistent Part *a = pnew Part(x*y), *b;"),
      "ode::Ref<Part> a = ode::opp::Pnew<Part>(db, Part(x*y)), b;");
}

TEST(TranslatorTest, StarAfterCommaOutsideDeclUntouched) {
  const std::string source = "f(a, *ptr);";
  EXPECT_EQ(MustTranslate(source), source);
}

TEST(TranslatorTest, PnewWithArguments) {
  TranslateStats stats;
  EXPECT_EQ(MustTranslate("p = pnew Part(\"alu\", 4);", &stats),
            "p = ode::opp::Pnew<Part>(db, Part(\"alu\", 4));");
  EXPECT_EQ(stats.pnew_exprs, 1);
}

TEST(TranslatorTest, PnewWithoutArguments) {
  EXPECT_EQ(MustTranslate("p = pnew Part;"),
            "p = ode::opp::Pnew<Part>(db, Part());");
}

TEST(TranslatorTest, PnewWithNestedParens) {
  EXPECT_EQ(MustTranslate("p = pnew Part(f(1, g(2)), 3);"),
            "p = ode::opp::Pnew<Part>(db, Part(f(1, g(2)), 3));");
}

TEST(TranslatorTest, PdeleteStatement) {
  EXPECT_EQ(MustTranslate("pdelete p;"), "ode::opp::Pdelete(db, p);");
  EXPECT_EQ(MustTranslate("pdelete parts[i];"),
            "ode::opp::Pdelete(db, parts[i]);");
}

TEST(TranslatorTest, PdeleteInsideCall) {
  // Operand ends at the ',' or ')' of the surrounding call.
  EXPECT_EQ(MustTranslate("log(pdelete p);"),
            "log(ode::opp::Pdelete(db, p));");
}

TEST(TranslatorTest, NewVersionCall) {
  TranslateStats stats;
  EXPECT_EQ(MustTranslate("vp = newversion(p);", &stats),
            "vp = ode::opp::NewVersion(db, p);");
  EXPECT_EQ(stats.newversion_calls, 1);
}

TEST(TranslatorTest, NewVersionWithComplexArgument) {
  EXPECT_EQ(MustTranslate("newversion(chips[i].schematic)"),
            "ode::opp::NewVersion(db, chips[i].schematic)");
}

TEST(TranslatorTest, ClusterForLoop) {
  TranslateStats stats;
  EXPECT_EQ(MustTranslate("for (x in Part) { use(x); }", &stats),
            "for (ode::Ref<Part> x : ode::opp::ClusterRange<Part>(db))"
            " { use(x); }");
  EXPECT_EQ(stats.cluster_loops, 1);
}

TEST(TranslatorTest, SuchthatLoopAddsSelection) {
  TranslateStats stats;
  EXPECT_EQ(
      MustTranslate("for (x in Part suchthat (x->area > 10)) { use(x); }",
                    &stats),
      "for (ode::Ref<Part> x : ode::opp::ClusterRange<Part>(db))"
      " if (!(x->area > 10)); else { use(x); }");
  EXPECT_EQ(stats.cluster_loops, 1);
}

TEST(TranslatorTest, SuchthatWithStatementBody) {
  EXPECT_EQ(MustTranslate("for (x in Part suchthat (ok(x))) use(x);"),
            "for (ode::Ref<Part> x : ode::opp::ClusterRange<Part>(db))"
            " if (!(ok(x))); else use(x);");
}

TEST(TranslatorTest, MalformedSuchthatRejected) {
  auto result = Translate("for (x in Part suchthat x.ok)", NoInclude());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(TranslatorTest, OrdinaryForLoopUntouched) {
  const std::string source = "for (int i = 0; i < n; ++i) f(i);";
  EXPECT_EQ(MustTranslate(source), source);
}

TEST(TranslatorTest, KeywordsInStringsAndCommentsUntouched) {
  const std::string source =
      "// pnew Part in a comment\n"
      "const char* s = \"pdelete p\";\n";
  EXPECT_EQ(MustTranslate(source), source);
}

TEST(TranslatorTest, IdentifiersContainingKeywordsUntouched) {
  const std::string source = "int pnewish = my_pdelete + newversion2;";
  EXPECT_EQ(MustTranslate(source), source);
}

TEST(TranslatorTest, CustomDatabaseExpression) {
  TranslateOptions options = NoInclude();
  options.db_expr = "*design_db";
  auto result = Translate("p = pnew Part(1);", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, "p = ode::opp::Pnew<Part>(*design_db, Part(1));");
}

TEST(TranslatorTest, IncludePrepended) {
  TranslateOptions options;  // add_include defaults to true.
  auto result = Translate("int x;", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, "#include \"opp/runtime.h\"  // added by oppc\nint x;");
}

TEST(TranslatorTest, UnbalancedPnewParensRejected) {
  auto result = Translate("p = pnew Part(1, 2;", NoInclude());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(TranslatorTest, PdeleteWithoutOperandRejected) {
  auto result = Translate("pdelete ;", NoInclude());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(TranslatorTest, WholeProgramTranslation) {
  const std::string source = R"(void evolve(ode::Database& db) {
  persistent Chip* alu = pnew Chip("alu", 16);
  VersionPtr<Chip> vp = newversion(alu);
  for (c in Chip) {
    inspect(c);
  }
  pdelete alu;
})";
  TranslateStats stats;
  const std::string out = MustTranslate(source, &stats);
  EXPECT_EQ(stats.persistent_decls, 1);
  EXPECT_EQ(stats.pnew_exprs, 1);
  EXPECT_EQ(stats.newversion_calls, 1);
  EXPECT_EQ(stats.cluster_loops, 1);
  EXPECT_EQ(stats.pdelete_stmts, 1);
  EXPECT_NE(out.find("ode::Ref<Chip> alu = ode::opp::Pnew<Chip>(db, "
                     "Chip(\"alu\", 16));"),
            std::string::npos);
  EXPECT_NE(out.find("ode::opp::NewVersion(db, alu)"), std::string::npos);
  EXPECT_NE(out.find("for (ode::Ref<Chip> c : "
                     "ode::opp::ClusterRange<Chip>(db))"),
            std::string::npos);
  EXPECT_NE(out.find("ode::opp::Pdelete(db, alu);"), std::string::npos);
}

}  // namespace
}  // namespace opp
}  // namespace ode
