#include <gtest/gtest.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

// End-to-end tests of the oppc BINARY (not just the Translate library):
// run the tool over O++ source and inspect its output and exit codes.
// OPPC_PATH is injected by CMake as the built binary's location.

#ifndef OPPC_PATH
#define OPPC_PATH "oppc"
#endif

namespace ode {
namespace {

struct ToolResult {
  int exit_code;
  std::string stdout_text;
};

ToolResult RunOppc(const std::string& args, const std::string& stdin_text) {
  // Keyed by pid: parallel ctest runs each test in its own process, and a
  // shared fixed name lets one test clobber the input mid-read of another's
  // oppc subprocess.
  const std::string input_path = ::testing::TempDir() + "oppc_in." +
                                 std::to_string(getpid()) + ".opp";
  {
    std::ofstream out(input_path);
    out << stdin_text;
  }
  const std::string command =
      std::string(OPPC_PATH) + " " + args + " " + input_path + " 2>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string output;
  std::array<char, 4096> buffer;
  size_t n = 0;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    output.append(buffer.data(), n);
  }
  const int status = pclose(pipe);
  return ToolResult{WEXITSTATUS(status), output};
}

TEST(OppcToolTest, TranslatesSimpleProgram) {
  ToolResult result =
      RunOppc("", "persistent Part* p = pnew Part(1);\n");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.stdout_text.find("#include \"opp/runtime.h\""),
            std::string::npos);
  EXPECT_NE(result.stdout_text.find(
                "ode::Ref<Part> p = ode::opp::Pnew<Part>(db, Part(1));"),
            std::string::npos);
}

TEST(OppcToolTest, NoIncludeFlag) {
  ToolResult result = RunOppc("--no-include", "int x;\n");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_EQ(result.stdout_text, "int x;\n");
}

TEST(OppcToolTest, CustomDbFlag) {
  ToolResult result =
      RunOppc("--db=my_db --no-include", "pdelete p;\n");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_EQ(result.stdout_text, "ode::opp::Pdelete(my_db, p);\n");
}

TEST(OppcToolTest, FailsOnMalformedInput) {
  ToolResult result = RunOppc("", "p = pnew Part(1, 2;\n");
  EXPECT_NE(result.exit_code, 0);
}

TEST(OppcToolTest, WritesOutputFile) {
  const std::string input_path = ::testing::TempDir() + "oppc_in2." +
                                 std::to_string(getpid()) + ".opp";
  const std::string output_path = ::testing::TempDir() + "oppc_out2." +
                                  std::to_string(getpid()) + ".cc";
  {
    std::ofstream out(input_path);
    out << "newversion(p)\n";
  }
  const std::string command = std::string(OPPC_PATH) + " --no-include " +
                              input_path + " " + output_path + " 2>/dev/null";
  ASSERT_EQ(WEXITSTATUS(std::system(command.c_str())), 0);
  std::ifstream in(output_path);
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), "ode::opp::NewVersion(db, p)\n");
}

TEST(OppcToolTest, UnknownFlagRejected) {
  ToolResult result = RunOppc("--bogus", "int x;\n");
  EXPECT_NE(result.exit_code, 0);
}

}  // namespace
}  // namespace ode
