#include "opp/runtime.h"

#include <gtest/gtest.h>

#include "tests/testing/db_fixture.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;
using testing_internal::Doc;

/// Exercises opp/runtime.h the way oppc-translated code would use it — this
/// file is effectively what `oppc` emits for a small O++ program, compiled
/// and run.
class OppRuntimeTest : public DatabaseFixture {};

TEST_F(OppRuntimeTest, PnewAndDeref) {
  // O++: persistent Doc* p = pnew Doc("hello", 1);
  ode::Ref<Doc> p = ode::opp::Pnew<Doc>(*db_, Doc{"hello", 1});
  EXPECT_EQ(p->text, "hello");
}

TEST_F(OppRuntimeTest, NewVersionThroughRuntime) {
  ode::Ref<Doc> p = ode::opp::Pnew<Doc>(*db_, Doc{"v1", 1});
  // O++: VersionPtr<Doc> vp = newversion(p);
  ode::VersionPtr<Doc> vp = ode::opp::NewVersion(*db_, p);
  ASSERT_OK(vp.Store(Doc{"v2", 2}));
  EXPECT_EQ(p->text, "v2");  // Generic ref late-binds to the new version.
  ode::VersionPtr<Doc> vp2 = ode::opp::NewVersion(*db_, vp);
  auto parent = vp2.Dprevious();
  ASSERT_TRUE(parent.ok());
  EXPECT_EQ(parent->value().vid(), vp.vid());
}

TEST_F(OppRuntimeTest, ClusterRangeIteratesAllObjects) {
  for (int i = 0; i < 5; ++i) {
    ode::opp::Pnew<Doc>(*db_, Doc{"doc" + std::to_string(i), i});
  }
  // O++: for (d in Doc) ...
  int count = 0;
  int64_t revision_sum = 0;
  for (ode::Ref<Doc> d : ode::opp::ClusterRange<Doc>(*db_)) {
    ++count;
    revision_sum += d->revision;
  }
  EXPECT_EQ(count, 5);
  EXPECT_EQ(revision_sum, 0 + 1 + 2 + 3 + 4);
}

TEST_F(OppRuntimeTest, ClusterRangeSnapshotsAtLoopEntry) {
  ode::opp::Pnew<Doc>(*db_, Doc{"seed", 0});
  int iterations = 0;
  for (ode::Ref<Doc> d : ode::opp::ClusterRange<Doc>(*db_)) {
    (void)d;
    ++iterations;
    // Creating objects inside the loop must not extend this iteration.
    ode::opp::Pnew<Doc>(*db_, Doc{"created in loop", iterations});
    ASSERT_LT(iterations, 100) << "loop failed to terminate";
  }
  EXPECT_EQ(iterations, 1);
  EXPECT_EQ(ode::opp::ClusterRange<Doc>(*db_).size(), 2u);
}

TEST_F(OppRuntimeTest, PdeleteObjectAndVersion) {
  ode::Ref<Doc> p = ode::opp::Pnew<Doc>(*db_, Doc{"x", 0});
  ode::VersionPtr<Doc> vp = ode::opp::NewVersion(*db_, p);
  // O++: pdelete vp;  (one version)
  ode::opp::Pdelete(*db_, vp);
  EXPECT_TRUE(vp.Load().status().IsNotFound());
  EXPECT_TRUE(p.Load().ok());
  // O++: pdelete p;  (whole object)
  ode::opp::Pdelete(*db_, p);
  EXPECT_TRUE(p.Load().status().IsNotFound());
}

}  // namespace
}  // namespace ode
