#include "opp/lexer.h"

#include <gtest/gtest.h>

namespace ode {
namespace opp {
namespace {

std::string Reassemble(const std::vector<Token>& tokens) {
  std::string out;
  for (const Token& token : tokens) out += token.text;
  return out;
}

TEST(LexerTest, RoundTripsArbitrarySource) {
  const std::string source = R"(
// a comment
int main() {
  persistent Part* p = pnew Part("cpu", 42);
  /* block
     comment */
  const char* s = "a \"quoted\" string with pnew inside";
  char c = '\'';
  return 0;
}
)";
  EXPECT_EQ(Reassemble(Lex(source)), source);
}

TEST(LexerTest, ClassifiesIdentifiers) {
  auto tokens = Lex("pnew persistent _under x9");
  ASSERT_GE(tokens.size(), 7u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "pnew");
  EXPECT_EQ(tokens[2].text, "persistent");
  EXPECT_EQ(tokens[4].text, "_under");
  EXPECT_EQ(tokens[6].text, "x9");
}

TEST(LexerTest, StringsAreSingleTokens) {
  auto tokens = Lex("\"hello world pdelete\"");
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "\"hello world pdelete\"");
}

TEST(LexerTest, EscapedQuotesInsideStrings) {
  auto tokens = Lex(R"("a \" b" x)");
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, R"("a \" b")");
  EXPECT_EQ(tokens[2].text, "x");
}

TEST(LexerTest, LineCommentsEndAtNewline) {
  auto tokens = Lex("a // comment pnew\nb");
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[2].kind, TokenKind::kComment);
  EXPECT_EQ(tokens[2].text, "// comment pnew");
  // Next non-blank token is b.
  EXPECT_EQ(tokens[4].text, "b");
}

TEST(LexerTest, BlockCommentsSpanLines) {
  auto tokens = Lex("/* one\ntwo */x");
  EXPECT_EQ(tokens[0].kind, TokenKind::kComment);
  EXPECT_EQ(tokens[1].text, "x");
}

TEST(LexerTest, NumbersLexAsUnits) {
  auto tokens = Lex("42 3.14 0xff");
  EXPECT_EQ(tokens[0].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens[2].text, "3.14");
  EXPECT_EQ(tokens[4].text, "0xff");
}

TEST(LexerTest, PunctuationIsSplitToSingleChars) {
  auto tokens = Lex("->*");
  EXPECT_EQ(tokens[0].kind, TokenKind::kPunct);
  EXPECT_EQ(tokens[0].text, "-");
  EXPECT_EQ(tokens[1].text, ">");
  EXPECT_EQ(tokens[2].text, "*");
}

TEST(LexerTest, TracksLineNumbers) {
  auto tokens = Lex("a\nb\n\nc");
  EXPECT_EQ(tokens[0].line, 1u);  // a
  EXPECT_EQ(tokens[2].line, 2u);  // b
  EXPECT_EQ(tokens[4].line, 4u);  // c
}

TEST(LexerTest, UnterminatedStringLexesToEnd) {
  auto tokens = Lex("\"never closed");
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[1].kind, TokenKind::kEnd);
}

TEST(LexerTest, EmptyInput) {
  auto tokens = Lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEnd);
}

}  // namespace
}  // namespace opp
}  // namespace ode
