#include <gtest/gtest.h>

#include "core/check.h"
#include "core/database.h"
#include "core/version_ptr.h"
#include "tests/testing/util.h"
#include "util/random.h"

namespace ode {
namespace {

// Full-stack tests on the REAL filesystem (everything else runs on MemEnv):
// verifies the POSIX Env path end-to-end, including durability across
// process-lifetime-style close/reopen and the default WallClock.

struct Record {
  static constexpr char kTypeName[] = "posix.Record";
  std::string data;
  void Serialize(BufferWriter& w) const { w.WriteString(Slice(data)); }
  static StatusOr<Record> Deserialize(BufferReader& r) {
    Record rec;
    ODE_RETURN_IF_ERROR(r.ReadString(&rec.data));
    return rec;
  }
};

class PosixStackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "ode_posix_stack_" +
            std::to_string(reinterpret_cast<uintptr_t>(this));
  }
  void TearDown() override {
    // Best-effort cleanup of the database files.
    for (const char* name : {"/data.odb", "/wal.log"}) {
      (void)Env::Posix()->DeleteFile(path_ + name);
    }
  }

  std::unique_ptr<Database> Open() {
    DatabaseOptions options;
    options.storage.path = path_;
    auto db = Database::Open(options);
    EXPECT_TRUE(db.ok()) << db.status();
    return db.ok() ? std::move(*db) : nullptr;
  }

  std::string path_;
};

TEST_F(PosixStackTest, FullLifecycleOnDisk) {
  ObjectId oid;
  {
    auto db = Open();
    ASSERT_NE(db, nullptr);
    auto ref = pnew(*db, Record{"on disk"});
    ASSERT_TRUE(ref.ok());
    oid = ref->oid();
    auto v2 = newversion(*ref);
    ASSERT_TRUE(v2.ok());
    ASSERT_OK(v2->Store(Record{"revised on disk"}));
  }  // Clean close: checkpoint + truncated WAL.
  {
    auto db = Open();
    ASSERT_NE(db, nullptr);
    Ref<Record> ref(db.get(), oid);
    auto loaded = ref.Load();
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded->data, "revised on disk");
    auto versions = db->VersionsOf(oid);
    ASSERT_TRUE(versions.ok());
    EXPECT_EQ(versions->size(), 2u);
    auto report = CheckDatabase(*db);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->ok());
    ASSERT_OK(db->PdeleteObject(oid));
  }
}

TEST_F(PosixStackTest, WallClockTimestampsAreSane) {
  auto db = Open();
  ASSERT_NE(db, nullptr);
  DatabaseOptions options;  // Peek: no injected clock -> persisted counter.
  auto ref = pnew(*db, Record{"a"});
  ASSERT_TRUE(ref.ok());
  auto v2 = newversion(*ref);
  ASSERT_TRUE(v2.ok());
  auto m1 = db->Meta(VersionId{ref->oid(), 1});
  auto m2 = db->Meta(v2->vid());
  ASSERT_TRUE(m1.ok() && m2.ok());
  EXPECT_LT(m1->created_ts, m2->created_ts);
  ASSERT_OK(db->PdeleteObject(ref->oid()));
}

TEST_F(PosixStackTest, ModerateWorkloadOnDisk) {
  auto db = Open();
  ASSERT_NE(db, nullptr);
  Random rng(17);
  std::vector<Ref<Record>> refs;
  for (int i = 0; i < 50; ++i) {
    auto ref = pnew(*db, Record{rng.NextBytes(rng.Range(100, 5000))});
    ASSERT_TRUE(ref.ok());
    refs.push_back(*ref);
    if (i % 3 == 0) {
      ASSERT_TRUE(newversion(*ref).ok());
    }
  }
  auto report = CheckDatabase(*db);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->errors.front();
  for (auto& ref : refs) {
    ASSERT_OK(pdelete(ref));
  }
}

}  // namespace
}  // namespace ode
