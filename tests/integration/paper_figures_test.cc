#include <gtest/gtest.h>

#include "core/database.h"
#include "policy/history.h"
#include "tests/testing/db_fixture.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;

/// Structural reproduction of the paper's running-example figures (§4):
/// each test replays the exact operation sequence from the text and asserts
/// the resulting version-graph state the corresponding figure depicts.
/// bench/fig_paper_graphs prints the same states.
class PaperFiguresTest : public DatabaseFixture {
 protected:
  void SetUp() override {
    DatabaseFixture::SetUp();
    SetUpRawType();
  }
};

// FIG-1: "p = pnew ..." — one object, one version v0, p denotes it.
TEST_F(PaperFiguresTest, Fig1_InitialObject) {
  VersionId v0 = MustPnew("initial state");
  auto graph = history::Collect(*db_, v0.oid);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->temporal_order.size(), 1u);
  EXPECT_EQ(graph->latest, v0);
  ASSERT_EQ(graph->forest.size(), 1u);
  EXPECT_EQ(graph->forest[0].vid, v0);
  EXPECT_TRUE(graph->forest[0].children.empty());
}

// FIG-2: newversion(p) — v1 derived from v0 (a *revision*); the generic
// pointer p now denotes v1.
TEST_F(PaperFiguresTest, Fig2_RevisionBecomesLatest) {
  VersionId v0 = MustPnew("v0 state");
  auto v1 = db_->NewVersionOf(v0.oid);
  ASSERT_TRUE(v1.ok());
  auto graph = history::Collect(*db_, v0.oid);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->latest, *v1) << "p (the object id) must denote v1 now";
  ASSERT_EQ(graph->forest.size(), 1u);
  ASSERT_EQ(graph->forest[0].children.size(), 1u);
  EXPECT_EQ(graph->forest[0].children[0].vid, *v1);
  // Reading through the object id reads v1's (inherited) state.
  EXPECT_EQ(MustReadLatest(v0.oid), "v0 state");
}

// FIG-3: a second newversion from v0 — v1 and v2 are *alternatives*, both
// derived from v0.
TEST_F(PaperFiguresTest, Fig3_AlternativesFromCommonBase) {
  VersionId v0 = MustPnew("base design");
  auto v1 = db_->NewVersionFrom(v0);
  auto v2 = db_->NewVersionFrom(v0);
  ASSERT_TRUE(v1.ok() && v2.ok());
  auto children = db_->Dnext(v0);
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(*children, (std::vector<VersionId>{*v1, *v2}));
  // v2, created last, is the latest (temporal), even though both derive
  // from v0.
  auto latest = db_->Latest(v0.oid);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, *v2);
  // The alternatives evolve independently.
  ASSERT_OK(db_->UpdateVersion(*v1, Slice("alternative A")));
  ASSERT_OK(db_->UpdateVersion(*v2, Slice("alternative B")));
  EXPECT_EQ(MustRead(v0), "base design");
  EXPECT_EQ(MustRead(*v1), "alternative A");
  EXPECT_EQ(MustRead(*v2), "alternative B");
}

// FIG-4: newversion(vp1) — v3 derived from v1.  "v3, v1, and v0 constitute
// a version history."
TEST_F(PaperFiguresTest, Fig4_VersionHistory) {
  VersionId v0 = MustPnew("v0");
  auto v1 = db_->NewVersionFrom(v0);
  auto v2 = db_->NewVersionFrom(v0);
  ASSERT_TRUE(v1.ok() && v2.ok());
  auto v3 = db_->NewVersionFrom(*v1);
  ASSERT_TRUE(v3.ok());
  auto path = history::PathToRoot(*db_, *v3);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, (std::vector<VersionId>{*v3, *v1, v0}));
  // Temporal chain covers all four in creation order.
  auto graph = history::Collect(*db_, v0.oid);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->temporal_order,
            (std::vector<VersionId>{v0, *v1, *v2, *v3}));
  // Leaves are the up-to-date alternatives: v2 and v3.
  auto leaves = history::Leaves(*db_, v0.oid);
  ASSERT_TRUE(leaves.ok());
  EXPECT_EQ(*leaves, (std::vector<VersionId>{*v2, *v3}));
}

// FIG-5 (§4.4): pdelete of v1 splices both relationships: v3 re-parents to
// v0; the temporal chain skips v1.
TEST_F(PaperFiguresTest, Fig5_DeleteSplices) {
  VersionId v0 = MustPnew("v0");
  auto v1 = db_->NewVersionFrom(v0);
  auto v2 = db_->NewVersionFrom(v0);
  ASSERT_TRUE(v1.ok() && v2.ok());
  auto v3 = db_->NewVersionFrom(*v1);
  ASSERT_TRUE(v3.ok());
  ASSERT_OK(db_->PdeleteVersion(*v1));

  auto parent = db_->Dprevious(*v3);
  ASSERT_TRUE(parent.ok());
  EXPECT_EQ(parent->value(), v0);
  auto children = db_->Dnext(v0);
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(*children, (std::vector<VersionId>{*v2, *v3}));
  auto tprev = db_->Tprevious(*v2);
  ASSERT_TRUE(tprev.ok());
  EXPECT_EQ(tprev->value(), v0);
  auto graph = history::Collect(*db_, v0.oid);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->temporal_order, (std::vector<VersionId>{v0, *v2, *v3}));
}

// The rendered graph for the FIG-4 state, as printed by the figure
// regenerator (keeps the ASCII rendering itself under test).
TEST_F(PaperFiguresTest, Fig4_RenderedForm) {
  VersionId v0 = MustPnew("v0");
  auto v1 = db_->NewVersionFrom(v0);
  ASSERT_TRUE(v1.ok());
  auto v2 = db_->NewVersionFrom(v0);
  ASSERT_TRUE(v2.ok());
  auto v3 = db_->NewVersionFrom(*v1);
  ASSERT_TRUE(v3.ok());
  auto rendered = history::RenderGraph(*db_, v0.oid);
  ASSERT_TRUE(rendered.ok());
  const std::string expected =
      "object " + std::to_string(v0.oid.value) +
      " (latest: v4)\n"
      "derived-from tree:\n"
      "  v1\n"
      "  +- v2\n"
      "  |  `- v4\n"
      "  `- v3\n"
      "temporal chain: v1 -> v2 -> v3 -> v4\n";
  EXPECT_EQ(*rendered, expected);
}

}  // namespace
}  // namespace ode
