#include <gtest/gtest.h>

#include <map>

#include "core/check.h"
#include "core/cursor.h"
#include "storage/fault_env.h"
#include "core/index.h"
#include "core/query.h"
#include "core/version_ptr.h"
#include "policy/configuration.h"
#include "policy/history.h"
#include "policy/labels.h"
#include "policy/notification.h"
#include "tests/testing/util.h"
#include "util/random.h"

namespace ode {
namespace {

// Soak test: every subsystem live at once — delta payloads, a secondary
// index, labels, a notifier, configurations — driven by a randomized
// workload with periodic crashes, ending in a full consistency check and a
// vacuum.  This is the "would a downstream user's app survive?" test.

struct Module {
  static constexpr char kTypeName[] = "soak.Module";
  std::string name;
  int64_t size = 0;
  void Serialize(BufferWriter& w) const {
    w.WriteString(Slice(name));
    w.WriteI64(size);
  }
  static StatusOr<Module> Deserialize(BufferReader& r) {
    Module m;
    ODE_RETURN_IF_ERROR(r.ReadString(&m.name));
    ODE_RETURN_IF_ERROR(r.ReadI64(&m.size));
    return m;
  }
};

class FullSystemTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FullSystemTest, SoakWithCrashes) {
  FaultInjectionEnv fault_env(nullptr);
  LogicalClock clock;
  DatabaseOptions options;
  options.storage.env = &fault_env;
  options.storage.path = "/soak";
  options.clock = &clock;
  options.payload_strategy = PayloadKind::kDelta;
  options.delta_keyframe_interval = 6;

  Random rng(GetParam());
  uint64_t notifications = 0;

  std::unique_ptr<Database> db;
  std::unique_ptr<SecondaryIndex<Module>> index;
  std::unique_ptr<VersionLabels> labels;
  std::unique_ptr<ChangeNotifier> notifier;

  auto open_all = [&] {
    auto db_or = Database::Open(options);
    ASSERT_TRUE(db_or.ok()) << db_or.status();
    db = std::move(*db_or);
    auto index_or = SecondaryIndex<Module>::Open(
        *db, "module-by-name",
        [](const Module& m) { return std::optional<std::string>(m.name); });
    ASSERT_TRUE(index_or.ok()) << index_or.status();
    index = std::move(*index_or);
    auto labels_or = VersionLabels::Open(*db);
    ASSERT_TRUE(labels_or.ok()) << labels_or.status();
    labels = std::move(*labels_or);
    notifier = std::make_unique<ChangeNotifier>(*db);
    auto type_id = db->TypeId<Module>();
    ASSERT_TRUE(type_id.ok());
    notifier->SubscribeType(*type_id, [&](const ChangeNotifier::Event&) {
      ++notifications;
    });
  };
  auto close_all = [&] {
    notifier.reset();
    labels.reset();
    index.reset();
    db.reset();
  };

  open_all();
  std::vector<ObjectId> live;
  int committed_ops = 0;

  for (int op = 0; op < 400; ++op) {
    const int action = static_cast<int>(rng.Uniform(100));
    if (live.empty() || action < 20) {
      auto ref = pnew(*db, Module{"mod" + std::to_string(rng.Uniform(50)),
                                  static_cast<int64_t>(rng.Uniform(1000))});
      ASSERT_TRUE(ref.ok());
      live.push_back(ref->oid());
      ++committed_ops;
    } else if (action < 45) {
      const ObjectId target = live[rng.Uniform(live.size())];
      auto vid = db->NewVersionOf(target);
      ASSERT_TRUE(vid.ok());
      if (rng.OneIn(3)) {
        ASSERT_TRUE(labels->Add(*vid, "reviewed").ok());
      }
      ++committed_ops;
    } else if (action < 65) {
      const ObjectId target = live[rng.Uniform(live.size())];
      ASSERT_TRUE(
          db->PutLatest(target,
                        Module{"mod" + std::to_string(rng.Uniform(50)),
                               static_cast<int64_t>(rng.Uniform(1000))})
              .ok());
      ++committed_ops;
    } else if (action < 75) {
      const size_t pick = rng.Uniform(live.size());
      ASSERT_TRUE(db->PdeleteObject(live[pick]).ok());
      live.erase(live.begin() + pick);
      ++committed_ops;
    } else if (action < 90) {
      // Read paths: index lookup + history walk.
      const ObjectId target = live[rng.Uniform(live.size())];
      auto latest = db->Latest(target);
      ASSERT_TRUE(latest.ok());
      auto path = history::PathToRoot(*db, *latest);
      ASSERT_TRUE(path.ok());
      auto value = db->GetLatest<Module>(target);
      ASSERT_TRUE(value.ok());
      auto hits = index->Lookup(Slice(value->name));
      ASSERT_TRUE(hits.ok());
      bool found = false;
      for (const Ref<Module>& hit : *hits) {
        if (hit.oid() == target) found = true;
      }
      EXPECT_TRUE(found) << "index lost " << target.value;
    } else if (action < 97) {
      // Group a few writes in one transaction; abort half the time.
      ASSERT_TRUE(db->Begin().ok());
      const ObjectId target = live[rng.Uniform(live.size())];
      ASSERT_TRUE(db->NewVersionOf(target).ok());
      ASSERT_TRUE(db->PutLatest(target, Module{"txn-mod", 1}).ok());
      if (rng.OneIn(2)) {
        ASSERT_TRUE(db->Commit().ok());
        committed_ops += 2;
      } else {
        ASSERT_TRUE(db->Abort().ok());
        // Policies reload from persistent state after a rollback.
        labels.reset();
        auto labels_or = VersionLabels::Open(*db);
        ASSERT_TRUE(labels_or.ok());
        labels = std::move(*labels_or);
      }
    } else {
      // Crash and recover everything.
      fault_env.CrashAndLoseUnsynced();
      close_all();
      open_all();
      // Rebuild the live list from the database itself.
      live.clear();
      auto type_id = db->TypeId<Module>();
      ASSERT_TRUE(type_id.ok());
      ClusterCursor cluster(*db, *type_id);
      for (; cluster.Valid(); cluster.Next()) live.push_back(cluster.oid());
      ASSERT_TRUE(cluster.status().ok());
    }
  }

  // Final verification: structural consistency, index health, vacuum.
  EXPECT_TRUE(index->health().ok()) << index->health();
  auto report = CheckDatabase(*db);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->errors.front();
  ASSERT_TRUE(db->Vacuum().ok());
  report = CheckDatabase(*db);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->errors.front();
  EXPECT_GT(notifications, 0u);
  EXPECT_GT(committed_ops, 100);
  close_all();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FullSystemTest,
                         ::testing::Values(42, 4242, 424242));

}  // namespace
}  // namespace ode
