// End-to-end tests of the odedump binary: argument validation (unknown
// commands and bad paths must exit 2 with usage, and must never create a
// database at a typo'd path) and the `verify` subcommand against databases
// built through the public API.

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>

#include "core/database.h"
#include "storage/env.h"
#include "tests/testing/util.h"

namespace ode {
namespace {

struct ToolResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved.
};

ToolResult RunOdedump(const std::string& args) {
  ToolResult result;
  const std::string command = std::string(ODEDUMP_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buf[512];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    result.output.append(buf, n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string FreshDbPath(const char* tag) {
  return ::testing::TempDir() + "odedump_" + tag + "_" +
         std::to_string(::getpid());
}

TEST(OdedumpToolTest, NoArgumentsPrintsUsageAndExits2) {
  ToolResult r = RunOdedump("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage: odedump"), std::string::npos) << r.output;
}

TEST(OdedumpToolTest, UnknownCommandIsRejectedBeforeOpening) {
  const std::string path = FreshDbPath("unknown_cmd");
  ToolResult r = RunOdedump(path + " frobnicate");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown command"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("usage: odedump"), std::string::npos) << r.output;
  // Rejected before Database::Open: no directory materialized at the path.
  struct stat st;
  EXPECT_NE(::stat(path.c_str(), &st), 0)
      << "odedump created " << path << " while rejecting the command";
}

TEST(OdedumpToolTest, MissingDatabasePathExits2WithoutCreatingIt) {
  const std::string path = FreshDbPath("missing");
  ToolResult r = RunOdedump(path + " summary");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage: odedump"), std::string::npos) << r.output;
  struct stat st;
  EXPECT_NE(::stat(path.c_str(), &st), 0)
      << "odedump created a database at a nonexistent path";
}

TEST(OdedumpToolTest, StrayFlagIsRejected) {
  ToolResult r = RunOdedump("/nowhere summary --out /tmp/x");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage: odedump"), std::string::npos) << r.output;
}

TEST(OdedumpToolTest, VerifyCleanDatabase) {
  const std::string path = FreshDbPath("verify_ok");
  {
    DatabaseOptions options;
    options.storage.path = path;
    ASSERT_OK_AND_ASSIGN(auto db, Database::Open(options));
    ASSERT_OK_AND_ASSIGN(uint32_t tid, db->RegisterType("doc"));
    ASSERT_OK_AND_ASSIGN(VersionId v1, db->PnewRaw(tid, Slice("first")));
    ASSERT_OK_AND_ASSIGN(VersionId v2, db->NewVersionOf(v1.oid));
    ASSERT_OK(db->UpdateVersion(v2, Slice("second")));
    ASSERT_OK(db->PnewRaw(tid, Slice("other")).status());
  }

  ToolResult r = RunOdedump(path + " verify");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("verify OK"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("recovery:"), std::string::npos) << r.output;

  // The other subcommands accept the same database.
  EXPECT_EQ(RunOdedump(path + " summary").exit_code, 0);
  EXPECT_EQ(RunOdedump(path + " check").exit_code, 0);
}

}  // namespace
}  // namespace ode
