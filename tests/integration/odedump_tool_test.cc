// End-to-end tests of the odedump binary: argument validation (unknown
// commands and bad paths must exit 2 with usage, and must never create a
// database at a typo'd path) and the `verify` subcommand against databases
// built through the public API.

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>

#include "core/database.h"
#include "core/diagnostics.h"
#include "storage/env.h"
#include "tests/testing/json_util.h"
#include "tests/testing/util.h"

namespace ode {
namespace {

struct ToolResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved.
};

ToolResult RunOdedump(const std::string& args) {
  ToolResult result;
  const std::string command = std::string(ODEDUMP_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buf[512];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    result.output.append(buf, n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string FreshDbPath(const char* tag) {
  return ::testing::TempDir() + "odedump_" + tag + "_" +
         std::to_string(::getpid());
}

// Builds a small real database at `path` through the public API.
void BuildDatabase(const std::string& path) {
  DatabaseOptions options;
  options.storage.path = path;
  ASSERT_OK_AND_ASSIGN(auto db, Database::Open(options));
  ASSERT_OK_AND_ASSIGN(uint32_t tid, db->RegisterType("doc"));
  ASSERT_OK_AND_ASSIGN(VersionId v1, db->PnewRaw(tid, Slice("first")));
  ASSERT_OK_AND_ASSIGN(VersionId v2, db->NewVersionOf(v1.oid));
  ASSERT_OK(db->UpdateVersion(v2, Slice("second")));
}

void WriteFileOrDie(const std::string& path, const std::string& contents) {
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(contents.data(), 1, contents.size(), f),
            contents.size());
  ASSERT_EQ(std::fclose(f), 0);
}

TEST(OdedumpToolTest, NoArgumentsPrintsUsageAndExits2) {
  ToolResult r = RunOdedump("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage: odedump"), std::string::npos) << r.output;
}

TEST(OdedumpToolTest, UnknownCommandIsRejectedBeforeOpening) {
  const std::string path = FreshDbPath("unknown_cmd");
  ToolResult r = RunOdedump(path + " frobnicate");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown command"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("usage: odedump"), std::string::npos) << r.output;
  // Rejected before Database::Open: no directory materialized at the path.
  struct stat st;
  EXPECT_NE(::stat(path.c_str(), &st), 0)
      << "odedump created " << path << " while rejecting the command";
}

TEST(OdedumpToolTest, MissingDatabasePathExits2WithoutCreatingIt) {
  const std::string path = FreshDbPath("missing");
  ToolResult r = RunOdedump(path + " summary");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage: odedump"), std::string::npos) << r.output;
  struct stat st;
  EXPECT_NE(::stat(path.c_str(), &st), 0)
      << "odedump created a database at a nonexistent path";
}

TEST(OdedumpToolTest, StrayFlagIsRejected) {
  ToolResult r = RunOdedump("/nowhere summary --out /tmp/x");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage: odedump"), std::string::npos) << r.output;
}

TEST(OdedumpToolTest, VerifyCleanDatabase) {
  const std::string path = FreshDbPath("verify_ok");
  {
    DatabaseOptions options;
    options.storage.path = path;
    ASSERT_OK_AND_ASSIGN(auto db, Database::Open(options));
    ASSERT_OK_AND_ASSIGN(uint32_t tid, db->RegisterType("doc"));
    ASSERT_OK_AND_ASSIGN(VersionId v1, db->PnewRaw(tid, Slice("first")));
    ASSERT_OK_AND_ASSIGN(VersionId v2, db->NewVersionOf(v1.oid));
    ASSERT_OK(db->UpdateVersion(v2, Slice("second")));
    ASSERT_OK(db->PnewRaw(tid, Slice("other")).status());
  }

  ToolResult r = RunOdedump(path + " verify");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("verify OK"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("recovery:"), std::string::npos) << r.output;

  // The other subcommands accept the same database.
  EXPECT_EQ(RunOdedump(path + " summary").exit_code, 0);
  EXPECT_EQ(RunOdedump(path + " check").exit_code, 0);
}

TEST(OdedumpToolTest, StatsJsonFormatIsWellFormed) {
  const std::string path = FreshDbPath("stats_json");
  BuildDatabase(path);

  ToolResult r = RunOdedump(path + " stats --format=json");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  std::string error;
  EXPECT_TRUE(testing::IsWellFormedJson(r.output, &error))
      << error << "\n" << r.output;
  EXPECT_NE(r.output.find("\"counters\""), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"gauges\""), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"histograms\""), std::string::npos) << r.output;
  // The read pass touched real instruments, not an empty registry.
  EXPECT_NE(r.output.find("\"txn.commits\""), std::string::npos) << r.output;
}

TEST(OdedumpToolTest, StatsPromFormatEmitsTypedSamples) {
  const std::string path = FreshDbPath("stats_prom");
  BuildDatabase(path);

  ToolResult r = RunOdedump(path + " stats --format=prom");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("# TYPE ode_"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("# TYPE ode_txn_commits counter"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\node_txn_commits "), std::string::npos)
      << r.output;
  // Prometheus exposition ends every line (including the last) with \n.
  ASSERT_FALSE(r.output.empty());
  EXPECT_EQ(r.output.back(), '\n');
}

TEST(OdedumpToolTest, StatsUnknownFormatExits2) {
  const std::string path = FreshDbPath("stats_badfmt");
  BuildDatabase(path);

  ToolResult r = RunOdedump(path + " stats --format=xml");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown format 'xml'"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("usage: odedump"), std::string::npos) << r.output;
}

TEST(OdedumpToolTest, DiagOnDatabaseWithoutDumpsExitsZero) {
  const std::string path = FreshDbPath("diag_empty");
  BuildDatabase(path);

  ToolResult r = RunOdedump(path + " diag");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("no diagnostics dumps"), std::string::npos)
      << r.output;
}

TEST(OdedumpToolTest, DiagListsAndPrintsDumpsWithoutOpeningTheDatabase) {
  // diag must work post-mortem: a bare directory with dumps but no data.odb.
  const std::string path = FreshDbPath("diag_postmortem");
  ASSERT_EQ(::mkdir(path.c_str(), 0755), 0);
  WriteFileOrDie(path + "/" + DiagnosticsFileName(1),
                 "{\"schema\":1,\"seq\":1,\"trigger\":\"manual\"}");
  WriteFileOrDie(path + "/" + DiagnosticsFileName(2),
                 "{\"schema\":1,\"seq\":2,\"trigger\":\"crash_matrix\"}");

  ToolResult r = RunOdedump(path + " diag");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("--- dumps ---"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find(DiagnosticsFileName(1)), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find(DiagnosticsFileName(2)), std::string::npos)
      << r.output;
  // Without --file the newest dump is pretty-printed.
  EXPECT_NE(r.output.find("\"trigger\": \"crash_matrix\""), std::string::npos)
      << r.output;

  ToolResult chosen =
      RunOdedump(path + " diag --file " + DiagnosticsFileName(1));
  EXPECT_EQ(chosen.exit_code, 0) << chosen.output;
  EXPECT_NE(chosen.output.find("\"trigger\": \"manual\""), std::string::npos)
      << chosen.output;
}

TEST(OdedumpToolTest, HealthOnHealthyDatabaseExitsZero) {
  const std::string path = FreshDbPath("health_ok");
  BuildDatabase(path);

  ToolResult r = RunOdedump(path + " health");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("state:           ok"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("wal backlog:"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("reason:"), std::string::npos) << r.output;
}

TEST(OdedumpToolTest, HealthFlagsPriorPoisonDumpAsDegraded) {
  const std::string path = FreshDbPath("health_poisoned");
  BuildDatabase(path);
  // A flight-recorder dump from a poisoned previous run: the engine itself
  // reopens clean (recovery truncated the bad tail), but health must still
  // surface the incident.
  WriteFileOrDie(path + "/" + DiagnosticsFileName(1),
                 "{\"schema\":1,\"seq\":1,\"trigger\":\"poison\"}");

  ToolResult r = RunOdedump(path + " health");
  EXPECT_EQ(r.exit_code, 1) << r.output;  // HealthState::kDegraded.
  EXPECT_NE(r.output.find("state:           degraded"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("previous run poisoned (see " +
                          DiagnosticsFileName(1) + ")"),
            std::string::npos)
      << r.output;
}

TEST(OdedumpToolTest, HealthOnUnopenableDatabaseExits2) {
  const std::string path = FreshDbPath("health_unopenable");
  ASSERT_EQ(::mkdir(path.c_str(), 0755), 0);
  // data.odb exists (so the path check passes) but can't be opened as a
  // file.  A directory is the reliably-unopenable shape: mere garbage BYTES
  // would be treated as an invalid superblock and reinitialized.
  ASSERT_EQ(::mkdir((path + "/data.odb").c_str(), 0755), 0);

  ToolResult r = RunOdedump(path + " health");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("state:           unopenable"), std::string::npos)
      << r.output;
}

}  // namespace
}  // namespace ode
