// Golden corrupt-database fixtures: build a real database, damage it the
// way disks actually fail (truncation, bit flips, garbage appended to the
// WAL), and pin down how the trust boundary behaves — Database::Open gives
// a typed error or a usable handle (never a crash), and `odedump verify` /
// `odedump check` exit with their documented codes.
//
// The corruption model these fixtures pin (DESIGN.md §4j):
//   - WAL damage is RECOVERABLE: the CRC gate treats any bad record as a
//     torn tail, truncates, and opens clean.
//   - A superblock that fails the magic check is indistinguishable from a
//     never-initialized file and is RE-INITIALIZED (empty database), by
//     design — page 0 carries the magic, not user data.
//   - Damage to interior pages is DETECTED at read time: decoders return
//     Corruption, and check/verify exit 1.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/database.h"
#include "storage/page.h"
#include "tests/testing/util.h"
#include "util/slice.h"

namespace ode {
namespace {

struct ToolResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved.
};

ToolResult RunOdedump(const std::string& args) {
  ToolResult result;
  const std::string command = std::string(ODEDUMP_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buf[512];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    result.output.append(buf, n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string FreshDbPath(const char* tag) {
  return ::testing::TempDir() + "corrupt_db_" + tag + "_" +
         std::to_string(::getpid());
}

// Builds a database with enough content that the catalog B+tree has real
// leaf pages to corrupt, then closes it cleanly.
void BuildDatabase(const std::string& path) {
  DatabaseOptions options;
  options.storage.path = path;
  ASSERT_OK_AND_ASSIGN(auto db, Database::Open(options));
  ASSERT_OK_AND_ASSIGN(uint32_t tid, db->RegisterType("doc"));
  for (int i = 0; i < 32; ++i) {
    ASSERT_OK_AND_ASSIGN(VersionId v,
                         db->PnewRaw(tid, Slice(std::string(64, 'a' + i % 26))));
    ASSERT_OK(db->NewVersionOf(v.oid).status());
  }
}

std::string ReadFileOrDie(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

void WriteFileOrDie(const std::string& path, const std::string& contents) {
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(contents.data(), 1, contents.size(), f),
            contents.size());
  ASSERT_EQ(std::fclose(f), 0);
}

TEST(CorruptDbTest, TruncatedSuperblockReinitializesNotCrashes) {
  const std::string path = FreshDbPath("trunc_super");
  BuildDatabase(path);

  // Tear the file mid-superblock: shorter than one page.
  std::string image = ReadFileOrDie(path + "/data.odb");
  ASSERT_GT(image.size(), kPageSize);
  WriteFileOrDie(path + "/data.odb", image.substr(0, 100));

  // The magic is gone, so the engine cannot tell this file from a fresh
  // one: it re-initializes (page 0 holds no user data).  The contract
  // under test is the exit discipline — a defined code, never a crash.
  ToolResult verify = RunOdedump(path + " verify");
  EXPECT_LE(verify.exit_code, 2) << verify.output;
  EXPECT_GE(verify.exit_code, 0) << verify.output;

  DatabaseOptions options;
  options.storage.path = path;
  auto db = Database::Open(options);
  if (!db.ok()) {
    EXPECT_TRUE(db.status().IsCorruption() || db.status().IsIOError())
        << db.status().ToString();
  }
}

TEST(CorruptDbTest, BitFlippedPagesGiveCorruptionNotCrash) {
  const std::string path = FreshDbPath("bitflip");
  BuildDatabase(path);

  // Smash the entry count of every B+tree page to a value the directory
  // cannot physically hold — the canonical "trusting this reads past the
  // page" field.
  std::string image = ReadFileOrDie(path + "/data.odb");
  ASSERT_GT(image.size(), 2 * kPageSize);
  int flipped = 0;
  for (size_t off = kPageSize; off + kPageSize <= image.size();
       off += kPageSize) {
    const uint8_t type = static_cast<uint8_t>(image[off]);
    if (type == static_cast<uint8_t>(PageType::kBTreeLeaf) ||
        type == static_cast<uint8_t>(PageType::kBTreeInternal)) {
      image[off + 8] = static_cast<char>(0xff);
      image[off + 9] = static_cast<char>(0xff);
      ++flipped;
    }
  }
  ASSERT_GT(flipped, 0) << "no btree pages found to corrupt";
  WriteFileOrDie(path + "/data.odb", image);

  // Open must surface Corruption (typed), or the offline checkers must:
  // either way exit 1, and the word reaches the operator.
  ToolResult check = RunOdedump(path + " check");
  EXPECT_EQ(check.exit_code, 1) << check.output;
  ToolResult verify = RunOdedump(path + " verify");
  EXPECT_EQ(verify.exit_code, 1) << verify.output;
  EXPECT_NE(verify.output.find("orruption"), std::string::npos)
      << verify.output;

  DatabaseOptions options;
  options.storage.path = path;
  auto db = Database::Open(options);
  if (!db.ok()) {
    EXPECT_TRUE(db.status().IsCorruption()) << db.status().ToString();
  } else {
    // Opened lazily: the damage must still be typed at read time.
    auto latest = (*db)->VersionsOf(ObjectId{1});
    if (!latest.ok()) {
      EXPECT_TRUE(latest.status().IsCorruption())
          << latest.status().ToString();
    }
  }
}

TEST(CorruptDbTest, GarbageWalTailIsTruncatedOnRecovery) {
  const std::string path = FreshDbPath("wal_tail");
  BuildDatabase(path);

  // Append garbage to the log, as a torn write would.  The CRC gate must
  // classify it as a tail, truncate, and open clean — losing nothing that
  // was committed.
  {
    FILE* f = std::fopen((path + "/wal.log").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const std::string garbage = "\x13\x37garbage-torn-append\xff\xff\xff\xff";
    ASSERT_EQ(std::fwrite(garbage.data(), 1, garbage.size(), f),
              garbage.size());
    ASSERT_EQ(std::fclose(f), 0);
  }

  ToolResult verify = RunOdedump(path + " verify");
  EXPECT_EQ(verify.exit_code, 0) << verify.output;
  EXPECT_NE(verify.output.find("verify OK"), std::string::npos)
      << verify.output;
  EXPECT_NE(verify.output.find("recovery:"), std::string::npos)
      << verify.output;

  // And the data is all still there.
  DatabaseOptions options;
  options.storage.path = path;
  ASSERT_OK_AND_ASSIGN(auto db, Database::Open(options));
  ASSERT_OK_AND_ASSIGN(auto vnums, db->VersionsOf(ObjectId{1}));
  EXPECT_EQ(vnums.size(), 2u);
}

}  // namespace
}  // namespace ode
