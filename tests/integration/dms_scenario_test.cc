#include <gtest/gtest.h>

#include "core/database.h"
#include "core/version_ptr.h"
#include "policy/configuration.h"
#include "policy/history.h"
#include "tests/testing/db_fixture.h"

namespace ode {
namespace {

using testing_internal::DatabaseFixture;

// §5 of the paper: the DMS CAD design example.  An ALU chip has three
// representations — schematic, fault, and timing — each a *configuration*
// over shared data objects:
//   schematic representation = { schematic data }
//   fault representation     = { schematic data, test vectors }
//   timing representation    = { schematic data, test vectors,
//                                timing commands }
// The test builds the initial design state, evolves it by adding versions,
// and checks that configurations see exactly what the paper prescribes.

struct DesignData {
  static constexpr char kTypeName[] = "dms.DesignData";
  std::string kind;
  std::string content;
  void Serialize(BufferWriter& w) const {
    w.WriteString(Slice(kind));
    w.WriteString(Slice(content));
  }
  static StatusOr<DesignData> Deserialize(BufferReader& r) {
    DesignData d;
    ODE_RETURN_IF_ERROR(r.ReadString(&d.kind));
    ODE_RETURN_IF_ERROR(r.ReadString(&d.content));
    return d;
  }
};

class DmsScenarioTest : public DatabaseFixture {};

TEST_F(DmsScenarioTest, AluDesignEvolution) {
  // --- Initial design state ------------------------------------------------
  auto schematic = pnew(*db_, DesignData{"schematic", "alu schematic rev A"});
  auto vectors = pnew(*db_, DesignData{"vectors", "test vectors rev A"});
  auto timing_cmds = pnew(*db_, DesignData{"timing", "timing commands rev A"});
  ASSERT_TRUE(schematic.ok() && vectors.ok() && timing_cmds.ok());

  // Three representations as configurations.  The working (in-progress)
  // representations bind dynamically — designers always see the newest data;
  // a frozen release will pin them statically.
  auto schematic_rep = Configuration::Create(*db_, "alu.schematic");
  auto fault_rep = Configuration::Create(*db_, "alu.fault");
  auto timing_rep = Configuration::Create(*db_, "alu.timing");
  ASSERT_TRUE(schematic_rep.ok() && fault_rep.ok() && timing_rep.ok());

  ASSERT_OK(schematic_rep->BindDynamic("schematic", schematic->oid()));
  ASSERT_OK(fault_rep->BindDynamic("schematic", schematic->oid()));
  ASSERT_OK(fault_rep->BindDynamic("vectors", vectors->oid()));
  ASSERT_OK(timing_rep->BindDynamic("schematic", schematic->oid()));
  ASSERT_OK(timing_rep->BindDynamic("vectors", vectors->oid()));
  ASSERT_OK(timing_rep->BindDynamic("timing", timing_cmds->oid()));

  // The shared component resolves identically across representations —
  // "the schematic data (same as the one in the schematic representation)".
  {
    auto a = schematic_rep->Resolve("schematic");
    auto b = fault_rep->Resolve("schematic");
    auto c = timing_rep->Resolve("schematic");
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    EXPECT_EQ(*a, *b);
    EXPECT_EQ(*b, *c);
  }

  // --- Release 1.0: freeze the timing representation ------------------------
  ASSERT_OK(timing_rep->Freeze());
  auto frozen_schematic = timing_rep->Resolve("schematic");
  ASSERT_TRUE(frozen_schematic.ok());

  // --- Design evolution: derive a revision and an alternative ---------------
  auto sch_v1 = schematic->Pin();
  ASSERT_TRUE(sch_v1.ok());
  auto sch_v2 = newversion(*schematic);  // Revision of the latest.
  ASSERT_TRUE(sch_v2.ok());
  ASSERT_OK(sch_v2->Store(DesignData{"schematic", "alu schematic rev B"}));
  auto sch_v3 = newversion(*sch_v1);  // Alternative from rev A.
  ASSERT_TRUE(sch_v3.ok());
  ASSERT_OK(
      sch_v3->Store(DesignData{"schematic", "alu schematic rev A-prime"}));

  // Dynamic representations follow the newest version (v3, newest created).
  {
    auto now = fault_rep->Resolve("schematic");
    ASSERT_TRUE(now.ok());
    EXPECT_EQ(*now, sch_v3->vid());
  }
  // The frozen release still sees rev A.
  {
    auto frozen = timing_rep->Resolve("schematic");
    ASSERT_TRUE(frozen.ok());
    EXPECT_EQ(*frozen, *frozen_schematic);
    auto data = db_->Get<DesignData>(*frozen);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(data->content, "alu schematic rev A");
  }

  // --- The derivation structure matches the design narrative ----------------
  auto leaves = history::Leaves(*db_, schematic->oid());
  ASSERT_TRUE(leaves.ok());
  EXPECT_EQ(leaves->size(), 2u);  // rev B and rev A-prime: two alternatives.
  auto ancestor =
      history::CommonAncestor(*db_, sch_v2->vid(), sch_v3->vid());
  ASSERT_TRUE(ancestor.ok());
  EXPECT_EQ(ancestor->value(), sch_v1->vid());

  // --- Representations persist ----------------------------------------------
  const ObjectId timing_oid = timing_rep->oid();
  ReopenDb();
  auto reloaded = Configuration::Load(*db_, timing_oid);
  ASSERT_TRUE(reloaded.ok());
  auto frozen = reloaded->Resolve("schematic");
  ASSERT_TRUE(frozen.ok());
  auto data = db_->Get<DesignData>(*frozen);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->content, "alu schematic rev A");
}

TEST_F(DmsScenarioTest, ConfigurationOfConfigurations) {
  // Representations can themselves be composed: the "ALU chip" binds its
  // three representations, demonstrating complex objects over versions.
  auto schematic = pnew(*db_, DesignData{"schematic", "s"});
  ASSERT_TRUE(schematic.ok());
  auto rep = Configuration::Create(*db_, "alu.schematic");
  ASSERT_TRUE(rep.ok());
  ASSERT_OK(rep->BindDynamic("schematic", schematic->oid()));

  auto chip = Configuration::Create(*db_, "alu.chip");
  ASSERT_TRUE(chip.ok());
  ASSERT_OK(chip->BindDynamic("schematic-rep", rep->oid()));

  auto resolved = chip->Resolve("schematic-rep");
  ASSERT_TRUE(resolved.ok());
  auto inner = Configuration::Load(*db_, resolved->oid);
  ASSERT_TRUE(inner.ok());
  auto leaf = inner->Resolve("schematic");
  ASSERT_TRUE(leaf.ok());
  EXPECT_EQ(leaf->oid, schematic->oid());
}

}  // namespace
}  // namespace ode
