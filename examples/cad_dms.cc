// The paper's §5 CAD example: modeling DMS design evolution.
//
// An ALU chip has three representations — schematic, fault, timing — each a
// configuration over shared data objects:
//
//   schematic representation = { schematic data }
//   fault representation     = { schematic data, test vectors }
//   timing representation    = { schematic data, test vectors,
//                                timing commands }
//
// The program builds the initial design state, freezes a release, then
// evolves the design with revisions and alternatives, printing what each
// representation sees at every step.
//
// Build & run:  ./build/examples/cad_dms

#include <cstdio>
#include <string>

#include "core/database.h"
#include "core/version_ptr.h"
#include "policy/configuration.h"
#include "policy/history.h"

namespace {

struct DesignData {
  static constexpr char kTypeName[] = "dms.DesignData";
  std::string kind;
  std::string content;
  void Serialize(ode::BufferWriter& w) const {
    w.WriteString(ode::Slice(kind));
    w.WriteString(ode::Slice(content));
  }
  static ode::StatusOr<DesignData> Deserialize(ode::BufferReader& r) {
    DesignData d;
    ODE_RETURN_IF_ERROR(r.ReadString(&d.kind));
    ODE_RETURN_IF_ERROR(r.ReadString(&d.content));
    return d;
  }
};

int Fail(const ode::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

void ShowRepresentation(ode::Database& db, const ode::Configuration& rep) {
  std::printf("  %-15s:", rep.name().c_str());
  auto all = rep.ResolveAll();
  if (!all.ok()) {
    std::printf(" <%s>\n", all.status().ToString().c_str());
    return;
  }
  for (const auto& [component, vid] : *all) {
    auto data = db.Get<DesignData>(vid);
    std::printf("  %s=v%u(\"%s\")", component.c_str(), vid.vnum,
                data.ok() ? data->content.c_str() : "?");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  ode::DatabaseOptions options;
  options.storage.path = "/tmp/ode_cad_dms";
  auto db_or = ode::Database::Open(options);
  if (!db_or.ok()) return Fail(db_or.status());
  ode::Database& db = **db_or;

  std::printf("== initial design state ==\n");
  auto schematic = ode::pnew(db, DesignData{"schematic", "alu rev A"});
  auto vectors = ode::pnew(db, DesignData{"vectors", "vectors rev A"});
  auto timing_cmds = ode::pnew(db, DesignData{"timing", "timing rev A"});
  if (!schematic.ok()) return Fail(schematic.status());
  if (!vectors.ok()) return Fail(vectors.status());
  if (!timing_cmds.ok()) return Fail(timing_cmds.status());

  auto schematic_rep = ode::Configuration::Create(db, "alu.schematic");
  auto fault_rep = ode::Configuration::Create(db, "alu.fault");
  auto timing_rep = ode::Configuration::Create(db, "alu.timing");
  if (!schematic_rep.ok()) return Fail(schematic_rep.status());
  if (!fault_rep.ok()) return Fail(fault_rep.status());
  if (!timing_rep.ok()) return Fail(timing_rep.status());

  // Working representations bind dynamically: designers see the newest data.
  ode::Status s = schematic_rep->BindDynamic("schematic", schematic->oid());
  if (s.ok()) s = fault_rep->BindDynamic("schematic", schematic->oid());
  if (s.ok()) s = fault_rep->BindDynamic("vectors", vectors->oid());
  if (s.ok()) s = timing_rep->BindDynamic("schematic", schematic->oid());
  if (s.ok()) s = timing_rep->BindDynamic("vectors", vectors->oid());
  if (s.ok()) s = timing_rep->BindDynamic("timing", timing_cmds->oid());
  if (!s.ok()) return Fail(s);

  ShowRepresentation(db, *schematic_rep);
  ShowRepresentation(db, *fault_rep);
  ShowRepresentation(db, *timing_rep);

  std::printf("\n== freeze timing representation as release 1.0 ==\n");
  if (ode::Status fs = timing_rep->Freeze(); !fs.ok()) return Fail(fs);
  ShowRepresentation(db, *timing_rep);

  std::printf("\n== design evolution ==\n");
  // Revision: rev B derived from the latest schematic.
  auto rev_a = schematic->Pin();
  if (!rev_a.ok()) return Fail(rev_a.status());
  auto rev_b = ode::newversion(*schematic);
  if (!rev_b.ok()) return Fail(rev_b.status());
  if (ode::Status ws = rev_b->Store(DesignData{"schematic", "alu rev B"});
      !ws.ok()) {
    return Fail(ws);
  }
  std::printf("revision: v%u -> v%u (alu rev B)\n", rev_a->vid().vnum,
              rev_b->vid().vnum);

  // Alternative: a parallel design also derived from rev A.
  auto alt = ode::newversion(*rev_a);
  if (!alt.ok()) return Fail(alt.status());
  if (ode::Status ws = alt->Store(DesignData{"schematic", "alu rev A'"});
      !ws.ok()) {
    return Fail(ws);
  }
  std::printf("alternative: v%u -> v%u (alu rev A')\n", rev_a->vid().vnum,
              alt->vid().vnum);

  auto graph = ode::history::RenderGraph(db, schematic->oid());
  if (!graph.ok()) return Fail(graph.status());
  std::printf("\nschematic version graph:\n%s\n", graph->c_str());

  std::printf("== what each representation now sees ==\n");
  ShowRepresentation(db, *schematic_rep);  // Dynamic: newest (alt).
  ShowRepresentation(db, *fault_rep);      // Dynamic: newest (alt).
  ShowRepresentation(db, *timing_rep);     // Frozen: still rev A.

  // Cleanup so reruns start from scratch.
  for (ode::ObjectId oid :
       {schematic->oid(), vectors->oid(), timing_cmds->oid(),
        schematic_rep->oid(), fault_rep->oid(), timing_rep->oid()}) {
    if (ode::Status ds = db.PdeleteObject(oid); !ds.ok()) return Fail(ds);
  }
  std::printf("\ndone.\n");
  return 0;
}
