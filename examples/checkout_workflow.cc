// ORION-style checkout/checkin built purely from Ode primitives (§7):
// transient (private), working (project), and released (public) versions,
// moved by checkout, checkin, and promotion — all implemented as a policy
// over newversion + a persistent status map (src/policy/checkout.h).
//
// Two designers work on alternatives of the same released design in
// parallel; one is promoted, one is discarded.
//
// Build & run:  ./build/examples/checkout_workflow

#include <cstdio>
#include <string>

#include "core/database.h"
#include "core/version_ptr.h"
#include "policy/checkout.h"
#include "policy/history.h"

namespace {

struct Design {
  static constexpr char kTypeName[] = "Design";
  std::string description;
  void Serialize(ode::BufferWriter& w) const {
    w.WriteString(ode::Slice(description));
  }
  static ode::StatusOr<Design> Deserialize(ode::BufferReader& r) {
    Design d;
    ODE_RETURN_IF_ERROR(r.ReadString(&d.description));
    return d;
  }
};

int Fail(const ode::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

const char* StateName(ode::CheckoutManager::VersionState state) {
  switch (state) {
    case ode::CheckoutManager::VersionState::kTransient:
      return "transient";
    case ode::CheckoutManager::VersionState::kWorking:
      return "working";
    case ode::CheckoutManager::VersionState::kReleased:
      return "released";
  }
  return "?";
}

void Show(ode::CheckoutManager& manager, ode::VersionId vid,
          const char* label) {
  auto state = manager.StateOf(vid);
  std::printf("  %-18s v%u  [%s]\n", label, vid.vnum,
              state.ok() ? StateName(*state) : "gone");
}

}  // namespace

int main() {
  ode::DatabaseOptions options;
  options.storage.path = "/tmp/ode_checkout";
  auto db_or = ode::Database::Open(options);
  if (!db_or.ok()) return Fail(db_or.status());
  ode::Database& db = **db_or;

  auto manager_or = ode::CheckoutManager::Open(db);
  if (!manager_or.ok()) return Fail(manager_or.status());
  ode::CheckoutManager& manager = *manager_or;

  // The public (released) design.
  auto design = db.Pnew(Design{"adder: ripple carry"});
  if (!design.ok()) return Fail(design.status());
  std::printf("== released base design: v%u ==\n", design->vnum);

  // Alice and Bob each check out a private copy.
  auto alice_draft = manager.Checkout(*design, "alice");
  auto bob_draft = manager.Checkout(*design, "bob");
  if (!alice_draft.ok()) return Fail(alice_draft.status());
  if (!bob_draft.ok()) return Fail(bob_draft.status());
  Show(manager, *alice_draft, "alice's checkout");
  Show(manager, *bob_draft, "bob's checkout");

  // They work independently (alternatives derived from the same base).
  ode::Status s = manager.Write(*alice_draft, "alice",
                                ode::Slice(ode::EncodeObject(Design{
                                    "adder: carry lookahead"})));
  if (!s.ok()) return Fail(s);
  s = manager.Write(*bob_draft, "bob",
                    ode::Slice(ode::EncodeObject(Design{
                        "adder: carry save"})));
  if (!s.ok()) return Fail(s);

  // Bob tries to touch alice's draft: rejected by the policy.
  s = manager.Write(*alice_draft, "bob",
                    ode::Slice(ode::EncodeObject(Design{"sabotage"})));
  std::printf("\nbob writing alice's draft: %s\n", s.ToString().c_str());

  // Alice checks in and her design is promoted to released.
  if (ode::Status cs = manager.Checkin(*alice_draft, "alice"); !cs.ok()) {
    return Fail(cs);
  }
  if (ode::Status ps = manager.Promote(*alice_draft); !ps.ok()) {
    return Fail(ps);
  }
  // Bob abandons his attempt.
  if (ode::Status ds = manager.DiscardCheckout(*bob_draft, "bob"); !ds.ok()) {
    return Fail(ds);
  }

  std::printf("\n== after alice promotes, bob discards ==\n");
  Show(manager, *design, "base");
  Show(manager, *alice_draft, "alice's design");
  Show(manager, *bob_draft, "bob's design");

  auto graph = ode::history::RenderGraph(db, design->oid);
  if (!graph.ok()) return Fail(graph.status());
  std::printf("\n%s\n", graph->c_str());

  auto released = db.Get<Design>(*alice_draft);
  if (!released.ok()) return Fail(released.status());
  std::printf("released design is now: \"%s\"\n",
              released->description.c_str());

  if (ode::Status ds = db.PdeleteObject(design->oid); !ds.ok()) return Fail(ds);
  std::printf("done.\n");
  return 0;
}
