// Quickstart: the Ode object-versioning model in one tour.
//
// Covers the paper's §4 constructs under their original names:
//   pnew / pdelete / newversion, generic vs specific references
//   (Ref<T> / VersionPtr<T>), Tprevious/Tnext and Dprevious/Dnext.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "core/database.h"
#include "core/version_ptr.h"
#include "policy/history.h"

namespace {

// A persistable type: a name, a serializer, a deserializer.  (The bundled
// oppc translator generates this shape from O++ declarations.)
struct Memo {
  static constexpr char kTypeName[] = "Memo";

  std::string title;
  std::string body;

  void Serialize(ode::BufferWriter& w) const {
    w.WriteString(ode::Slice(title));
    w.WriteString(ode::Slice(body));
  }
  static ode::StatusOr<Memo> Deserialize(ode::BufferReader& r) {
    Memo memo;
    ODE_RETURN_IF_ERROR(r.ReadString(&memo.title));
    ODE_RETURN_IF_ERROR(r.ReadString(&memo.body));
    return memo;
  }
};

int Fail(const ode::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  // 1. Open a database.  Objects created here persist across runs.
  ode::DatabaseOptions options;
  options.storage.path = "/tmp/ode_quickstart";
  auto db_or = ode::Database::Open(options);
  if (!db_or.ok()) return Fail(db_or.status());
  ode::Database& db = **db_or;

  // 2. pnew: create a persistent object.  The result is a *generic*
  //    reference — it always denotes the latest version.
  auto memo_or = ode::pnew(db, Memo{"design notes", "first draft"});
  if (!memo_or.ok()) return Fail(memo_or.status());
  ode::Ref<Memo> memo = *memo_or;
  std::printf("created object %llu: \"%s\"\n",
              static_cast<unsigned long long>(memo.oid().value),
              memo->body.c_str());

  // 3. newversion: versions are explicit.  The new version starts as a copy
  //    and becomes the latest; the old version is untouched.
  auto v1_or = memo.Pin();  // Pin the current latest as a specific reference.
  if (!v1_or.ok()) return Fail(v1_or.status());
  ode::VersionPtr<Memo> v1 = *v1_or;

  auto v2_or = ode::newversion(memo);
  if (!v2_or.ok()) return Fail(v2_or.status());
  ode::VersionPtr<Memo> v2 = *v2_or;
  if (ode::Status s = v2.Store(Memo{"design notes", "second draft"}); !s.ok()) {
    return Fail(s);
  }

  // Generic reference late-binds; the pinned pointer does not.
  std::printf("generic ref sees:  \"%s\"\n", memo->body.c_str());
  std::printf("pinned v1 sees:    \"%s\"\n", v1->body.c_str());

  // 4. Alternatives: derive a second version from v1 — v2 and v3 are now
  //    parallel alternatives of the same base.
  auto v3_or = ode::newversion(v1);
  if (!v3_or.ok()) return Fail(v3_or.status());
  ode::VersionPtr<Memo> v3 = *v3_or;
  if (ode::Status s = v3.Store(Memo{"design notes", "radical rewrite"});
      !s.ok()) {
    return Fail(s);
  }

  // 5. Traversal: the system maintains the temporal chain and the
  //    derived-from tree automatically.
  auto graph = ode::history::RenderGraph(db, memo.oid());
  if (!graph.ok()) return Fail(graph.status());
  std::printf("\n%s\n", graph->c_str());

  auto parent = v3.Dprevious();
  if (!parent.ok()) return Fail(parent.status());
  std::printf("v%u was derived from v%u\n", v3.vid().vnum,
              parent->value().vid().vnum);

  // 6. pdelete one version: both relationships are spliced.
  if (ode::Status s = ode::pdelete(v2); !s.ok()) return Fail(s);
  std::printf("\nafter pdelete(v%u):\n", v2.vid().vnum);
  graph = ode::history::RenderGraph(db, memo.oid());
  if (!graph.ok()) return Fail(graph.status());
  std::printf("%s\n", graph->c_str());

  // 7. pdelete the whole object (cleanup so reruns start fresh).
  if (ode::Status s = ode::pdelete(memo); !s.ok()) return Fail(s);
  std::printf("object deleted; quickstart done.\n");
  return 0;
}
