// Historical databases on the temporal relationship (§2):
//
//   "Versions of an object should be ordered temporally according to their
//    creation time, which is important for historical databases, such as
//    those used in accounting, legal, and financial applications, that must
//    access the past states of the database."
//
// An Account's balance history is kept by making every posting an explicit
// new version.  Auditors replay past states with Tprevious / the temporal
// chain; the current balance is just the latest version.
//
// Build & run:  ./build/examples/historical_ledger

#include <cinttypes>
#include <cstdio>
#include <string>

#include "core/database.h"
#include "core/version_ptr.h"

namespace {

struct Account {
  static constexpr char kTypeName[] = "Account";
  std::string holder;
  int64_t balance_cents = 0;
  std::string last_posting;
  void Serialize(ode::BufferWriter& w) const {
    w.WriteString(ode::Slice(holder));
    w.WriteI64(balance_cents);
    w.WriteString(ode::Slice(last_posting));
  }
  static ode::StatusOr<Account> Deserialize(ode::BufferReader& r) {
    Account a;
    ODE_RETURN_IF_ERROR(r.ReadString(&a.holder));
    ODE_RETURN_IF_ERROR(r.ReadI64(&a.balance_cents));
    ODE_RETURN_IF_ERROR(r.ReadString(&a.last_posting));
    return a;
  }
};

int Fail(const ode::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// Posts a transaction: a new version whose state reflects the posting.
// Grouping the newversion + store in one database transaction makes the
// posting atomic.
ode::Status Post(ode::Database& db, const ode::Ref<Account>& account,
                 int64_t delta_cents, const std::string& description) {
  ODE_RETURN_IF_ERROR(db.Begin());
  auto posted = [&]() -> ode::Status {
    auto current = account.Load();
    if (!current.ok()) return current.status();
    auto next = ode::newversion(account);
    if (!next.ok()) return next.status();
    Account updated = *current;
    updated.balance_cents += delta_cents;
    updated.last_posting = description;
    return next->Store(updated);
  }();
  if (!posted.ok()) {
    ode::Status abort_status = db.Abort();
    if (!abort_status.ok()) return abort_status;
    return posted;
  }
  return db.Commit();
}

}  // namespace

int main() {
  ode::DatabaseOptions options;
  options.storage.path = "/tmp/ode_ledger";
  auto db_or = ode::Database::Open(options);
  if (!db_or.ok()) return Fail(db_or.status());
  ode::Database& db = **db_or;

  auto account =
      ode::pnew(db, Account{"acme corp", 100000, "opening balance"});
  if (!account.ok()) return Fail(account.status());

  struct Posting {
    int64_t delta;
    const char* description;
  };
  const Posting postings[] = {
      {-25000, "office rent"},
      {+180000, "invoice #1042 paid"},
      {-4999, "software license"},
      {-60000, "payroll"},
  };
  for (const Posting& posting : postings) {
    if (ode::Status s = Post(db, *account, posting.delta,
                             posting.description);
        !s.ok()) {
      return Fail(s);
    }
  }

  std::printf("current balance: $%.2f\n",
              (*account)->balance_cents / 100.0);

  // Audit: replay the full history along the temporal chain.
  std::printf("\naudit trail (temporal order):\n");
  auto versions = db.VersionsOf(account->oid());
  if (!versions.ok()) return Fail(versions.status());
  for (ode::VersionId vid : *versions) {
    auto state = db.Get<Account>(vid);
    if (!state.ok()) return Fail(state.status());
    auto meta = db.Meta(vid);
    if (!meta.ok()) return Fail(meta.status());
    std::printf("  v%-3u ts=%-4" PRIu64 " $%10.2f  %s\n", vid.vnum,
                meta->created_ts, state->balance_cents / 100.0,
                state->last_posting.c_str());
  }

  // Point-in-time query: the balance two postings ago, via Tprevious.
  auto latest = account->Pin();
  if (!latest.ok()) return Fail(latest.status());
  ode::VersionPtr<Account> cursor = *latest;
  for (int back = 0; back < 2; ++back) {
    auto prev = cursor.Tprevious();
    if (!prev.ok()) return Fail(prev.status());
    if (!prev->has_value()) break;
    cursor = prev->value();
  }
  std::printf("\nbalance two postings ago (v%u): $%.2f\n", cursor.vid().vnum,
              cursor->balance_cents / 100.0);

  if (ode::Status s = ode::pdelete(*account); !s.ok()) return Fail(s);
  std::printf("\ndone.\n");
  return 0;
}
