// The paper's §2 motivating example for generic references:
//
//   "an address-book object that keeps track of current addresses requires
//    references to the latest versions of person objects to access their
//    latest addresses (generic, dynamic or late binding)"
//
// A Person's address history is its version history; the address book holds
// *generic* references (object ids) and therefore always reads current
// addresses — while a pinned VersionPtr (e.g., "where did they live when the
// contract was signed?") reads a fixed historical state.
//
// Build & run:  ./build/examples/address_book

#include <cstdio>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/version_ptr.h"

namespace {

struct Person {
  static constexpr char kTypeName[] = "Person";
  std::string name;
  std::string address;
  void Serialize(ode::BufferWriter& w) const {
    w.WriteString(ode::Slice(name));
    w.WriteString(ode::Slice(address));
  }
  static ode::StatusOr<Person> Deserialize(ode::BufferReader& r) {
    Person p;
    ODE_RETURN_IF_ERROR(r.ReadString(&p.name));
    ODE_RETURN_IF_ERROR(r.ReadString(&p.address));
    return p;
  }
};

// The address book stores generic references (object ids) only.
struct AddressBook {
  static constexpr char kTypeName[] = "AddressBook";
  std::vector<ode::ObjectId> people;
  void Serialize(ode::BufferWriter& w) const {
    w.WriteVarint64(people.size());
    for (ode::ObjectId oid : people) ode::WriteObjectId(w, oid);
  }
  static ode::StatusOr<AddressBook> Deserialize(ode::BufferReader& r) {
    AddressBook book;
    uint64_t count = 0;
    ODE_RETURN_IF_ERROR(r.ReadVarint64(&count));
    for (uint64_t i = 0; i < count; ++i) {
      ode::ObjectId oid;
      ODE_RETURN_IF_ERROR(ode::ReadObjectId(r, &oid));
      book.people.push_back(oid);
    }
    return book;
  }
};

int Fail(const ode::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

void PrintBook(ode::Database& db, const AddressBook& book,
               const char* heading) {
  std::printf("%s\n", heading);
  for (ode::ObjectId oid : book.people) {
    ode::Ref<Person> person(&db, oid);
    auto loaded = person.Load();
    if (loaded.ok()) {
      std::printf("  %-8s %s\n", loaded->name.c_str(),
                  loaded->address.c_str());
    }
  }
}

}  // namespace

int main() {
  ode::DatabaseOptions options;
  options.storage.path = "/tmp/ode_address_book";
  auto db_or = ode::Database::Open(options);
  if (!db_or.ok()) return Fail(db_or.status());
  ode::Database& db = **db_or;

  auto alice = ode::pnew(db, Person{"alice", "12 Oak St, Summit NJ"});
  auto bob = ode::pnew(db, Person{"bob", "7 Elm Ave, Murray Hill NJ"});
  if (!alice.ok()) return Fail(alice.status());
  if (!bob.ok()) return Fail(bob.status());

  AddressBook book;
  book.people = {alice->oid(), bob->oid()};
  auto book_ref = ode::pnew(db, book);
  if (!book_ref.ok()) return Fail(book_ref.status());

  PrintBook(db, book, "== address book (initial) ==");

  // Keep a pinned reference to alice's address at contract time.
  auto contract_time = alice->Pin();
  if (!contract_time.ok()) return Fail(contract_time.status());

  // Alice moves twice.  Each move is an explicit new version — the history
  // stays queryable.
  for (const char* new_address :
       {"99 Pine Rd, San Jose CA", "1 Market St, New York NY"}) {
    auto moved = ode::newversion(*alice);
    if (!moved.ok()) return Fail(moved.status());
    if (ode::Status s = moved->Store(Person{"alice", new_address}); !s.ok()) {
      return Fail(s);
    }
  }

  // The book still holds the same generic references; it reads the LATEST
  // addresses with no update to the book itself.
  PrintBook(db, book, "\n== address book (after alice moved twice) ==");

  std::printf("\nwhere alice lived at contract time: %s\n",
              (*contract_time)->address.c_str());

  // Walk alice's full address history along the temporal chain.
  std::printf("\nalice's address history (temporal order):\n");
  auto versions = db.VersionsOf(alice->oid());
  if (!versions.ok()) return Fail(versions.status());
  for (ode::VersionId vid : *versions) {
    auto state = db.Get<Person>(vid);
    if (!state.ok()) return Fail(state.status());
    std::printf("  v%u: %s\n", vid.vnum, state->address.c_str());
  }

  for (ode::ObjectId oid : {alice->oid(), bob->oid(), book_ref->oid()}) {
    if (ode::Status s = db.PdeleteObject(oid); !s.ok()) return Fail(s);
  }
  std::printf("\ndone.\n");
  return 0;
}
