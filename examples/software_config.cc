// Software configuration management on Ode primitives — the paper's §2
// points at SCCS/RCS deltas and §5 at configurations; this example combines
// them into a small source-control system:
//
//   - each source file is a versioned object stored under the DELTA
//     strategy (small edits cost bytes proportional to the edit);
//   - a release is a frozen Configuration binding specific file versions;
//   - labels partition versions ("reviewed", "broken") Klahold-style.
//
// Build & run:  ./build/examples/software_config

#include <cinttypes>
#include <cstdio>
#include <string>

#include "core/database.h"
#include "core/version_ptr.h"
#include "policy/configuration.h"
#include "policy/labels.h"

namespace {

struct SourceFile {
  static constexpr char kTypeName[] = "scm.SourceFile";
  std::string path;
  std::string contents;
  void Serialize(ode::BufferWriter& w) const {
    w.WriteString(ode::Slice(path));
    w.WriteString(ode::Slice(contents));
  }
  static ode::StatusOr<SourceFile> Deserialize(ode::BufferReader& r) {
    SourceFile f;
    ODE_RETURN_IF_ERROR(r.ReadString(&f.path));
    ODE_RETURN_IF_ERROR(r.ReadString(&f.contents));
    return f;
  }
};

int Fail(const ode::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// A new committed revision of a file = newversion + store.
ode::StatusOr<ode::VersionPtr<SourceFile>> Commit(
    const ode::Ref<SourceFile>& file, const std::string& contents) {
  auto current = file.Load();
  if (!current.ok()) return current.status();
  auto revision = ode::newversion(file);
  if (!revision.ok()) return revision.status();
  SourceFile updated = *current;
  updated.contents = contents;
  ODE_RETURN_IF_ERROR(revision->Store(updated));
  return *revision;
}

}  // namespace

int main() {
  ode::DatabaseOptions options;
  options.storage.path = "/tmp/ode_software_config";
  options.payload_strategy = ode::PayloadKind::kDelta;  // SCCS/RCS-style.
  options.delta_keyframe_interval = 8;
  auto db_or = ode::Database::Open(options);
  if (!db_or.ok()) return Fail(db_or.status());
  ode::Database& db = **db_or;

  auto labels_or = ode::VersionLabels::Open(db);
  if (!labels_or.ok()) return Fail(labels_or.status());
  ode::VersionLabels& labels = **labels_or;

  // Two source files under version control.
  std::string main_src =
      "int main() {\n  return run();\n}\n";
  std::string lib_src = "int run() {\n  return 0;\n}\n";
  auto main_file = ode::pnew(db, SourceFile{"src/main.c", main_src});
  auto lib_file = ode::pnew(db, SourceFile{"src/lib.c", lib_src});
  if (!main_file.ok()) return Fail(main_file.status());
  if (!lib_file.ok()) return Fail(lib_file.status());

  // Development: a series of commits (each a small delta).
  for (int rev = 0; rev < 5; ++rev) {
    lib_src.insert(lib_src.find("return 0;"),
                   "/* fix #" + std::to_string(rev) + " */ ");
    auto committed = Commit(*lib_file, lib_src);
    if (!committed.ok()) return Fail(committed.status());
    if (rev % 2 == 0) {
      if (ode::Status s = labels.Add(committed->vid(), "reviewed"); !s.ok()) {
        return Fail(s);
      }
    }
  }

  // Cut release 1.0: freeze a configuration at the current versions.
  auto release = ode::Configuration::Create(db, "release-1.0");
  if (!release.ok()) return Fail(release.status());
  ode::Status s = release->BindDynamic("main.c", main_file->oid());
  if (s.ok()) s = release->BindDynamic("lib.c", lib_file->oid());
  if (s.ok()) s = release->Freeze();
  if (!s.ok()) return Fail(s);

  // Development continues past the release.
  auto committed = Commit(*lib_file, lib_src + "/* post-release */\n");
  if (!committed.ok()) return Fail(committed.status());

  // Report.
  std::printf("== head ==\n%s\n", (*lib_file)->contents.c_str());
  auto pinned = release->Resolve("lib.c");
  if (!pinned.ok()) return Fail(pinned.status());
  auto released = db.Get<SourceFile>(*pinned);
  if (!released.ok()) return Fail(released.status());
  std::printf("== release-1.0 (v%u) ==\n%s\n", pinned->vnum,
              released->contents.c_str());

  std::printf("reviewed revisions of lib.c:");
  for (ode::VersionId vid :
       labels.VersionsOfWith(lib_file->oid(), "reviewed")) {
    std::printf(" v%u", vid.vnum);
  }
  std::printf("\n");

  const ode::VersionStats& stats = db.stats();
  std::printf(
      "\nstorage: %" PRIu64 " full payload bytes, %" PRIu64
      " delta payload bytes across %" PRIu64 " versions\n",
      stats.full_bytes_written, stats.delta_bytes_written,
      stats.pnew_count + stats.newversion_count);

  for (ode::ObjectId oid :
       {main_file->oid(), lib_file->oid(), release->oid()}) {
    if (ode::Status ds = db.PdeleteObject(oid); !ds.ok()) return Fail(ds);
  }
  std::printf("done.\n");
  return 0;
}
