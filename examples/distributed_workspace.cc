// The §7 distributed architecture, concretely: a PUBLIC project database
// and a designer's PRIVATE workspace database exchanging whole versioned
// objects (policy/migrate.h) — ORION's public/private model rebuilt from
// Ode primitives.
//
//   1. the public database holds the released design;
//   2. the designer copies it into a private database and works there
//      (private versions never touch the shared database);
//   3. the finished alternative is copied back, full history intact.
//
// Build & run:  ./build/examples/distributed_workspace

#include <cstdio>
#include <string>

#include "core/database.h"
#include "core/version_ptr.h"
#include "policy/history.h"
#include "policy/migrate.h"

namespace {

struct Design {
  static constexpr char kTypeName[] = "dist.Design";
  std::string description;
  void Serialize(ode::BufferWriter& w) const {
    w.WriteString(ode::Slice(description));
  }
  static ode::StatusOr<Design> Deserialize(ode::BufferReader& r) {
    Design d;
    ODE_RETURN_IF_ERROR(r.ReadString(&d.description));
    return d;
  }
};

int Fail(const ode::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

std::unique_ptr<ode::Database> OpenDb(const std::string& path) {
  ode::DatabaseOptions options;
  options.storage.path = path;
  auto db = ode::Database::Open(options);
  if (!db.ok()) {
    std::fprintf(stderr, "open %s: %s\n", path.c_str(),
                 db.status().ToString().c_str());
    return nullptr;
  }
  return std::move(*db);
}

void ShowGraph(ode::Database& db, ode::ObjectId oid, const char* title) {
  auto rendered = ode::history::RenderGraph(db, oid);
  std::printf("%s\n%s\n", title,
              rendered.ok() ? rendered->c_str() : "render failed");
}

}  // namespace

int main() {
  auto public_db = OpenDb("/tmp/ode_public_db");
  auto private_db = OpenDb("/tmp/ode_private_db");
  if (public_db == nullptr || private_db == nullptr) return 1;

  // 1. The public database holds the released design with some history.
  auto released = ode::pnew(*public_db, Design{"adder rev A"});
  if (!released.ok()) return Fail(released.status());
  auto rev_b = ode::newversion(*released);
  if (!rev_b.ok()) return Fail(rev_b.status());
  if (ode::Status s = rev_b->Store(Design{"adder rev B"}); !s.ok()) {
    return Fail(s);
  }
  ShowGraph(*public_db, released->oid(), "== public database ==");

  // 2. Check the design out into the private workspace: a full copy of the
  //    object with its history.
  auto checked_out =
      ode::migrate::CopyObject(*public_db, released->oid(), *private_db);
  if (!checked_out.ok()) return Fail(checked_out.status());
  std::printf("copied to private workspace as object %llu\n\n",
              static_cast<unsigned long long>(checked_out->oid.value));

  // 3. Private work: two experimental alternatives derived from rev B.
  const ode::VersionId rev_b_private{checked_out->oid,
                                     checked_out->vnum_map.rbegin()->second};
  for (const char* experiment :
       {"adder rev C (carry-lookahead)", "adder rev C' (carry-save)"}) {
    auto attempt = private_db->NewVersionFrom(rev_b_private);
    if (!attempt.ok()) return Fail(attempt.status());
    if (ode::Status s = private_db->Put(*attempt, Design{experiment});
        !s.ok()) {
      return Fail(s);
    }
  }
  ShowGraph(*private_db, checked_out->oid,
            "== private workspace (after experiments) ==");

  // The public database never saw any of this.
  auto public_versions = public_db->VersionsOf(released->oid());
  if (!public_versions.ok()) return Fail(public_versions.status());
  std::printf("public database still has %zu versions\n\n",
              public_versions->size());

  // 4. Check the finished work back in: the whole private history becomes a
  //    new public object (a real system would splice; copying keeps both).
  auto checked_in =
      ode::migrate::CopyObject(*private_db, checked_out->oid, *public_db);
  if (!checked_in.ok()) return Fail(checked_in.status());
  ShowGraph(*public_db, checked_in->oid,
            "== public database: checked-in design ==");

  // Cleanup for reruns.
  if (auto s = public_db->PdeleteObject(released->oid()); !s.ok()) return Fail(s);
  if (auto s = public_db->PdeleteObject(checked_in->oid); !s.ok()) return Fail(s);
  if (auto s = private_db->PdeleteObject(checked_out->oid); !s.ok()) {
    return Fail(s);
  }
  std::printf("done.\n");
  return 0;
}
